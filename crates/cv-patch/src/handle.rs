//! Applying and removing compiled patches on a managed execution environment.
//!
//! ClearView applies and removes patches to and from *running* applications without
//! restarts by ejecting the affected code-cache blocks (Section 2.1). A [`PatchHandle`]
//! remembers the hook ids a patch installed so the patch can later be removed as a unit
//! (for example when invariant checking ends, or when repair evaluation discards an
//! unsuccessful repair).

use cv_isa::Addr;
use cv_runtime::{Hook, HookId, ManagedExecutionEnvironment, RuntimeError};

/// The installed form of one logical patch (which may consist of several hooks, e.g. an
/// auxiliary store plus a check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchHandle {
    hook_ids: Vec<HookId>,
    addrs: Vec<Addr>,
}

impl PatchHandle {
    /// The hook ids the patch installed.
    pub fn hook_ids(&self) -> &[HookId] {
        &self.hook_ids
    }

    /// The instruction addresses the patch instruments.
    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// Number of hooks installed.
    pub fn len(&self) -> usize {
        self.hook_ids.len()
    }

    /// True if the patch installed no hooks.
    pub fn is_empty(&self) -> bool {
        self.hook_ids.is_empty()
    }
}

/// Apply a compiled patch (a set of `(address, hook)` pairs) to the environment.
pub fn install_hooks(
    env: &mut ManagedExecutionEnvironment,
    hooks: Vec<(Addr, Box<dyn Hook>)>,
) -> PatchHandle {
    let mut hook_ids = Vec::with_capacity(hooks.len());
    let mut addrs = Vec::with_capacity(hooks.len());
    for (addr, hook) in hooks {
        hook_ids.push(env.apply_hook(addr, hook));
        addrs.push(addr);
    }
    PatchHandle { hook_ids, addrs }
}

/// Remove a previously installed patch. Removing a patch twice reports an error for the
/// missing hooks but removes any that remain.
pub fn uninstall(
    env: &mut ManagedExecutionEnvironment,
    handle: &PatchHandle,
) -> Result<(), RuntimeError> {
    let mut first_err = None;
    for id in &handle.hook_ids {
        if let Err(e) = env.remove_hook(*id) {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CheckPatch;
    use cv_inference::{Invariant, Variable};
    use cv_isa::{Operand, Port, ProgramBuilder, Reg};
    use cv_runtime::{EnvConfig, ObservationKind};

    fn env_and_site() -> (ManagedExecutionEnvironment, Addr) {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Ecx, Port::Input);
        let site = b.mov(Reg::Ebx, Reg::Ecx);
        b.output(Reg::Ebx, Port::Render);
        b.halt();
        b.set_entry(main);
        let image = b.build().unwrap();
        (
            ManagedExecutionEnvironment::new(image, EnvConfig::default()),
            site,
        )
    }

    #[test]
    fn install_and_uninstall_round_trip() {
        let (mut env, site) = env_and_site();
        let patch = CheckPatch::new(Invariant::LowerBound {
            var: Variable::read(site, 0, Operand::Reg(Reg::Ecx)),
            min: 1,
        });
        let handle = install_hooks(&mut env, patch.build_hooks());
        assert_eq!(handle.len(), 1);
        assert!(!handle.is_empty());
        assert_eq!(handle.addrs(), &[site]);
        assert_eq!(env.hook_count(), 1);
        let r = env.run(&[0]);
        assert_eq!(r.observations[0].kind, ObservationKind::Violated);
        uninstall(&mut env, &handle).unwrap();
        assert_eq!(env.hook_count(), 0);
        let r = env.run(&[0]);
        assert!(r.observations.is_empty());
        // Double removal reports the error.
        assert!(uninstall(&mut env, &handle).is_err());
    }
}
