//! Regenerates Table 2 (Section 4.4.2): page-load overhead of each monitor
//! configuration relative to the bare application.
//!
//! The paper measures wall-clock seconds to load the 57 evaluation pages under each
//! configuration; this harness reports both the simulated cost-model overhead (the
//! number the shape comparison uses) and the real wall-clock time of the reproduction's
//! interpreter under each configuration.

use cv_apps::{evaluation_suite, Browser};
use cv_bench::print_table;
use cv_runtime::{
    CostModel, EnvConfig, ExecutionStats, ManagedExecutionEnvironment, MonitorConfig,
};
use std::time::Instant;

fn run_suite(browser: &Browser, monitors: MonitorConfig) -> (ExecutionStats, f64) {
    let mut env =
        ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::with_monitors(monitors));
    let pages = evaluation_suite();
    let start = Instant::now();
    for page in &pages {
        let r = env.run(page);
        assert!(r.is_completed(), "evaluation pages are benign");
    }
    (env.cumulative_stats(), start.elapsed().as_secs_f64())
}

fn main() {
    let browser = Browser::build();
    let cost = CostModel::default();
    let configs = [
        ("Bare application", MonitorConfig::bare(), 1.0),
        (
            "Memory Firewall",
            MonitorConfig::memory_firewall_only(),
            1.47,
        ),
        (
            "MF + Shadow Stack",
            MonitorConfig::firewall_and_shadow_stack(),
            1.97,
        ),
        (
            "MF + Heap Guard",
            MonitorConfig::firewall_and_heap_guard(),
            2.53,
        ),
        (
            "MF + Heap Guard + Shadow Stack",
            MonitorConfig::full(),
            3.03,
        ),
    ];
    let baseline = run_suite(&browser, MonitorConfig::bare());
    let base_cost = cost.cost(&baseline.0);
    let base_wall = baseline.1;

    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(name, monitors, paper_ratio)| {
            let (stats, wall) = run_suite(&browser, *monitors);
            let sim_ratio = cost.cost(&stats) / base_cost;
            let wall_ratio = wall / base_wall;
            vec![
                name.to_string(),
                format!("{:.0}", cost.cost(&stats)),
                format!("{sim_ratio:.2}"),
                format!("{wall_ratio:.2}"),
                format!("{paper_ratio:.2}"),
            ]
        })
        .collect();
    print_table(
        "Table 2 — page-load overhead per monitor configuration (57 evaluation pages)",
        &[
            "Configuration",
            "Simulated cost",
            "Overhead (simulated)",
            "Overhead (wall clock)",
            "Overhead (paper)",
        ],
        &rows,
    );
}
