//! # cv-inference — Daikon-style dynamic invariant inference over binary traces
//!
//! ClearView's learning component observes normal executions and infers a model of
//! normal behaviour: a set of invariants over the values of registers and memory
//! locations at specific instructions (Section 2.2 of the paper). This crate is that
//! component for the simulated substrate:
//!
//! * [`Variable`] — a binary-level variable: an operand value read at an instruction.
//! * [`Invariant`] — the invariant templates used in the Red Team exercise: one-of,
//!   lower-bound, less-than, plus the stack-pointer-offset facts used by
//!   return-from-procedure repairs.
//! * [`ProcedureCfg`] / [`ProcedureDatabase`] — dynamic procedure discovery, CFG
//!   construction by symbolic block tracing, and predominator queries (Section 2.2.3).
//! * [`LearningFrontend`] — the Daikon front end + inference engine: feed it execution
//!   traces (it implements [`cv_runtime::Tracer`]), commit normal runs, discard
//!   erroneous ones, and call [`LearningFrontend::infer`] to obtain an
//!   [`InvariantDatabase`].
//! * [`InvariantDatabase`] — learned invariants indexed by check location, with the
//!   merge operation used by the application community's amortized parallel learning.
//! * [`DirtyEpochs`] — the dirty-epoch plane: per-shard, per-epoch buckets of the
//!   check addresses the merges actually changed, fed by the `_observed` merge
//!   variants, so the persistence plane can cut delta snapshots in O(changed)
//!   instead of diffing materialized bases.
//! * [`ReferenceFrontend`] — the retained straightforward implementation of the front
//!   end, the executable specification the optimized hot path is proven equal to.
//!
//! The front end's per-event data plane is flat and allocation-free: variables are
//! interned to dense `u32` ids, statistics live in `Vec`-indexed tables, runs buffer
//! into a columnar [`cv_runtime::RunBuffer`], and per-address pair schedules replace
//! the O(block²) prior-operand walk (see the `frontend` module docs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
mod database;
mod dirty;
mod frontend;
mod intern;
mod invariant;
mod reference;
mod route;
mod variable;

pub use cfg::{CfgBlock, ProcedureCfg, ProcedureDatabase};
pub use database::{InvariantDatabase, LearningStats};
pub use dirty::{DirtyEpochs, DirtySet};
pub use frontend::{LearnedModel, LearningFrontend};
pub use invariant::{Invariant, ONE_OF_LIMIT};
pub use reference::ReferenceFrontend;
pub use route::ShardRouter;
pub use variable::{VarSlot, Variable};
