//! Benign page workloads: the learning suite and the evaluation suite.
//!
//! The Blue Team prepared an invariant database from learning pages exercising
//! functionality related to known vulnerabilities, and the Red Team selected 57
//! legitimate evaluation pages used for the repair-quality and false-positive
//! evaluations (Section 4.2.2). This module generates the equivalents for the synthetic
//! browser: deterministic benign pages per feature, a default learning suite, an
//! expanded learning suite (the 325403 reconfiguration), and a 57-page evaluation suite.
//!
//! The learning pages are chosen so that the invariants Daikon retains are the ones the
//! paper describes: "downloaded content" words take more than [`cv_inference::ONE_OF_LIMIT`]
//! distinct values (so no accidental one-of invariants constrain them), while call
//! targets, type flags, lengths, and indices keep their meaningful invariants.

use crate::browser::feature;
use cv_isa::Word;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A benign page exercising feature 1 (290162): a small scalar payload, handler
/// `selector`.
pub fn benign_js_type_290162(payload: Word, selector: Word) -> Vec<Word> {
    vec![feature::JS_TYPE_290162, 1 + payload % 40_000, selector % 2]
}

/// A benign page exercising feature 2 (295854): small payload and data words.
pub fn benign_js_type_295854(payload: Word, data: Word) -> Vec<Word> {
    vec![feature::JS_TYPE_295854, 1 + payload % 40_000, 1 + data % 6]
}

/// A benign page exercising feature 3 (312278).
pub fn benign_gc_realloc_312278(payload: Word, selector: Word) -> Vec<Word> {
    vec![
        feature::GC_REALLOC_312278,
        1 + payload % 40_000,
        selector % 2,
    ]
}

/// A benign page exercising feature 4 (269095).
pub fn benign_widget_269095(payload: Word, data: Word) -> Vec<Word> {
    vec![feature::WIDGET_269095, 1 + payload % 40_000, 1 + data % 6]
}

/// A benign page exercising feature 5 (320182).
pub fn benign_widget_320182(payload: Word, data: Word) -> Vec<Word> {
    vec![feature::WIDGET_320182, 1 + payload % 40_000, 1 + data % 6]
}

/// A benign page exercising feature 6 (296134): `field_len` is clamped into the range
/// a legitimate page would use (the string fits the stack buffer).
pub fn benign_string_296134(field_len: Word, seed: Word) -> Vec<Word> {
    let len = field_len.clamp(6, 12);
    vec![
        feature::STRING_296134,
        len,
        100 + seed % 500,
        200 + seed % 700,
        300 + seed % 900,
        400 + seed % 1100,
    ]
}

/// A benign page exercising feature 7 (311710): raw indices in 10..=13 and varied
/// "image data" words.
pub fn benign_array_311710(raw_a: Word, raw_b: Word, raw_c: Word, seed: Word) -> Vec<Word> {
    let mut p = vec![feature::ARRAY_311710];
    for (k, raw) in [raw_a, raw_b, raw_c].into_iter().enumerate() {
        p.push(10 + raw % 4);
        for i in 0..4u32 {
            p.push(1 + (seed * 13 + k as Word * 7 + i * 3) % 30_000);
        }
    }
    p
}

/// A benign page exercising feature 8 (285595): `ext_count` at least 4, at most 19.
pub fn benign_gif_285595(ext_count: Word, pixel: Word) -> Vec<Word> {
    vec![
        feature::GIF_285595,
        4 + ext_count % 16,
        512 + pixel % 20_000,
    ]
}

/// A benign page exercising feature 9 (325403): modest data lengths.
pub fn benign_grow_325403(data_len: Word, seed: Word) -> Vec<Word> {
    vec![feature::GROW_325403, 1 + data_len % 90, 1 + seed % 6]
}

/// A benign page exercising feature 10 (307259): segment lengths whose sum fits.
pub fn benign_hostname_307259(len1: Word) -> Vec<Word> {
    let l1 = 1 + len1 % 6;
    vec![feature::HOSTNAME_307259, l1, 7 - l1]
}

/// The default learning suite: benign pages covering every feature the Blue Team's
/// learning regions covered — everything except the buffer-growth feature (325403),
/// whose lack of coverage is exactly why the paper's ClearView could not patch that
/// exploit during the exercise.
pub fn learning_suite() -> Vec<Vec<Word>> {
    let mut pages = Vec::new();
    // Virtual-dispatch features: six distinct payloads each, both observed handlers.
    for i in 0..6u32 {
        pages.push(benign_js_type_290162(201 + i * 97, i));
        pages.push(benign_js_type_295854(111 + i * 113, i));
        pages.push(benign_gc_realloc_312278(4321 + i * 131, i + 1));
        pages.push(benign_widget_269095(11 + i * 151, i));
        pages.push(benign_widget_320182(17 + i * 173, i));
    }
    // Length-driven features: enough distinct values that no one-of survives and the
    // lower bounds / less-than relations are meaningful.
    for (i, len) in (6..=12).enumerate() {
        pages.push(benign_string_296134(len, 10 + i as Word * 7));
    }
    for i in 0..6u32 {
        pages.push(benign_array_311710(i, i + 1, i + 2, 5 + i * 11));
    }
    for (i, count) in (0..=6u32).enumerate() {
        pages.push(benign_gif_285595(count, 37 * (i as Word + 1)));
    }
    for l1 in 1..=6 {
        pages.push(benign_hostname_307259(l1 - 1));
    }
    pages
}

/// The expanded learning suite of Section 4.3.2: the default suite plus coverage of the
/// buffer-growth feature, which lets Daikon learn the less-than invariant needed for
/// exploit 325403.
pub fn expanded_learning_suite() -> Vec<Vec<Word>> {
    let mut pages = learning_suite();
    for (i, len) in [1u32, 5, 10, 20, 40, 80].iter().enumerate() {
        pages.push(benign_grow_325403(*len - 1, i as Word));
    }
    pages
}

/// The 57 legitimate evaluation pages used for repair-quality and false-positive
/// evaluation. Deterministic for reproducibility, and drawn from the same value ranges
/// as the learning suite (legitimate content looks like legitimate content).
pub fn evaluation_suite() -> Vec<Vec<Word>> {
    let mut rng = StdRng::seed_from_u64(0x5EED_CA5E);
    let mut pages = Vec::with_capacity(57);
    while pages.len() < 57 {
        let pick = pages.len() % 9;
        let page = match pick {
            0 => benign_js_type_290162(rng.gen_range(1..5000), rng.gen_range(0..2)),
            1 => benign_js_type_295854(rng.gen_range(1..5000), rng.gen_range(0..6)),
            2 => benign_gc_realloc_312278(rng.gen_range(1..5000), rng.gen_range(0..2)),
            3 => benign_widget_269095(rng.gen_range(1..500), rng.gen_range(0..6)),
            4 => benign_widget_320182(rng.gen_range(1..500), rng.gen_range(0..6)),
            5 => benign_string_296134(rng.gen_range(6..=12), rng.gen_range(1..1000)),
            6 => benign_array_311710(
                rng.gen_range(0..4),
                rng.gen_range(0..4),
                rng.gen_range(0..4),
                rng.gen_range(1..1000),
            ),
            7 => benign_gif_285595(rng.gen_range(0..6), rng.gen_range(1..1000)),
            8 => benign_hostname_307259(rng.gen_range(0..6)),
            _ => unreachable!(),
        };
        pages.push(page);
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::browser::{Browser, DONE_MARKER, NATIVE_TAG_THRESHOLD};
    use cv_runtime::{EnvConfig, ManagedExecutionEnvironment};

    #[test]
    fn every_learning_and_evaluation_page_completes_normally() {
        let browser = Browser::build();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        let mut all = learning_suite();
        all.extend(expanded_learning_suite());
        all.extend(evaluation_suite());
        for (i, page) in all.iter().enumerate() {
            let r = env.run(page);
            assert!(
                r.is_completed(),
                "benign page {i} must complete, got {:?}",
                r.status
            );
            assert_eq!(
                r.rendered.last().copied(),
                Some(DONE_MARKER),
                "benign page {i} renders to completion"
            );
        }
    }

    #[test]
    fn benign_pages_never_carry_native_looking_payloads() {
        for page in learning_suite().iter().chain(evaluation_suite().iter()) {
            for w in &page[1..] {
                assert!(
                    *w < NATIVE_TAG_THRESHOLD,
                    "legitimate content stays below the native tag threshold"
                );
            }
        }
    }

    #[test]
    fn suites_have_the_documented_sizes() {
        assert_eq!(evaluation_suite().len(), 57, "57 Red Team evaluation pages");
        assert!(learning_suite().len() >= 40);
        assert_eq!(expanded_learning_suite().len(), learning_suite().len() + 6);
    }

    #[test]
    fn evaluation_suite_is_deterministic() {
        assert_eq!(evaluation_suite(), evaluation_suite());
    }

    #[test]
    fn hostname_pages_never_overflow_the_buffer() {
        for l1 in 0..20 {
            let p = benign_hostname_307259(l1);
            assert!(p[1] + p[2] <= 12, "len1 + len2 must fit the 12-word buffer");
            assert!(p[1] >= 1 && p[2] >= 1);
        }
    }
}
