//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness with the
//! `Criterion` / `benchmark_group` / `Bencher::iter` API surface the workspace's
//! benches use. Each benchmark runs `sample_size` samples and reports min / mean /
//! max per-iteration time to stdout. No statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, once per sample (after one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.times);
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmark a closure over an input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn report(label: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let min = times.iter().min().unwrap();
    let max = times.iter().max().unwrap();
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{label}: [{} {} {}] ({} samples)",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max),
        times.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The benchmark manager.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Benchmark a stand-alone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: "bench".into(),
            sample_size: self.default_sample_size,
        };
        group.run(id.to_string(), f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` for the bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
