//! The unified sync plane: one API for every way state reaches a member, and
//! the per-tier coordinator state that serves it.
//!
//! Before this module, the fleet had five ad-hoc membership/sync entry points
//! (`crash_members`, `rejoin_member`, `join_member_warm`, `join_member_cold`,
//! `resync_member`) plus the transport-resync pass's private path — six code
//! paths, one accounting story each. They are now thin wrappers over
//! [`Fleet::apply_membership`](crate::Fleet::apply_membership) taking a
//! [`MembershipOp`], and every sync inside it is served through a
//! [`SyncSource`] — a trait implemented by both the root
//! [`Fleet`](crate::Fleet) and the [`TierRow`] coordinator state here —
//! so root-direct and tiered sync share one code path and one accounting story.
//!
//! # Tiers as replicas
//!
//! With a fan-out-`F` manager tree, the coordinators of one tier all hold the
//! **same** state: each applies the same refresh deltas in the same order, so
//! within a row they are byte-identical replicas by construction. A [`TierRow`]
//! therefore models a whole row with one representative coordinator state —
//! its own [`Snapshot`] mirror, per-epoch retained checkpoints, and a
//! [`DirtyEpochs`] tracker stamped from the relayed deltas — while `width`
//! records how many real coordinators the row stands for (the byte accounting
//! multiplies by it). A tier-2 coordinator bootstraps, delta-resyncs, and
//! heals transport desyncs from its *parent's* row, never the root: the root
//! cuts one delta per refresh, each row relays it downward, and members are
//! served from the deepest (leaf) row.
//!
//! Byte-identity discipline: [`DeltaBuilder`] cuts are canonical in the base
//! and the current state — a dirty superset only adds lookups, never entries —
//! so a delta cut by a tier row equals the delta the root would have cut for
//! the same base, byte for byte. Tiered sync changes *where* sync payloads are
//! cut, never *what* the fleet log records.

use crate::protocol::NodeId;
use crate::transport::{tier_peer, PeerId};
use cv_core::{PatchPlan, TierRowSpec};
use cv_inference::{DirtyEpochs, ShardRouter};
use cv_store::{DeltaBuilder, DeltaSnapshot, Snapshot, StoreError};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An encoded full-state payload a [`SyncSource`] serves: the source's epoch,
/// its net patch plan (what a resynced member must install), and the encoded
/// snapshot bytes that cross the wire.
#[derive(Debug, Clone)]
pub struct SyncPayload {
    /// The epoch the payload's state corresponds to.
    pub epoch: u64,
    /// The source's net patch plan at that epoch.
    pub plan: PatchPlan,
    /// The encoded snapshot container (shared, encode-once).
    pub encoded: Arc<Vec<u8>>,
}

impl SyncPayload {
    /// Encoded payload size in bytes.
    pub fn bytes(&self) -> u64 {
        self.encoded.len() as u64
    }
}

/// Something a member can sync from: the root coordinator or a tier row.
///
/// The methods take `&mut self` because serving is memoized — sources encode
/// their snapshot once per state generation and cache delta cuts.
pub trait SyncSource {
    /// A checkpoint of the source's current state.
    fn checkpoint(&mut self) -> Snapshot;

    /// The delta advancing `base` to the source's current state — incremental
    /// from the dirty-epoch plane when it covers the base, a materialized diff
    /// otherwise. Byte-identical either way.
    fn delta_since(&mut self, base: &Snapshot) -> DeltaSnapshot;

    /// The encoded full-state payload for a member that needs everything.
    fn snapshot_for(&mut self) -> SyncPayload;

    /// The earliest epoch the source still retains a checkpoint for (its own
    /// current epoch when nothing older is retained): bases at or above this
    /// floor can be served a delta from a retained checkpoint.
    fn covered_floor(&self) -> u64;
}

/// One membership/sync operation, the argument to
/// [`Fleet::apply_membership`](crate::Fleet::apply_membership).
#[derive(Debug, Clone, Copy)]
pub enum MembershipOp<'a> {
    /// Crash the given members with state loss. No sync happens.
    Crash(&'a [NodeId]),
    /// Rejoin a crashed member: delta sync against the checkpoint it kept, or
    /// a full bootstrap when it kept none.
    Rejoin {
        /// The crashed member to bring back.
        node: NodeId,
        /// The member's surviving checkpoint (`None` = lost everything).
        checkpoint: Option<&'a Snapshot>,
    },
    /// Add a new member warm-started from the sync source's snapshot.
    JoinWarm,
    /// Add a new member with no state transfer (it must be resynced or learn
    /// from scratch). No sync happens.
    JoinCold,
    /// Full bootstrap for a live but unsynced member (e.g. one that cold
    /// joined).
    Resync(NodeId),
}

/// What [`Fleet::apply_membership`](crate::Fleet::apply_membership)
/// did: the members affected and, when state moved, where it came from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncOutcome {
    /// The members the operation affected (the new node id for joins).
    pub nodes: Vec<NodeId>,
    /// The peer the sync payload was served from (`None` when no state
    /// moved): [`COORDINATOR`](crate::transport::COORDINATOR) for root-direct
    /// sync, [`tier_peer`] of the leaf tier when a tier row served.
    pub source_peer: Option<PeerId>,
    /// The serving tier (0 = the root) when state moved.
    pub source_tier: Option<u32>,
    /// Whether a delta sufficed (`false` = full snapshot, or no state moved).
    pub delta: bool,
    /// Encoded payload bytes that crossed the sync link (0 when none did).
    pub bytes: u64,
}

/// A tier-relayed payload was rejected by an intermediate coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierSyncError {
    /// The delta's shard routing does not match the tier's shard routing —
    /// a cross-tier misroute (e.g. a payload cut under a different shard
    /// count, or entries scattered to the wrong shard sections).
    CrossTierMisroute {
        /// The tier that rejected the payload.
        tier: u32,
        /// The underlying store-level validation failure.
        source: StoreError,
    },
    /// The delta's base epoch does not match the tier's current state — the
    /// relay skipped or repeated a refresh.
    StaleBase {
        /// The tier that rejected the payload.
        tier: u32,
        /// The base epoch the tier's state is at.
        expected: u64,
        /// The base epoch the delta was cut against.
        found: u64,
    },
}

impl fmt::Display for TierSyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierSyncError::CrossTierMisroute { tier, source } => {
                write!(
                    f,
                    "tier {tier} rejected a misrouted relayed delta: {source}"
                )
            }
            TierSyncError::StaleBase {
                tier,
                expected,
                found,
            } => write!(
                f,
                "tier {tier} at base epoch {expected} got a delta cut against {found}"
            ),
        }
    }
}

impl std::error::Error for TierSyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TierSyncError::CrossTierMisroute { source, .. } => Some(source),
            TierSyncError::StaleBase { .. } => None,
        }
    }
}

/// One row of intermediate tier coordinators, modeled as a single
/// representative replica (see the module docs): its own state mirror,
/// retained per-epoch checkpoints, and a dirty-epoch tracker stamped from the
/// relayed deltas so it can cut children's deltas incrementally.
#[derive(Debug, Clone)]
pub struct TierRow {
    tier: u32,
    width: usize,
    peer: PeerId,
    state: Snapshot,
    encoded: Option<Arc<Vec<u8>>>,
    retained: BTreeMap<u64, Snapshot>,
    dirty: DirtyEpochs,
    delta_cache: Option<(u64, u64, u64)>,
}

impl TierRow {
    /// A row of `width` tier-`tier` coordinators seeded from `state` (their
    /// parent's current snapshot). The dirty tracker's coverage starts at the
    /// epoch *after* the seed: a base checkpoint carrying the seed's epoch
    /// label is not necessarily the seed (state can change mid-epoch), and a
    /// fresh row has no mutation history to tell them apart — the same
    /// reasoning as the fleet's snapshot restore. Such bases fall back to the
    /// materialized diff, which is byte-identical.
    pub fn new(tier: u32, width: usize, state: Snapshot) -> Self {
        let dirty = DirtyEpochs::new(state.shard_count as usize, state.epoch + 1);
        TierRow {
            tier,
            width,
            peer: tier_peer(tier),
            state,
            encoded: None,
            retained: BTreeMap::new(),
            dirty,
            delta_cache: None,
        }
    }

    /// The row's tier, 1 = directly under the root.
    pub fn tier(&self) -> u32 {
        self.tier
    }

    /// How many real coordinators this row stands for.
    pub fn width(&self) -> usize {
        self.width
    }

    pub(crate) fn set_width(&mut self, width: usize) {
        self.width = width;
    }

    /// The transport peer id this row's coordinators serve from.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// The row's current state mirror.
    pub fn state(&self) -> &Snapshot {
        &self.state
    }

    /// The retained checkpoint at exactly `epoch`, if the row kept one.
    pub fn retained_base(&self, epoch: u64) -> Option<&Snapshot> {
        self.retained.get(&epoch)
    }

    /// Apply a delta relayed from the parent tier, validating it exactly as
    /// the root validates member-bound deltas: shard routing first (a
    /// cross-tier misroute is caught at the tier that received it), then the
    /// base epoch. On success the delta's contents are stamped into the row's
    /// dirty tracker — that is what lets the row cut its children's deltas
    /// incrementally instead of diffing.
    pub fn apply_relayed(&mut self, delta: &DeltaSnapshot) -> Result<(), TierSyncError> {
        delta
            .validate_routing(self.state.shard_count)
            .map_err(|source| TierSyncError::CrossTierMisroute {
                tier: self.tier,
                source,
            })?;
        if delta.base_epoch != self.state.epoch {
            return Err(TierSyncError::StaleBase {
                tier: self.tier,
                expected: self.state.epoch,
                found: delta.base_epoch,
            });
        }
        self.dirty.begin_epoch(delta.target_epoch);
        for shard in &delta.shards {
            for (addr, _) in &shard.entries {
                self.dirty.mark_in_shard(shard.shard as usize, *addr);
            }
        }
        for &addr in &delta.removed {
            self.dirty.mark(addr);
        }
        for &entry in &delta.procs_added {
            self.dirty.mark_proc(entry);
        }
        if delta.plan != self.state.plan {
            let router = ShardRouter::new(self.state.shard_count as usize);
            for shard in delta.plan.shards_touched(&router) {
                self.dirty.mark_plan_shard(shard);
            }
        }
        self.state
            .apply_delta(delta)
            .map_err(|source| TierSyncError::CrossTierMisroute {
                tier: self.tier,
                source,
            })?;
        self.encoded = None;
        self.delta_cache = None;
        Ok(())
    }

    /// Retain the current state as the row's checkpoint for its epoch, so
    /// later delta requests against this epoch can be served from it.
    pub fn retain_checkpoint(&mut self) {
        self.retained.insert(self.state.epoch, self.state.clone());
    }

    /// Drop retained checkpoints and dirty history below `floor` (the oldest
    /// base any desynced child might still resync from).
    pub fn prune(&mut self, floor: u64) {
        self.retained.retain(|&epoch, _| epoch >= floor);
        self.dirty.retain_since(floor);
    }

    /// Encoded size of the delta advancing `base` to the row's state,
    /// memoized per (base, state) generation.
    pub fn delta_bytes_since(&mut self, base: &Snapshot) -> u64 {
        if let Some((base_epoch, target_epoch, bytes)) = self.delta_cache {
            if base_epoch == base.epoch && target_epoch == self.state.epoch {
                return bytes;
            }
        }
        let bytes = self.delta_since(base).encode().len() as u64;
        self.delta_cache = Some((base.epoch, self.state.epoch, bytes));
        bytes
    }
}

impl SyncSource for TierRow {
    fn checkpoint(&mut self) -> Snapshot {
        self.state.clone()
    }

    fn delta_since(&mut self, base: &Snapshot) -> DeltaSnapshot {
        assert_eq!(
            base.shard_count, self.state.shard_count,
            "base checkpoint and tier state must share one shard routing"
        );
        match self.dirty.dirty_since(base.epoch) {
            Some(dirty) => DeltaBuilder::new(base, &dirty).cut(
                self.state.epoch,
                &self.state.invariants,
                self.state.plan.clone(),
            ),
            None => DeltaSnapshot::diff(base, &self.state),
        }
    }

    fn snapshot_for(&mut self) -> SyncPayload {
        let encoded = match &self.encoded {
            Some(encoded) => Arc::clone(encoded),
            None => {
                let encoded = Arc::new(self.state.encode());
                self.encoded = Some(Arc::clone(&encoded));
                encoded
            }
        };
        SyncPayload {
            epoch: self.state.epoch,
            plan: self.state.plan.clone(),
            encoded,
        }
    }

    fn covered_floor(&self) -> u64 {
        self.retained
            .keys()
            .next()
            .copied()
            .unwrap_or(self.state.epoch)
    }
}

/// The fleet's tier-sync plane: the rows of intermediate coordinators, kept
/// as mirrors of the root's state (see the module docs), plus the
/// `(epoch, state_version)` marker of the last refresh so refreshes are
/// idempotent per state generation.
#[derive(Debug, Clone, Default)]
pub struct TierSyncPlane {
    rows: Vec<TierRow>,
    synced: Option<(u64, u64)>,
}

impl TierSyncPlane {
    /// An empty plane: rows are seeded lazily on the first refresh where the
    /// fleet is large enough to need intermediate coordinators.
    pub fn new() -> Self {
        TierSyncPlane::default()
    }

    /// True when no coordinator rows exist (the fleet fits under the root).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The coordinator rows, root-down (last = the member-facing leaf row).
    pub fn rows(&self) -> &[TierRow] {
        &self.rows
    }

    /// The member-facing leaf row, mutable (it cuts the members' payloads).
    pub fn leaf_row_mut(&mut self) -> Option<&mut TierRow> {
        self.rows.last_mut()
    }

    /// The `(epoch, state_version)` the rows were last refreshed to.
    pub fn synced_marker(&self) -> Option<(u64, u64)> {
        self.synced
    }

    /// Record that the rows now mirror the root at `marker`.
    pub fn mark_synced(&mut self, marker: (u64, u64)) {
        self.synced = Some(marker);
    }

    /// True when the rows match `specs` tier-for-tier (widths included).
    pub fn matches(&self, specs: &[TierRowSpec]) -> bool {
        self.rows.len() == specs.len()
            && self
                .rows
                .iter()
                .zip(specs)
                .all(|(row, spec)| row.tier == spec.tier && row.width == spec.width)
    }

    /// Resize the rows to `specs`: widths update in place, new deeper rows
    /// clone the current leaf's mirror (rows are replicas of one another, so
    /// any row's state seeds a new one), surplus rows are dropped, and an
    /// empty plane seeds every row from `seed` (the root's current snapshot).
    pub fn resize(&mut self, specs: &[TierRowSpec], seed: &Snapshot) {
        self.rows.truncate(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            if i < self.rows.len() {
                self.rows[i].set_width(spec.width);
            } else {
                let state = match self.rows.last() {
                    Some(leaf) => leaf.state.clone(),
                    None => seed.clone(),
                };
                self.rows.push(TierRow::new(spec.tier, spec.width, state));
            }
        }
    }

    /// Relay one refresh delta through every row, root-down — the downward
    /// leg of a tier refresh. All rows share one base (they are replicas), so
    /// one delta applies cleanly to each.
    pub fn apply_relayed_all(&mut self, delta: &DeltaSnapshot) -> Result<(), TierSyncError> {
        for row in &mut self.rows {
            row.apply_relayed(delta)?;
        }
        Ok(())
    }

    /// Every row retains its current state as a checkpoint (mirroring the
    /// root's retention at an epoch boundary) and prunes below `floor`.
    pub fn retain_checkpoints(&mut self, floor: u64) {
        for row in &mut self.rows {
            row.retain_checkpoint();
            row.prune(floor);
        }
    }

    /// Drop all rows and the sync marker (the fleet shrank back under the
    /// root's fan-out, or the state was replaced wholesale).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.synced = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::COORDINATOR;

    #[test]
    fn tier_peers_sit_just_under_the_root() {
        assert_eq!(tier_peer(0), COORDINATOR);
        assert_eq!(tier_peer(1), COORDINATOR - 1);
        assert!(crate::transport::is_coordinator_side(tier_peer(3)));
        assert!(!crate::transport::is_coordinator_side(1_000_000));
    }
}
