//! The synthetic vulnerable browser.
//!
//! The Red Team exercise protected Firefox 1.0.0 and attacked it through web pages that
//! exploited ten known defects (Section 4.3). This module builds a stand-in: a guest
//! program whose "pages" are word streams read from the input port. The first word of a
//! page selects a browser *feature* (dispatched through a bounds-checked jump table);
//! each feature routine contains one seeded defect reproducing the error class of the
//! corresponding Bugzilla entry — the same invariant is learnable, the same monitor
//! detects the failure, and the same repair strategy corrects it.
//!
//! | Feature | Bugzilla | Error class | Detection | Successful repair |
//! |---|---|---|---|---|
//! | 1 | 290162 | unchecked JS type → corrupted virtual call | Memory Firewall | set function pointer to an observed callee |
//! | 2 | 295854 | unchecked JS type, object payload also corrupted | Memory Firewall | skip the call |
//! | 3 | 312278 | object erroneously collected and reallocated | Memory Firewall | set function pointer to an observed callee |
//! | 4 | 269095 | reallocated memory not reinitialized | Memory Firewall | return from the enclosing procedure |
//! | 5 | 320182 | reallocated memory not reinitialized (copy of 4) | Memory Firewall | return from the enclosing procedure |
//! | 6 | 296134 | negative string length passed to a copy | Memory Firewall | enforce lower bound on the length |
//! | 7 | 311710 | negative array index, three copy-pasted defects | Memory Firewall | enforce lower bound on the index (three patches) |
//! | 8 | 285595 | GIF extension sign bug, one frame above the failure | Heap Guard | lower bound in the caller (needs stack walking) |
//! | 9 | 325403 | buffer-size integer overflow | Heap Guard | enforce copy-length ≤ buffer-size (needs expanded learning) |
//! | 10 | 307259 | soft-hyphen host-name length bug | Heap Guard | not repairable (needs a sum-of-lengths invariant) |
//!
//! The "type confusion" defects treat any page word at or above
//! [`NATIVE_TAG_THRESHOLD`] as a trusted native-object pointer, mirroring the missing
//! type checks in the real defects: legitimate pages only carry small scalar values, so
//! the corruption paths never execute during learning.
//!
//! The builder also records, in a side symbol table used only by tests and the
//! experiment harnesses, the addresses of the seeded defect sites and expected failure
//! locations. ClearView never sees this table.

use cv_isa::{Addr, BinaryImage, Cond, MemRef, Operand, Port, ProgramBuilder, Reg, Word};
use std::collections::BTreeMap;

/// The page word that selects each feature.
pub mod feature {
    /// Unchecked JS type (Bugzilla 290162).
    pub const JS_TYPE_290162: u32 = 1;
    /// Unchecked JS type with corrupted payload (Bugzilla 295854).
    pub const JS_TYPE_295854: u32 = 2;
    /// Garbage-collection reallocation (Bugzilla 312278).
    pub const GC_REALLOC_312278: u32 = 3;
    /// Uninitialized reallocated memory (Bugzilla 269095).
    pub const WIDGET_269095: u32 = 4;
    /// Uninitialized reallocated memory, copy-paste twin (Bugzilla 320182).
    pub const WIDGET_320182: u32 = 5;
    /// Negative string length (Bugzilla 296134).
    pub const STRING_296134: u32 = 6;
    /// Negative array index, three defects (Bugzilla 311710).
    pub const ARRAY_311710: u32 = 7;
    /// GIF extension heap overflow (Bugzilla 285595).
    pub const GIF_285595: u32 = 8;
    /// Buffer growth integer overflow (Bugzilla 325403).
    pub const GROW_325403: u32 = 9;
    /// Soft-hyphen host-name overflow (Bugzilla 307259).
    pub const HOSTNAME_307259: u32 = 10;
}

/// Page words at or above this value are (incorrectly) trusted as native-object
/// pointers by the type-confusion defects. Legitimate content stays well below it.
pub const NATIVE_TAG_THRESHOLD: Word = 0x50000;

/// The marker word rendered after a feature routine returns successfully.
pub const DONE_MARKER: Word = 0xD00E;

/// The marker rendered for an unknown feature selector.
pub const UNKNOWN_FEATURE_MARKER: Word = 0xEE0F;

/// The built browser: a stripped image plus a test-only symbol table.
#[derive(Debug, Clone)]
pub struct Browser {
    /// The stripped binary image ClearView protects.
    pub image: BinaryImage,
    /// Debug symbols (defect sites, expected failure locations). Tests and harnesses
    /// only — never given to ClearView.
    pub symbols: BTreeMap<String, Addr>,
}

impl Browser {
    /// Build the browser.
    pub fn build() -> Browser {
        let mut b = ProgramBuilder::new();

        // ---- Handlers ("compiled JavaScript methods" / widget callbacks) ------------
        // Handlers are assembled first so feature routines can embed their addresses as
        // immediates, the way compiled code embeds absolute method addresses.
        let mut handler_addrs: BTreeMap<&'static str, Addr> = BTreeMap::new();
        let simple_handler = |b: &mut ProgramBuilder, name: &'static str, marker: u32| {
            let l = b.function(name);
            let addr = b.label_addr(l).expect("just bound");
            b.output(marker, Port::Render);
            b.ret();
            addr
        };
        handler_addrs.insert("h1a", simple_handler(&mut b, "h1a", 0x1A1));
        handler_addrs.insert("h1b", simple_handler(&mut b, "h1b", 0x1B1));
        handler_addrs.insert("h3a", simple_handler(&mut b, "h3a", 0x3A1));
        handler_addrs.insert("h3b", simple_handler(&mut b, "h3b", 0x3B1));
        handler_addrs.insert("h7a", simple_handler(&mut b, "h7a", 0x7A1));
        handler_addrs.insert("h7b", simple_handler(&mut b, "h7b", 0x7B1));
        // Handlers that render *through the object's data pointer*: forcing the call to
        // them still crashes when the object is corrupted.
        let deref_handler = |b: &mut ProgramBuilder, name: &'static str| {
            let l = b.function(name);
            let addr = b.label_addr(l).unwrap();
            b.mov(Reg::Ebx, Operand::Mem(MemRef::base_disp(Reg::Esi, 1)));
            b.mov(Reg::Ebx, Operand::Mem(MemRef::base(Reg::Ebx)));
            b.output(Reg::Ebx, Port::Render);
            b.ret();
            addr
        };
        handler_addrs.insert("h2a", deref_handler(&mut b, "h2a"));
        handler_addrs.insert("h4a", deref_handler(&mut b, "h4a"));
        handler_addrs.insert("h5a", deref_handler(&mut b, "h5a"));

        // ---- Feature routines --------------------------------------------------------
        let f1 = build_js_type_290162(&mut b, handler_addrs["h1a"], handler_addrs["h1b"]);
        let f2 = build_js_type_295854(&mut b, handler_addrs["h2a"]);
        let f3 = build_gc_realloc_312278(&mut b, handler_addrs["h3a"], handler_addrs["h3b"]);
        let f4 = build_widget(&mut b, "269095", handler_addrs["h4a"]);
        let f5 = build_widget(&mut b, "320182", handler_addrs["h5a"]);
        let f6 = build_string_296134(&mut b);
        let f7 = build_array_311710(&mut b, handler_addrs["h7a"], handler_addrs["h7b"]);
        let f8 = build_gif_285595(&mut b);
        let f9 = build_grow_325403(&mut b);
        let f10 = build_hostname_307259(&mut b);

        // ---- Dispatch stubs ----------------------------------------------------------
        // Each stub calls its feature routine and then renders the completion marker.
        let stub = |b: &mut ProgramBuilder, name: &str, target: cv_isa::Label| {
            let l = b.new_label(name);
            b.bind(l);
            b.call(target);
            b.output(DONE_MARKER, Port::Render);
            b.halt();
            l
        };
        let unknown_stub = {
            let l = b.new_label("stub_unknown");
            b.bind(l);
            b.output(UNKNOWN_FEATURE_MARKER, Port::Render);
            b.output(DONE_MARKER, Port::Render);
            b.halt();
            l
        };
        let stubs = [
            stub(&mut b, "stub_1", f1),
            stub(&mut b, "stub_2", f2),
            stub(&mut b, "stub_3", f3),
            stub(&mut b, "stub_4", f4),
            stub(&mut b, "stub_5", f5),
            stub(&mut b, "stub_6", f6),
            stub(&mut b, "stub_7", f7),
            stub(&mut b, "stub_8", f8),
            stub(&mut b, "stub_9", f9),
            stub(&mut b, "stub_10", f10),
        ];

        // ---- Dispatch table (static data holding code addresses) --------------------
        let table = b.data_here();
        b.data_code_ref(unknown_stub); // selector 0 is invalid
        for s in stubs {
            b.data_code_ref(s);
        }

        // ---- main: bounds-checked jump-table dispatch --------------------------------
        let main = b.function("main");
        b.input(Reg::Eax, Port::Input);
        let unknown = b.new_label("selector_out_of_range");
        b.cmp(Reg::Eax, 11u32);
        b.jcc(Cond::AboveEq, unknown);
        b.jmp_indirect(Operand::Mem(MemRef {
            base: None,
            index: Some(Reg::Eax),
            scale: 1,
            disp: table as i32,
        }));
        b.bind(unknown);
        b.output(UNKNOWN_FEATURE_MARKER, Port::Render);
        b.output(DONE_MARKER, Port::Render);
        b.halt();
        b.set_entry(main);

        for (name, addr) in &handler_addrs {
            b.note_symbol(name, *addr);
        }
        let (image, symbols) = b.build_with_symbols().expect("browser assembles");
        Browser { image, symbols }
    }

    /// Look up a symbol recorded by the builder (tests/harnesses only).
    pub fn sym(&self, name: &str) -> Addr {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("unknown browser symbol `{name}`"))
    }

    /// The guest heap base — attack pages embed heap addresses as "downloaded code"
    /// pointers, exactly like heap-spray payloads.
    pub fn heap_base(&self) -> Addr {
        self.image.layout.heap_base
    }
}

impl Default for Browser {
    fn default() -> Self {
        Browser::build()
    }
}

/// Emit the range-tagged type-confusion check: if the payload in `payload_reg` looks
/// like a native-object pointer (≥ [`NATIVE_TAG_THRESHOLD`]) the routine trusts it.
/// Returns the label of the "not native" continuation, which the caller must bind after
/// emitting the corruption path.
fn emit_native_tag_check(b: &mut ProgramBuilder, payload_reg: Reg) -> cv_isa::Label {
    let not_native = b.new_label("not_native");
    b.cmp(payload_reg, NATIVE_TAG_THRESHOLD);
    b.jcc(Cond::Below, not_native);
    not_native
}

/// Feature 1 — Bugzilla 290162: a JavaScript system routine fails to check an object's
/// type; content that claims to be a native object overwrites the object's method
/// pointer, and the ensuing virtual call jumps to downloaded data.
///
/// Page words (after the feature selector): `[payload, handler_selector]`.
fn build_js_type_290162(b: &mut ProgramBuilder, h_a: Addr, h_b: Addr) -> cv_isa::Label {
    let f = b.new_label("f_290162");
    b.bind(f);
    b.input(Reg::Edx, Port::Input); // payload ("downloaded data")
    b.input(Reg::Ecx, Port::Input); // handler selector (0 or 1)
    b.alloc(Reg::Esi, 2); // the object
    b.alloc(Reg::Edi, 2); // the downloaded-content buffer
    b.mov(Operand::Mem(MemRef::base(Reg::Edi)), Reg::Edx);
    // Benign initialization: method pointer chosen by the (checked) selector.
    let use_b = b.new_label("f1_use_b");
    let init_done = b.new_label("f1_init_done");
    b.cmp(Reg::Ecx, 0u32);
    b.jcc(Cond::Ne, use_b);
    b.mov(Operand::Mem(MemRef::base(Reg::Esi)), h_a);
    b.jmp(init_done);
    b.bind(use_b);
    b.mov(Operand::Mem(MemRef::base(Reg::Esi)), h_b);
    b.bind(init_done);
    // The defect: payloads that look like native objects are trusted and their word
    // becomes the method pointer, with no type check.
    let not_native = emit_native_tag_check(b, Reg::Edx);
    b.mov(Reg::Ebx, Operand::Mem(MemRef::base(Reg::Edi)));
    b.mov(Operand::Mem(MemRef::base(Reg::Esi)), Reg::Ebx);
    b.bind(not_native);
    let call_site = b.call_indirect(Operand::Mem(MemRef::base(Reg::Esi)));
    b.note_symbol("vuln_290162_call", call_site);
    b.ret();
    f
}

/// Feature 2 — Bugzilla 295854: same type-confusion defect, but the corruption also
/// clobbers the object's data pointer, so forcing the call to a previously observed
/// method still crashes; only skipping the call survives.
///
/// Page words: `[payload_fptr, payload_data]`.
fn build_js_type_295854(b: &mut ProgramBuilder, h_a: Addr) -> cv_isa::Label {
    let f = b.new_label("f_295854");
    b.bind(f);
    b.input(Reg::Edx, Port::Input); // payload: would-be method pointer
    b.input(Reg::Ecx, Port::Input); // payload: would-be data pointer
    b.alloc(Reg::Esi, 2); // object: [0] method pointer, [1] data pointer
    b.alloc(Reg::Edi, 2); // downloaded-content buffer
    b.mov(Operand::Mem(MemRef::base(Reg::Edi)), Reg::Edx);
    b.mov(Operand::Mem(MemRef::base_disp(Reg::Edi, 1)), Reg::Ecx);
    // Benign initialization: a fresh data cell and the single observed method.
    b.alloc(Reg::Ebx, 1);
    b.mov(Operand::Mem(MemRef::base(Reg::Ebx)), 0x77u32);
    b.mov(Operand::Mem(MemRef::base_disp(Reg::Esi, 1)), Reg::Ebx);
    b.mov(Operand::Mem(MemRef::base(Reg::Esi)), h_a);
    // The defect: trusted "native" content overwrites both object fields.
    let not_native = emit_native_tag_check(b, Reg::Edx);
    b.mov(Reg::Ecx, Operand::Mem(MemRef::base(Reg::Edi)));
    b.mov(Operand::Mem(MemRef::base(Reg::Esi)), Reg::Ecx);
    b.mov(Reg::Ecx, Operand::Mem(MemRef::base_disp(Reg::Edi, 1)));
    b.mov(Operand::Mem(MemRef::base_disp(Reg::Esi, 1)), Reg::Ecx);
    b.bind(not_native);
    let call_site = b.call_indirect(Operand::Mem(MemRef::base(Reg::Esi)));
    b.note_symbol("vuln_295854_call", call_site);
    b.ret();
    f
}

/// Feature 3 — Bugzilla 312278: downloaded script obtains a reference to an object that
/// is erroneously garbage-collected and reallocated; the script then overwrites the new
/// occupant's method pointer, and the stale reference is used for a virtual call.
///
/// Page words: `[payload, handler_selector]`.
fn build_gc_realloc_312278(b: &mut ProgramBuilder, h_a: Addr, h_b: Addr) -> cv_isa::Label {
    let f = b.new_label("f_312278");
    b.bind(f);
    b.input(Reg::Edx, Port::Input); // payload
    b.input(Reg::Ecx, Port::Input); // handler selector
    b.alloc(Reg::Esi, 2);
    let use_b = b.new_label("f3_use_b");
    let init_done = b.new_label("f3_init_done");
    b.cmp(Reg::Ecx, 0u32);
    b.jcc(Cond::Ne, use_b);
    b.mov(Operand::Mem(MemRef::base(Reg::Esi)), h_a);
    b.jmp(init_done);
    b.bind(use_b);
    b.mov(Operand::Mem(MemRef::base(Reg::Esi)), h_b);
    b.bind(init_done);
    // The defect: native-looking content makes the routine treat the object as garbage;
    // it is freed while `esi` still references it, and the storage is immediately
    // reused for data the page controls.
    let not_native = emit_native_tag_check(b, Reg::Edx);
    b.free(Reg::Esi);
    b.alloc(Reg::Ebx, 2);
    b.mov(Operand::Mem(MemRef::base(Reg::Ebx)), Reg::Edx);
    b.bind(not_native);
    let call_site = b.call_indirect(Operand::Mem(MemRef::base(Reg::Esi)));
    b.note_symbol("vuln_312278_call", call_site);
    b.ret();
    f
}

/// Features 4 and 5 — Bugzilla 269095 / 320182: memory that is reallocated without
/// reinitialization is treated as a live widget; both its callback pointer and its data
/// pointer end up attacker-controlled. Forcing the callback or skipping the call still
/// uses the corrupted data; only returning from the enclosing procedure survives.
///
/// Page words: `[payload_fptr, payload_data]`.
fn build_widget(b: &mut ProgramBuilder, tag: &str, handler: Addr) -> cv_isa::Label {
    let f = b.new_label(&format!("f_{tag}"));
    b.bind(f);
    b.input(Reg::Edx, Port::Input); // payload: would-be callback pointer
    b.input(Reg::Ecx, Port::Input); // payload: would-be data pointer
    b.alloc(Reg::Esi, 2); // the widget: [0] callback, [1] data pointer
    b.alloc(Reg::Edi, 1); // the widget's data cell
    b.mov(Operand::Mem(MemRef::base(Reg::Edi)), 0x55u32);
    b.mov(Operand::Mem(MemRef::base_disp(Reg::Esi, 1)), Reg::Edi);
    b.mov(Operand::Mem(MemRef::base(Reg::Esi)), handler);
    // The defect: a native-looking payload releases the widget and reuses its storage
    // without reinitialization; the page's words land in both fields.
    let not_native = emit_native_tag_check(b, Reg::Edx);
    b.free(Reg::Esi);
    b.alloc(Reg::Ebx, 2);
    b.mov(Operand::Mem(MemRef::base(Reg::Ebx)), Reg::Edx);
    b.mov(Operand::Mem(MemRef::base_disp(Reg::Ebx, 1)), Reg::Ecx);
    b.bind(not_native);
    let call_site = b.call_indirect(Operand::Mem(MemRef::base(Reg::Esi)));
    b.note_symbol(&format!("vuln_{tag}_call"), call_site);
    // Post-call use of the widget: skipping the call is not enough to survive.
    b.mov(Reg::Ecx, Operand::Mem(MemRef::base_disp(Reg::Esi, 1)));
    b.mov(Reg::Ecx, Operand::Mem(MemRef::base(Reg::Ecx)));
    b.output(Reg::Ecx, Port::Render);
    b.ret();
    f
}

/// Feature 6 — Bugzilla 296134: the length of a string is computed without a sign
/// check; a negative length becomes a huge unsigned `memcpy` that overwrites the stack,
/// including the return address.
///
/// Page words: `[field_len, w0, w1, w2, w3]` (the four words are the "string data").
fn build_string_296134(b: &mut ProgramBuilder) -> cv_isa::Label {
    let f = b.new_label("f_296134");
    b.bind(f);
    b.input(Reg::Ecx, Port::Input); // field length from the page
    b.alloc(Reg::Esi, 8); // downloaded string data
    for i in 0..4 {
        b.input(Reg::Eax, Port::Input);
        b.mov(Operand::Mem(MemRef::base_disp(Reg::Esi, i)), Reg::Eax);
    }
    // The defect: len = field_len - 4 with no check that the result is positive.
    let len_site = b.sub(Reg::Ecx, 4u32);
    b.note_symbol("vuln_296134_len", len_site);
    b.sub(Reg::Esp, 8u32); // stack-local copy buffer (8 words)
    b.mov(Reg::Edi, Reg::Esp);
    let copy_site = b.copy(Reg::Edi, Reg::Esi, Reg::Ecx);
    b.note_symbol("vuln_296134_copy", copy_site);
    b.add(Reg::Esp, 8u32);
    let ret_site = b.ret();
    b.note_symbol("vuln_296134_ret", ret_site);
    f
}

/// Feature 7 — Bugzilla 311710: three copy-pasted routines each compute an array index
/// from page content without checking for negative values; the retrieved "object" is
/// then invoked, jumping through attacker-controlled memory.
///
/// Page words: `[rawA, a0, a1, a2, a3, rawB, b0..b3, rawC, c0..c3]`.
fn build_array_311710(b: &mut ProgramBuilder, h_a: Addr, h_b: Addr) -> cv_isa::Label {
    let build_get_elem = |b: &mut ProgramBuilder, tag: &str| -> cv_isa::Label {
        let f = b.new_label(&format!("get_elem_{tag}"));
        b.bind(f);
        b.input(Reg::Ecx, Port::Input); // raw index field
        b.alloc(Reg::Edi, 4); // "sprayed" buffer the page fills
        for i in 0..4 {
            b.input(Reg::Eax, Port::Input);
            b.mov(Operand::Mem(MemRef::base_disp(Reg::Edi, i)), Reg::Eax);
        }
        b.alloc(Reg::Ebx, 4); // the method-pointer array (directly after the spray)
        b.mov(Operand::Mem(MemRef::base(Reg::Ebx)), h_a);
        b.mov(Operand::Mem(MemRef::base_disp(Reg::Ebx, 1)), h_b);
        b.mov(Operand::Mem(MemRef::base_disp(Reg::Ebx, 2)), h_a);
        b.mov(Operand::Mem(MemRef::base_disp(Reg::Ebx, 3)), h_b);
        // The defect: idx = raw - 10, never checked for negative values.
        let idx_site = b.sub(Reg::Ecx, 10u32);
        b.note_symbol(&format!("vuln_311710{tag}_idx"), idx_site);
        let call_site = b.call_indirect(Operand::Mem(MemRef::indexed(Reg::Ebx, Reg::Ecx, 1, 0)));
        b.note_symbol(&format!("vuln_311710{tag}_call"), call_site);
        b.ret();
        f
    };
    let ga = build_get_elem(b, "a");
    let gb = build_get_elem(b, "b");
    let gc = build_get_elem(b, "c");
    let f = b.new_label("f_311710");
    b.bind(f);
    b.call(ga);
    b.call(gb);
    b.call(gc);
    b.ret();
    f
}

/// Feature 8 — Bugzilla 285595: the GIF extension parser never checks the sign of a
/// count read from the file; the pixel writer one call below then writes before the
/// start of its buffer. The invariant that fixes it lives in the caller, one procedure
/// above the failure location.
///
/// Page words: `[ext_count, pixel_value]`.
fn build_gif_285595(b: &mut ProgramBuilder) -> cv_isa::Label {
    // The leaf: writes one pixel through a precomputed pointer. It has learnable
    // invariants (the mode flag), but none of them correlate with the failure.
    let write_pixel = b.new_label("write_pixel");
    b.bind(write_pixel);
    let skip = b.new_label("wp_skip");
    b.cmp(Reg::Esi, 0u32); // mode flag, always 1 on observed executions
    b.jcc(Cond::Eq, skip);
    let store_site = b.mov(Operand::Mem(MemRef::base(Reg::Edi)), Reg::Edx);
    b.note_symbol("vuln_285595_store", store_site);
    b.bind(skip);
    b.ret();

    let f = b.new_label("f_285595");
    b.bind(f);
    b.input(Reg::Ecx, Port::Input); // extension block count from the GIF data
    b.input(Reg::Edx, Port::Input); // pixel value
    b.mov(Reg::Esi, 1u32); // mode flag
    b.alloc(Reg::Ebx, 16); // pixel buffer
                           // The defect: idx = count - 4, sign never checked (the caller's invariant).
    let count_site = b.sub(Reg::Ecx, 4u32);
    b.note_symbol("vuln_285595_count", count_site);
    b.lea(Reg::Edi, MemRef::indexed(Reg::Ebx, Reg::Ecx, 1, 0));
    b.call(write_pixel);
    b.ret();
    f
}

/// Feature 9 — Bugzilla 325403: a buffer growth size computed from page content wraps
/// around, so the allocated buffer is smaller than the data copied into it.
///
/// Page words: `[data_len, seed_word]`.
fn build_grow_325403(b: &mut ProgramBuilder) -> cv_isa::Label {
    let f = b.new_label("f_325403");
    b.bind(f);
    b.input(Reg::Ecx, Port::Input); // requested data length
    b.alloc(Reg::Esi, 128); // source data
    b.input(Reg::Eax, Port::Input);
    b.mov(Operand::Mem(MemRef::base(Reg::Esi)), Reg::Eax);
    // The defect: the new size is computed in a 16-bit field, so it can wrap.
    b.mov(Reg::Edx, Reg::Ecx);
    b.add(Reg::Edx, 8u32);
    b.and(Reg::Edx, 0xFFFFu32);
    let alloc_site = b.alloc(Reg::Ebx, Reg::Edx);
    b.note_symbol("vuln_325403_alloc", alloc_site);
    let copy_site = b.copy(Reg::Ebx, Reg::Esi, Reg::Ecx);
    b.note_symbol("vuln_325403_copy", copy_site);
    b.ret();
    f
}

/// Feature 10 — Bugzilla 307259: the host-name buffer size is computed from two segment
/// lengths; each individually looks normal, but their sum overflows the buffer. The
/// invariant needed (a sum of lengths bounded by a buffer length) is outside the
/// invariant templates, so ClearView cannot repair it.
///
/// Page words: `[len1, len2]`.
fn build_hostname_307259(b: &mut ProgramBuilder) -> cv_isa::Label {
    let f = b.new_label("f_307259");
    b.bind(f);
    b.input(Reg::Ecx, Port::Input); // first segment length
    b.input(Reg::Edx, Port::Input); // second segment length
    b.alloc(Reg::Esi, 32); // source
    b.alloc(Reg::Ebx, 12); // host-name buffer (12 words)
    let copy1 = b.copy(Reg::Ebx, Reg::Esi, Reg::Ecx);
    b.note_symbol("vuln_307259_copy1", copy1);
    b.lea(Reg::Edi, MemRef::indexed(Reg::Ebx, Reg::Ecx, 1, 0));
    let copy2 = b.copy(Reg::Edi, Reg::Esi, Reg::Edx);
    b.note_symbol("vuln_307259_copy2", copy2);
    b.ret();
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_runtime::{EnvConfig, ManagedExecutionEnvironment, MonitorConfig};

    #[test]
    fn browser_builds_and_runs_benign_pages() {
        let browser = Browser::build();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        // Feature 1, benign: small payload, handler 0 then handler 1.
        let r = env.run(&[feature::JS_TYPE_290162, 1234, 0]);
        assert!(r.is_completed(), "{:?}", r.status);
        assert_eq!(r.rendered, vec![0x1A1, DONE_MARKER]);
        let r = env.run(&[feature::JS_TYPE_290162, 1234, 1]);
        assert_eq!(r.rendered, vec![0x1B1, DONE_MARKER]);
        // Feature 2 renders through the object's data cell.
        let r = env.run(&[feature::JS_TYPE_295854, 777, 3]);
        assert_eq!(r.rendered, vec![0x77, DONE_MARKER]);
        // Feature 6, benign length.
        let r = env.run(&[feature::STRING_296134, 8, 11, 12, 13, 14]);
        assert!(r.is_completed());
        assert_eq!(r.rendered, vec![DONE_MARKER]);
        // Feature 7, benign indices.
        let page = {
            let mut p = vec![feature::ARRAY_311710];
            for raw in [10u32, 11, 12] {
                p.push(raw);
                p.extend([1, 2, 3, 4]);
            }
            p
        };
        let r = env.run(&page);
        assert!(r.is_completed());
        assert_eq!(r.rendered, vec![0x7A1, 0x7B1, 0x7A1, DONE_MARKER]);
        // Unknown feature selectors render the error marker but still complete.
        for bad in [0u32, 11, 999] {
            let r = env.run(&[bad]);
            assert!(r.is_completed());
            assert_eq!(r.rendered, vec![UNKNOWN_FEATURE_MARKER, DONE_MARKER]);
        }
    }

    #[test]
    fn widget_feature_renders_through_its_data_pointer() {
        let browser = Browser::build();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        let r = env.run(&[feature::WIDGET_269095, 11, 3]);
        assert!(r.is_completed());
        // Handler renders 0x55 (via data pointer) and the post-call use renders it again.
        assert_eq!(r.rendered, vec![0x55, 0x55, DONE_MARKER]);
        let r = env.run(&[feature::WIDGET_320182, 12, 4]);
        assert_eq!(r.rendered, vec![0x55, 0x55, DONE_MARKER]);
    }

    #[test]
    fn type_confusion_attack_subverts_an_unprotected_browser() {
        let browser = Browser::build();
        let heap = browser.heap_base();
        let mut env = ManagedExecutionEnvironment::new(
            browser.image.clone(),
            EnvConfig::with_monitors(MonitorConfig::bare()),
        );
        let r = env.run(&[feature::JS_TYPE_290162, heap + 2, 0]);
        assert!(
            !r.is_completed(),
            "the unprotected browser is compromised (control flow subverted)"
        );
    }

    #[test]
    fn type_confusion_attack_is_detected_by_the_memory_firewall() {
        let browser = Browser::build();
        let heap = browser.heap_base();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        let r = env.run(&[feature::JS_TYPE_290162, heap + 2, 0]);
        let f = r.failure().expect("monitor detects the attack");
        assert_eq!(f.location, browser.sym("vuln_290162_call"));
        assert!(r.rendered.is_empty(), "terminated before rendering");
        // The shadow stack shows the dispatch stub's call into the feature routine.
        assert_eq!(f.call_stack.len(), 1);
    }

    #[test]
    fn gc_and_widget_attacks_are_detected() {
        let browser = Browser::build();
        let heap = browser.heap_base();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        let r = env.run(&[feature::GC_REALLOC_312278, heap + 2, 0]);
        assert_eq!(
            r.failure().unwrap().location,
            browser.sym("vuln_312278_call")
        );
        let r = env.run(&[feature::WIDGET_269095, heap + 2, 7]);
        assert_eq!(
            r.failure().unwrap().location,
            browser.sym("vuln_269095_call")
        );
        let r = env.run(&[feature::WIDGET_320182, heap + 2, 7]);
        assert_eq!(
            r.failure().unwrap().location,
            browser.sym("vuln_320182_call")
        );
        let r = env.run(&[feature::JS_TYPE_295854, heap + 2, 7]);
        assert_eq!(
            r.failure().unwrap().location,
            browser.sym("vuln_295854_call")
        );
    }

    #[test]
    fn negative_length_attack_is_detected_at_the_return() {
        let browser = Browser::build();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        // field_len = 3 -> len = -1 -> runaway copy overwrites the return address.
        let r = env.run(&[feature::STRING_296134, 3, 11, 12, 13, 14]);
        let f = r.failure().expect("monitor detects the attack");
        assert_eq!(f.location, browser.sym("vuln_296134_ret"));
    }

    #[test]
    fn gif_attack_is_detected_by_heap_guard_in_the_leaf() {
        let browser = Browser::build();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        // ext_count = 3 -> idx = -1 -> the pixel store hits the leading canary.
        let r = env.run(&[feature::GIF_285595, 3, 0x1234]);
        let f = r.failure().expect("heap guard detects the attack");
        assert_eq!(f.location, browser.sym("vuln_285595_store"));
        // Without Heap Guard the write silently corrupts the heap and the run completes.
        let mut env = ManagedExecutionEnvironment::new(
            browser.image.clone(),
            EnvConfig::with_monitors(MonitorConfig::firewall_and_shadow_stack()),
        );
        let r = env.run(&[feature::GIF_285595, 3, 0x1234]);
        assert!(r.is_completed());
    }

    #[test]
    fn buffer_growth_overflow_is_detected_by_heap_guard() {
        let browser = Browser::build();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        let r = env.run(&[feature::GROW_325403, 0xFFFC, 42]);
        let f = r.failure().expect("heap guard detects the attack");
        assert_eq!(f.location, browser.sym("vuln_325403_copy"));
    }

    #[test]
    fn hostname_attack_is_detected() {
        let browser = Browser::build();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        let r = env.run(&[feature::HOSTNAME_307259, 8, 8]);
        let f = r.failure().expect("heap guard detects the attack");
        assert_eq!(f.location, browser.sym("vuln_307259_copy2"));
    }

    #[test]
    fn array_attack_fails_in_the_first_copy_pasted_routine() {
        let browser = Browser::build();
        let heap = browser.heap_base();
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        let mut page = vec![feature::ARRAY_311710];
        for _ in 0..3 {
            page.push(4); // raw = 4 -> idx = -6 -> reads the sprayed buffer
            page.extend([heap + 2, heap + 2, heap + 2, heap + 2]);
        }
        let r = env.run(&page);
        let f = r.failure().expect("monitor detects the attack");
        assert_eq!(f.location, browser.sym("vuln_311710a_call"));
    }
}
