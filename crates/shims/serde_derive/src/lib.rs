//! Offline stand-in for `serde_derive`: the `Serialize` / `Deserialize` derive macros.
//!
//! This build environment has no network access, so the real serde cannot be fetched.
//! Nothing in this workspace performs actual serialization (there is no serde_json or
//! bincode); the derives exist so that types can declare serializability. The stand-in
//! derives therefore expand to nothing — the `serde` shim's traits have blanket impls.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
