//! Cross-crate integration test for the fleet engine at the scale the ROADMAP asks
//! for: a ≥1,000-member community where attacking a handful of members immunizes
//! everyone (the acceptance criterion for the cv-fleet subsystem).

use clearview::apps::{learning_suite, red_team_exploits, Browser};
use clearview::core::ClearViewConfig;
use clearview::fleet::{Fleet, FleetConfig, FleetMessage, Presentation};

#[test]
fn a_thousand_member_fleet_is_immunized_by_five_attacked_members() {
    const NODES: usize = 1_000;
    const ATTACKERS: [usize; 5] = [0, 123, 456, 789, 999];

    let browser = Browser::build();
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(NODES),
    );
    fleet.distributed_learning(&learning_suite());
    assert!(fleet.model().invariants.len() > 50);

    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");

    // Attack epochs: only five members are ever exposed.
    let mut protected_after = None;
    for round in 1..=12u64 {
        let batch: Vec<Presentation> = ATTACKERS
            .iter()
            .map(|&node| Presentation::new(node, exploit.page()))
            .collect();
        let outcome = fleet.run_epoch(&batch);
        if fleet.is_protected_against(location) && outcome.completed() == ATTACKERS.len() {
            protected_after = Some(round);
            break;
        }
    }
    let protected_after = protected_after.expect("fleet reached immunity");

    // Every remaining member survives its first exposure via the distributed patch.
    let verify: Vec<Presentation> = (0..NODES)
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    assert_eq!(outcome.completed(), NODES, "all {NODES} members are immune");
    assert_eq!(outcome.blocked(), 0);

    // The immunity metric agrees with the protocol outcome.
    let record = fleet.metrics().immunity(location).expect("immunity record");
    assert_eq!(record.first_failure_epoch, 1);
    assert!(record.epochs_to_immunity().unwrap() <= protected_after);

    // Patch plans reached all members as single batched messages.
    assert!(fleet.log().messages().iter().any(
        |m| matches!(m, FleetMessage::PatchPushes { members, plan, .. }
            if *members == NODES && !plan.is_empty())
    ));
    assert!(
        fleet.log().batched_wire_words() * 10 < fleet.log().unbatched_wire_words(),
        "batching saves at least 10x wire traffic at this scale"
    );
}
