//! # cv-fleet — a sharded, parallel application-community engine
//!
//! ClearView's headline result (Section 3 of the paper) is that an *application
//! community* — many machines running the same application — can collaboratively
//! learn invariants, detect attacks, and immunize members that were never attacked.
//! The `cv-community` crate demonstrates the protocol at N = a handful; this crate is
//! the same protocol engineered for thousands of simulated members:
//!
//! * [`ShardedInvariantStore`] (`shard.rs`) — the community invariant database
//!   partitioned by check-address shard, so member uploads merge in parallel, one
//!   worker per shard, with a result identical to the sequential merge.
//! * [`EventEngine`] (`engine.rs`) — the default member-execution engine:
//!   execution batched into epochs and fanned out across worker threads over
//!   **one shared read-only program image** per fleet; a member is a compact
//!   slot (an interned patch-configuration handle plus sparse auxiliary cells),
//!   and runs borrow copy-on-write state from a per-worker materialized-config
//!   cache — tens of bytes per idle member instead of a full environment.
//! * [`EpochScheduler`] (`scheduler.rs`) — the classic engine: each member keeps
//!   its own `ManagedExecutionEnvironment`. Byte-identical outputs to the event
//!   engine (`tests/engine_parity.rs`); kept as the parity baseline.
//! * The **sharded manager plane** (`cv_core::manager`, driven by `fleet.rs`) — the
//!   responder state partitioned by failure location into
//!   [`ResponderShard`](cv_core::ResponderShard)s fed by a pure
//!   [`DigestRouter`](cv_core::DigestRouter); per-shard
//!   [`PatchPlan`](cv_core::PatchPlan)s merge deterministically (stable sort by
//!   failure location), so the sharded-parallel manager writes a byte-identical
//!   [`BatchLog`] to the sequential one.
//! * [`FleetMessage`] / [`BatchLog`] (`protocol.rs`) — the batched wire protocol:
//!   invariant uploads, failure notifications, observation reports, and shard-merged
//!   patch plans travel as per-epoch batches instead of one message per event.
//! * [`FleetMetrics`] (`metrics.rs`) — pages/sec throughput, time-to-immunity per
//!   exploit, patch-propagation latency, and per-shard manager time with the
//!   manager-parallel speedup. Since PR 6 the aggregate is a **fold of the
//!   fleet's [`MetricEvent`] stream** ([`Fleet::metric_log`]) — one accounting
//!   source of truth — and the hot path is instrumented with `cv-obs` spans
//!   whose measurements are the very durations the events carry.
//! * [`Fleet`] (`fleet.rs`) — the engine tying them together: the paper's learn →
//!   detect → check → repair → distribute loop, at community scale.
//!
//! `cv-community` is a thin N=small facade over [`Fleet`] (one presentation per
//! epoch reproduces the seed's sequential protocol exactly); `examples/fleet_demo.rs`
//! and the `fleet_scale` binary in `cv-bench` exercise the 1,000+-member
//! configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fleet;
mod metrics;
mod protocol;
mod scheduler;
mod shard;
mod sync;
mod transport;

pub use engine::EventEngine;
pub use fleet::{EngineKind, EpochOutcome, Fleet, FleetConfig, MemberOutcome};
pub use metrics::{FleetMetrics, ImmunityRecord, MetricEvent};
pub use protocol::{BatchLog, FleetMessage, NodeId, PatchPushKind, Presentation};
pub use scheduler::EpochScheduler;
pub use shard::ShardedInvariantStore;
pub use sync::{
    MembershipOp, SyncOutcome, SyncPayload, SyncSource, TierRow, TierSyncError, TierSyncPlane,
};
pub use transport::{
    is_coordinator_side, tier_peer, ChaosConfig, ChaosControls, ChaosTransport, DedupeWindow,
    InProcessTransport, PeerId, SequencedApplier, SocketTransport, Transport, TransportKind,
    TransportStats, COORDINATOR, MAX_TIER_PEERS,
};

// The envelope is the unit every transport backend exchanges.
pub use cv_store::{Envelope, EnvelopePayload};

// The manager-plane types live in `cv_core::manager`; re-export the ones fleet
// callers touch so downstream code needs only this crate.
pub use cv_core::{DigestRouter, NetPatchState, PatchPlan, PlanOp, ResponderShard};

// The persistence-plane types fleet callers hold (member checkpoints, deltas).
pub use cv_store::{DeltaSnapshot, Snapshot, StoreError};
