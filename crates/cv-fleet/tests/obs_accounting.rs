//! Accounting invariants between the three observability surfaces:
//!
//! 1. the fleet's [`MetricEvent`] log is the source of truth — re-folding it
//!    with [`FleetMetrics::from_events`] must reproduce the incrementally-folded
//!    aggregate the fleet serves from [`Fleet::metrics`], field for field;
//! 2. the `cv-obs` trace and the metrics fold never disagree: each instrumented
//!    phase is measured once (`timed_span`) and the same `Duration` feeds both
//!    planes, so recorded span totals equal the derived metrics **exactly**;
//! 3. counters and churn instants match the fold one-for-one on a deterministic
//!    run (pages, patch applications, delta cuts, crashes, rejoins, joins).
//!
//! This file enables the **process-global** recorder, so it lives in its own
//! integration-test binary (cargo gives each test file its own process) and the
//! tests inside serialize on a mutex — the recorder stream must belong to one
//! test at a time.

use cv_apps::{learning_suite, red_team_exploits, Browser};
use cv_core::ClearViewConfig;
use cv_fleet::{Fleet, FleetConfig, FleetMetrics, MembershipOp, Presentation};
use cv_obs::{recorder, EventKind, Summary, TraceEvent};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes recorder access across the tests in this binary.
static RECORDER_GATE: Mutex<()> = Mutex::new(());

/// One deterministic fleet life: distributed learning, a checkpoint, eight
/// attacked epochs, churn (two crashes, one delta rejoin + one full rejoin, one
/// warm join), and a fleet-wide verification epoch. Exercises every accounting
/// path: epochs, fan-outs, patch pushes, snapshot, delta cut + sync, bootstrap,
/// and the churn counters.
fn run_fleet() -> Fleet {
    let browser = Browser::build();
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(24).sequential().with_manager_shards(4),
    );
    fleet.distributed_learning(&learning_suite());
    let base = fleet.checkpoint();

    let batch: Vec<Presentation> = (0..4)
        .map(|k| Presentation::new(k * 5, exploit.page()))
        .collect();
    for _ in 0..8 {
        fleet.run_epoch(&batch);
    }
    fleet.run_epoch_churn(&batch, &[20, 21]);
    fleet.apply_membership(MembershipOp::Rejoin {
        node: 20,
        checkpoint: Some(&base),
    });
    fleet.apply_membership(MembershipOp::Rejoin {
        node: 21,
        checkpoint: None,
    });
    fleet.apply_membership(MembershipOp::JoinWarm);

    let verify: Vec<Presentation> = (0..fleet.node_count())
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    fleet.run_epoch(&verify);
    fleet
}

/// Count the instants named `name` that are stamped with this fleet's id.
fn instants(events: &[TraceEvent], name: &str, fleet_id: u64) -> u64 {
    events
        .iter()
        .filter(|e| {
            e.name == name
                && matches!(e.kind, EventKind::Instant)
                && e.arg("fleet") == Some(fleet_id)
        })
        .count() as u64
}

#[test]
fn metric_log_refolds_to_the_served_aggregate_and_disabled_recorder_stays_empty() {
    let _gate = RECORDER_GATE.lock().unwrap_or_else(|e| e.into_inner());
    recorder().set_enabled(false);
    recorder().drain();

    let fleet = run_fleet();

    // Zero-cost-when-disabled is also zero-*events*-when-disabled: the whole
    // fleet life above recorded nothing.
    assert!(
        recorder().is_empty(),
        "disabled recorder buffered {} event(s)",
        recorder().len()
    );

    // The served aggregate is exactly the fold of the event log.
    let metrics = fleet.metrics();
    let replayed =
        FleetMetrics::from_events(metrics.manager_shard_times().len(), fleet.metric_log());
    assert_eq!(
        *metrics, replayed,
        "metric log does not refold to the aggregate"
    );

    // And the log actually carries the run (this is not a vacuous equality).
    assert_eq!(metrics.epochs, 10);
    assert!(metrics.pages_processed > 0);
    assert!(metrics.patch_pushes > 0);
    assert_eq!(metrics.snapshots_taken, 1);
    assert_eq!(metrics.delta_syncs, 1);
    assert_eq!(metrics.delta_cuts, 1);
    assert_eq!(metrics.crashes, 2);
    assert_eq!(metrics.rejoins, 2);
    assert_eq!(metrics.warm_joins, 1);
    assert!(
        metrics.execution_time > Duration::ZERO,
        "timed phases carry real durations"
    );
}

#[test]
fn recorded_spans_and_counters_reconcile_exactly_with_the_metrics_fold() {
    let _gate = RECORDER_GATE.lock().unwrap_or_else(|e| e.into_inner());
    recorder().drain();
    recorder().set_enabled(true);

    let fleet = run_fleet();

    recorder().set_enabled(false);
    let events = recorder().drain();
    let metrics = fleet.metrics();
    let summary = Summary::build_for_fleet(&events, fleet.obs_id());
    let total = |name: &str| summary.phase(name).map_or(Duration::ZERO, |p| p.total);
    let count = |name: &str| summary.phase(name).map_or(0, |p| p.count);

    // Span totals equal the derived aggregate *exactly* — not within a
    // tolerance. `timed_span` measures once and both planes fold that one
    // measurement.
    assert_eq!(total("fleet.execution"), metrics.execution_time);
    assert_eq!(count("fleet.execution"), metrics.epochs);
    assert_eq!(total("fleet.manager"), metrics.manager_time);
    assert_eq!(total("fleet.manager_fanout"), metrics.manager_fanout_time);
    assert_eq!(total("fleet.delta_cut"), metrics.delta_cut_time);
    assert_eq!(count("fleet.delta_cut"), metrics.delta_cuts);
    // The push span runs every epoch; the metrics event folds in only rounds
    // that pushed a non-empty plan.
    assert_eq!(count("fleet.patch_push"), metrics.epochs);
    assert!(total("fleet.patch_push") >= metrics.patch_propagation_time);
    // Per-shard busy time: the manager_shard spans sum to the fan-out busy
    // accounting (each shard drive is one span and one busy sample).
    let shard_busy: Duration = metrics.manager_shard_times().iter().sum();
    assert_eq!(total("fleet.manager_shard"), shard_busy);

    // Final counter samples are the fold's counters.
    assert_eq!(
        summary.counters.get("fleet.pages_processed").copied(),
        Some(metrics.pages_processed)
    );
    assert_eq!(
        summary.counters.get("fleet.patch_applications").copied(),
        Some(metrics.patch_applications)
    );

    // Churn instants match the churn counters one-for-one.
    let id = fleet.obs_id();
    assert_eq!(instants(&events, "churn.crash", id), metrics.crashes);
    assert_eq!(instants(&events, "churn.rejoin", id), metrics.rejoins);
    assert_eq!(instants(&events, "churn.join_warm", id), metrics.warm_joins);
    assert_eq!(instants(&events, "churn.join_cold", id), metrics.cold_joins);

    // The repair timeline for the attacked location ran detection → plan push →
    // protected, in that order.
    assert_eq!(
        summary.timelines.len(),
        1,
        "one failure location, one timeline"
    );
    let timeline = &summary.timelines[0];
    let names: Vec<&str> = timeline.events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names.first().copied(), Some("timeline.detected"));
    assert_eq!(names.last().copied(), Some("timeline.protected"));
    assert!(
        names.contains(&"timeline.plan_push"),
        "the plan push stage was recorded: {names:?}"
    );
    let protected_epoch = timeline.events.last().and_then(|e| e.epoch).unwrap();
    let record = metrics.immunity(timeline.location as u32).unwrap();
    assert_eq!(record.protected_epoch, Some(protected_epoch));
    assert_eq!(
        timeline.events.first().and_then(|e| e.epoch),
        Some(record.first_failure_epoch)
    );
}
