//! Changepoint gate over the perf history: the verdict layer of the cv-perf
//! performance version system.
//!
//! Where `bench_gate` compares one fresh record against one committed baseline
//! at a fixed tolerance, `perf_gate` judges the fresh **multi-round medians**
//! (the `"spread"` sections the bench bins write with `--rounds N`) against the
//! trailing window of comparable records in the append-only
//! `perf/history.jsonl`:
//!
//! - **changepoint**: fresh median outside `k · noise` of the window median,
//!   where noise is the scaled MAD of the window medians (floored by the
//!   within-record spreads and a small fraction of the center) — so a real 15%
//!   step fails while a noisy-but-flat series passes;
//! - **drift**: the last few medians plus the fresh one strictly monotone in
//!   the bad direction with more than `drift_frac` total loss — catching slow
//!   regressions that stay inside the band at every single step.
//!
//! Records are only compared when bench, flags signature, and core count all
//! match; mismatched history entries are skipped with a warning, never
//! false-alarmed (a 4-core runner must not page anyone about 1-core numbers).
//!
//! Run with:
//!   `cargo run --release -p cv-bench --bin perf_gate -- [OPTIONS]`
//!
//! Options:
//!   --history PATH    history file (default `perf/history.jsonl`)
//!   --bench-dir DIR   directory holding the fresh `BENCH_*.json` (default `.`)
//!   --append          append the fresh records to the history after a clean
//!                     gate (never after a failure: a regressed run must not
//!                     quietly become the new normal)
//!   --commit HASH     commit to stamp into appended records (default:
//!                     `git rev-parse --short HEAD`, else `"unknown"`)
//!   --explain         print the full per-key verdict table: the history
//!                     window (commit → median), window median, noise band,
//!                     fresh median, and which rule decided
//!   --k F             changepoint band half-width in noise units (default 4)
//!   --window N        trailing window size (default 8)
//!   --min-history N   comparable records required before verdicts fire
//!                     (default 3; below it the gate passes with a note)

use cv_perf::{
    evaluate_key, json, Direction, GateConfig, History, KeyVerdict, MetricStats, Outcome,
    PerfRecord,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// The gated spread keys per bench file. All higher-is-better throughputs —
/// the same rationale as `bench_gate`'s GATES table (wall-clock latency gating
/// on shared runners is a flake machine), but over multi-round medians.
const GATED: &[(&str, &str, &[&str])] = &[
    (
        "BENCH_fleet.json",
        "fleet_scale",
        &["pages_per_second_sequential", "pages_per_second_parallel"],
    ),
    (
        "BENCH_learning.json",
        "learning_overhead",
        &["events_per_second"],
    ),
    (
        "BENCH_snapshot.json",
        "snapshot",
        &[
            "encode_mb_s_1k",
            "decode_mb_s_1k",
            "encode_mb_s_10k",
            "decode_mb_s_10k",
            "encode_mb_s_50k",
            "decode_mb_s_50k",
        ],
    ),
];

/// Build the canonical flags signature for one bench record: the sorted
/// `key=value` pairs of every configuration axis that makes runs
/// incomparable. Flags capture *workload shape*; `cores` rides separately.
fn flags_signature(bench: &str, value: &json::Value) -> Result<String, String> {
    let int = |field: &str| {
        value
            .get(field)
            .and_then(json::Value::as_f64)
            .map(|n| n as u64)
            .ok_or_else(|| format!("{bench}: record has no numeric {field:?}"))
    };
    match bench {
        "fleet_scale" => Ok(format!(
            "epochs={},nodes={},workers={}",
            int("epochs")?,
            int("nodes")?,
            int("workers")?
        )),
        "learning_overhead" => Ok(format!("pages={}", int("pages")?)),
        "snapshot" => Ok("sizes=1k,10k,50k".to_string()),
        other => Err(format!("no flags signature rule for bench {other:?}")),
    }
}

/// Convert one fresh `BENCH_*.json` (with a `"spread"` section) into a
/// [`PerfRecord`] stamped with `commit`.
fn record_from_bench(
    text: &str,
    file: &str,
    bench: &str,
    commit: &str,
) -> Result<PerfRecord, String> {
    let value = json::parse(text).map_err(|e| format!("{file}: {e}"))?;
    let got_bench = value
        .get("bench")
        .and_then(json::Value::as_str)
        .ok_or_else(|| format!("{file}: no \"bench\" field"))?;
    if got_bench != bench {
        return Err(format!(
            "{file}: expected bench {bench:?}, found {got_bench:?} — was this file \
             overwritten by a different mode (e.g. --chaos)?"
        ));
    }
    let int = |field: &str| {
        value
            .get(field)
            .and_then(json::Value::as_f64)
            .map(|n| n as u32)
            .ok_or_else(|| {
                format!(
                    "{file}: no numeric {field:?} — re-run the bench with --rounds \
                     (old-format records cannot be gated)"
                )
            })
    };
    let spread = value
        .get("spread")
        .and_then(json::Value::as_obj)
        .ok_or_else(|| {
            format!(
                "{file}: no \"spread\" object — re-run the bench with --rounds \
                 (old-format records cannot be gated)"
            )
        })?;
    let mut metrics = BTreeMap::new();
    for (key, stats_value) in spread {
        metrics.insert(key.clone(), MetricStats::from_json(stats_value, key)?);
    }
    Ok(PerfRecord {
        bench: bench.to_string(),
        commit: commit.to_string(),
        flags: flags_signature(bench, &value)?,
        cores: int("cores")?,
        rounds: int("rounds")?,
        warmups: int("warmups")?,
        metrics,
    })
}

/// Gate every fresh record's gated keys against the history. Returns all
/// verdicts in table order.
fn gate(history: &History, fresh: &[(&str, PerfRecord)], config: &GateConfig) -> Vec<KeyVerdict> {
    let mut verdicts = Vec::new();
    for (file, record) in fresh {
        let keys = GATED
            .iter()
            .find(|(f, _, _)| f == file)
            .map(|(_, _, keys)| *keys)
            .unwrap_or(&[]);
        for key in keys {
            verdicts.push(evaluate_key(
                history,
                record,
                key,
                Direction::HigherIsBetter,
                config,
            ));
        }
    }
    verdicts
}

/// Render one verdict as the `--explain` block: what the gate saw and why it
/// decided what it decided.
fn explain(verdict: &KeyVerdict) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} :: {} [{}]\n",
        verdict.bench,
        verdict.key,
        verdict.rule()
    ));
    for (commit, median) in &verdict.history {
        out.push_str(&format!("    history {commit:>10}  {median:14.1}\n"));
    }
    if verdict.skipped_mismatched > 0 {
        out.push_str(&format!(
            "    ({} history record(s) skipped: different flags/cores)\n",
            verdict.skipped_mismatched
        ));
    }
    if let (Some(center), Some(noise)) = (verdict.window_median, verdict.noise) {
        out.push_str(&format!(
            "    window median {center:14.1}   noise {noise:10.1}\n"
        ));
    }
    if let Some(fresh) = verdict.fresh_median {
        out.push_str(&format!("    fresh  median {fresh:14.1}\n"));
    }
    match &verdict.outcome {
        Outcome::Changepoint { limit } => out.push_str(&format!(
            "    CHANGEPOINT: fresh median crossed the limit {limit:.1}\n"
        )),
        Outcome::Drift { total_frac, steps } => out.push_str(&format!(
            "    DRIFT: {steps} consecutive worsening steps, {:.1}% total\n",
            total_frac * 100.0
        )),
        Outcome::NoHistory => {
            out.push_str("    no comparable history yet — pass (seeding)\n");
        }
        Outcome::ShortHistory { have } => out.push_str(&format!(
            "    only {have} comparable record(s) — pass until min-history reached\n"
        )),
        Outcome::MissingMetric => {
            out.push_str("    MISSING: gated key absent from the fresh spread\n");
        }
        Outcome::Pass => {}
    }
    out
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a repo.
fn head_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() -> ExitCode {
    let mut history_path = "perf/history.jsonl".to_string();
    let mut bench_dir = ".".to_string();
    let mut append = false;
    let mut commit: Option<String> = None;
    let mut explain_verdicts = false;
    let mut config = GateConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires an argument"))
        };
        match arg.as_str() {
            "--history" => history_path = value("--history"),
            "--bench-dir" => bench_dir = value("--bench-dir"),
            "--append" => append = true,
            "--commit" => commit = Some(value("--commit")),
            "--explain" => explain_verdicts = true,
            "--k" => config.k = value("--k").parse().expect("--k requires a number"),
            "--window" => {
                config.window = value("--window")
                    .parse()
                    .expect("--window requires a count")
            }
            "--min-history" => {
                config.min_history = value("--min-history")
                    .parse()
                    .expect("--min-history requires a count")
            }
            other => panic!("unknown option {other}"),
        }
    }
    let commit = commit.unwrap_or_else(head_commit);

    let history = match History::load(std::path::Path::new(&history_path)) {
        Ok(history) => history,
        Err(error) => {
            eprintln!("perf_gate error: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "perf_gate: history '{history_path}' ({} record(s)), bench dir '{bench_dir}', commit {commit}",
        history.records.len()
    );

    let mut fresh: Vec<(&str, PerfRecord)> = Vec::new();
    for (file, bench, _) in GATED {
        let path = format!("{bench_dir}/{file}");
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("perf_gate error: cannot read {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        match record_from_bench(&text, file, bench, &commit) {
            Ok(record) => fresh.push((file, record)),
            Err(error) => {
                eprintln!("perf_gate error: {error}");
                return ExitCode::FAILURE;
            }
        }
    }

    let verdicts = gate(&history, &fresh, &config);
    let mut failures = 0usize;
    for verdict in &verdicts {
        if explain_verdicts {
            println!("{}", explain(verdict));
        } else {
            println!(
                "  {} {} :: {} [{}] (fresh {})",
                if verdict.is_failure() { "FAIL" } else { "ok  " },
                verdict.bench,
                verdict.key,
                verdict.rule(),
                verdict
                    .fresh_median
                    .map(|m| format!("{m:.1}"))
                    .unwrap_or_else(|| "absent".to_string()),
            );
        }
        if verdict.is_failure() {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "perf_gate: {failures} verdict(s) failed — fresh medians shifted against \
             the trailing history window{}",
            if append {
                " (records NOT appended)"
            } else {
                ""
            }
        );
        return ExitCode::FAILURE;
    }
    if append {
        let records: Vec<PerfRecord> = fresh.iter().map(|(_, r)| r.clone()).collect();
        if let Err(error) = History::append(std::path::Path::new(&history_path), &records) {
            eprintln!("perf_gate error: {error}");
            return ExitCode::FAILURE;
        }
        println!(
            "perf_gate: appended {} record(s) for commit {commit} to {history_path}",
            records.len()
        );
    }
    println!("perf_gate: all gated keys within the history band");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal fleet record with a spread section, as `fleet_scale --json
    /// --rounds 3` writes it.
    fn fleet_bench_json(rate: f64) -> String {
        let stats = MetricStats::from_samples(&[rate * 0.99, rate, rate * 1.01]);
        format!(
            "{{\n  \"bench\": \"fleet_scale\",\n  \"nodes\": 64,\n  \"workers\": 2,\n  \"cores\": 1,\n  \"epochs\": 2,\n  \"rounds\": 3,\n  \"warmups\": 1,\n  \"spread\": {{\n    \"pages_per_second_sequential\": {},\n    \"pages_per_second_parallel\": {}\n  }}\n}}\n",
            stats.to_json(),
            stats.to_json()
        )
    }

    #[test]
    fn bench_record_conversion_builds_the_flags_signature() {
        let record = record_from_bench(
            &fleet_bench_json(1000.0),
            "BENCH_fleet.json",
            "fleet_scale",
            "abc",
        )
        .unwrap();
        assert_eq!(record.flags, "epochs=2,nodes=64,workers=2");
        assert_eq!(record.cores, 1);
        assert_eq!(record.rounds, 3);
        assert_eq!(record.warmups, 1);
        assert_eq!(record.commit, "abc");
        assert_eq!(record.metrics["pages_per_second_sequential"].median, 1000.0);
    }

    #[test]
    fn old_format_records_are_rejected_with_guidance() {
        let no_spread = "{\"bench\": \"fleet_scale\", \"nodes\": 64, \"workers\": 2, \"cores\": 1, \"epochs\": 2, \"rounds\": 3, \"warmups\": 1}";
        let err =
            record_from_bench(no_spread, "BENCH_fleet.json", "fleet_scale", "abc").unwrap_err();
        assert!(err.contains("--rounds"), "{err}");
        // A chaos record left behind in the same file is named, not misread.
        let chaos = "{\"bench\": \"fleet_scale_chaos\", \"cores\": 1}";
        let err = record_from_bench(chaos, "BENCH_fleet.json", "fleet_scale", "abc").unwrap_err();
        assert!(err.contains("fleet_scale_chaos"), "{err}");
    }

    #[test]
    fn gate_catches_a_step_against_real_bench_files() {
        // Build a history of 5 flat records, then gate a 15%-down fresh file.
        let mut records = Vec::new();
        for k in 0..5 {
            let mut record = record_from_bench(
                &fleet_bench_json(1000.0 + k as f64),
                "BENCH_fleet.json",
                "fleet_scale",
                &format!("c{k}"),
            )
            .unwrap();
            record.commit = format!("c{k}");
            records.push(record);
        }
        let history = History { records };
        let fresh = record_from_bench(
            &fleet_bench_json(850.0),
            "BENCH_fleet.json",
            "fleet_scale",
            "fresh",
        )
        .unwrap();
        let verdicts = gate(
            &history,
            &[("BENCH_fleet.json", fresh)],
            &GateConfig::default(),
        );
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts.iter().all(|v| v.is_failure()), "{verdicts:?}");
        // The explain table names the rule and the window.
        let text = explain(&verdicts[0]);
        assert!(text.contains("CHANGEPOINT"), "{text}");
        assert!(text.contains("history"), "{text}");

        // An unchanged fresh file passes the same window.
        let fresh = record_from_bench(
            &fleet_bench_json(1002.0),
            "BENCH_fleet.json",
            "fleet_scale",
            "fresh",
        )
        .unwrap();
        let verdicts = gate(
            &history,
            &[("BENCH_fleet.json", fresh)],
            &GateConfig::default(),
        );
        assert!(verdicts.iter().all(|v| !v.is_failure()), "{verdicts:?}");
    }
}
