//! Binary encoding and decoding of instructions.
//!
//! Programs are shipped to the runtime as flat `Vec<u32>` images ("stripped binaries").
//! The managed execution environment decodes basic blocks out of the image on first
//! execution, exactly like the code-cache substrate described in Section 2.1 of the
//! paper. The encoding is word-oriented: every instruction occupies between one and
//! five 32-bit words, so instructions have genuine, variable-length addresses.

use crate::{Addr, Cond, Inst, IsaError, MemRef, Operand, Port, Reg, Word};
use serde::{Deserialize, Serialize};

/// Opcode numbers. Kept private; the public contract is `encode`/`decode` round-tripping.
mod op {
    pub const MOV: u32 = 0x01;
    pub const LEA: u32 = 0x02;
    pub const ADD: u32 = 0x03;
    pub const SUB: u32 = 0x04;
    pub const MUL: u32 = 0x05;
    pub const AND: u32 = 0x06;
    pub const OR: u32 = 0x07;
    pub const XOR: u32 = 0x08;
    pub const SHL: u32 = 0x09;
    pub const SHR: u32 = 0x0a;
    pub const CMP: u32 = 0x0b;
    pub const TEST: u32 = 0x0c;
    pub const JMP: u32 = 0x0d;
    pub const JMP_IND: u32 = 0x0e;
    pub const JCC: u32 = 0x0f;
    pub const CALL: u32 = 0x10;
    pub const CALL_IND: u32 = 0x11;
    pub const RET: u32 = 0x12;
    pub const PUSH: u32 = 0x13;
    pub const POP: u32 = 0x14;
    pub const ALLOC: u32 = 0x15;
    pub const FREE: u32 = 0x16;
    pub const COPY: u32 = 0x17;
    pub const IN: u32 = 0x18;
    pub const OUT: u32 = 0x19;
    pub const HALT: u32 = 0x1a;
    pub const NOP: u32 = 0x1b;
}

/// Operand kind tags within an operand descriptor word.
const OPK_REG: u32 = 1;
const OPK_IMM: u32 = 2;
const OPK_MEM: u32 = 3;

/// An instruction paired with the address it was decoded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstWithAddr {
    /// The address of the first word of the instruction.
    pub addr: Addr,
    /// The decoded instruction.
    pub inst: Inst,
    /// The number of words the encoded instruction occupies.
    pub len: u32,
}

impl InstWithAddr {
    /// Address of the next instruction in straight-line order.
    pub fn next_addr(&self) -> Addr {
        self.addr + self.len
    }
}

fn encode_operand(out: &mut Vec<Word>, operand: Operand) {
    match operand {
        Operand::Reg(r) => out.push(OPK_REG | ((r.index() as u32) << 8)),
        Operand::Imm(v) => {
            out.push(OPK_IMM);
            out.push(v);
        }
        Operand::Mem(m) => {
            let mut desc = OPK_MEM;
            if let Some(b) = m.base {
                desc |= 1 << 8;
                desc |= (b.index() as u32) << 9;
            }
            if let Some(i) = m.index {
                desc |= 1 << 12;
                desc |= (i.index() as u32) << 13;
            }
            desc |= (m.scale as u32) << 16;
            out.push(desc);
            out.push(m.disp as u32);
        }
    }
}

fn decode_operand(words: &[Word], pos: &mut usize) -> Result<Operand, IsaError> {
    let desc = *words.get(*pos).ok_or(IsaError::TruncatedInstruction)?;
    *pos += 1;
    match desc & 0xff {
        OPK_REG => {
            let idx = ((desc >> 8) & 0x7) as usize;
            let reg = Reg::from_index(idx).ok_or(IsaError::InvalidEncoding(desc))?;
            Ok(Operand::Reg(reg))
        }
        OPK_IMM => {
            let v = *words.get(*pos).ok_or(IsaError::TruncatedInstruction)?;
            *pos += 1;
            Ok(Operand::Imm(v))
        }
        OPK_MEM => {
            let disp = *words.get(*pos).ok_or(IsaError::TruncatedInstruction)? as i32;
            *pos += 1;
            let base = if desc & (1 << 8) != 0 {
                Some(
                    Reg::from_index(((desc >> 9) & 0x7) as usize)
                        .ok_or(IsaError::InvalidEncoding(desc))?,
                )
            } else {
                None
            };
            let index = if desc & (1 << 12) != 0 {
                Some(
                    Reg::from_index(((desc >> 13) & 0x7) as usize)
                        .ok_or(IsaError::InvalidEncoding(desc))?,
                )
            } else {
                None
            };
            let scale = ((desc >> 16) & 0xff) as u8;
            Ok(Operand::Mem(MemRef {
                base,
                index,
                scale,
                disp,
            }))
        }
        _ => Err(IsaError::InvalidEncoding(desc)),
    }
}

/// Encode a single instruction into words.
pub fn encode(inst: Inst) -> Vec<Word> {
    let mut out = Vec::with_capacity(5);
    match inst {
        Inst::Mov { dst, src } => {
            out.push(op::MOV);
            encode_operand(&mut out, dst);
            encode_operand(&mut out, src);
        }
        Inst::Lea { dst, mem } => {
            out.push(op::LEA | ((dst.index() as u32) << 8));
            encode_operand(&mut out, Operand::Mem(mem));
        }
        Inst::Add { dst, src } => {
            out.push(op::ADD);
            encode_operand(&mut out, dst);
            encode_operand(&mut out, src);
        }
        Inst::Sub { dst, src } => {
            out.push(op::SUB);
            encode_operand(&mut out, dst);
            encode_operand(&mut out, src);
        }
        Inst::Mul { dst, src } => {
            out.push(op::MUL | ((dst.index() as u32) << 8));
            encode_operand(&mut out, src);
        }
        Inst::And { dst, src } => {
            out.push(op::AND);
            encode_operand(&mut out, dst);
            encode_operand(&mut out, src);
        }
        Inst::Or { dst, src } => {
            out.push(op::OR);
            encode_operand(&mut out, dst);
            encode_operand(&mut out, src);
        }
        Inst::Xor { dst, src } => {
            out.push(op::XOR);
            encode_operand(&mut out, dst);
            encode_operand(&mut out, src);
        }
        Inst::Shl { dst, src } => {
            out.push(op::SHL);
            encode_operand(&mut out, dst);
            encode_operand(&mut out, src);
        }
        Inst::Shr { dst, src } => {
            out.push(op::SHR);
            encode_operand(&mut out, dst);
            encode_operand(&mut out, src);
        }
        Inst::Cmp { a, b } => {
            out.push(op::CMP);
            encode_operand(&mut out, a);
            encode_operand(&mut out, b);
        }
        Inst::Test { a, b } => {
            out.push(op::TEST);
            encode_operand(&mut out, a);
            encode_operand(&mut out, b);
        }
        Inst::Jmp { target } => {
            out.push(op::JMP);
            out.push(target);
        }
        Inst::JmpIndirect { target } => {
            out.push(op::JMP_IND);
            encode_operand(&mut out, target);
        }
        Inst::Jcc { cond, target } => {
            out.push(op::JCC | ((cond.index() as u32) << 8));
            out.push(target);
        }
        Inst::Call { target } => {
            out.push(op::CALL);
            out.push(target);
        }
        Inst::CallIndirect { target } => {
            out.push(op::CALL_IND);
            encode_operand(&mut out, target);
        }
        Inst::Ret => out.push(op::RET),
        Inst::Push { src } => {
            out.push(op::PUSH);
            encode_operand(&mut out, src);
        }
        Inst::Pop { dst } => {
            out.push(op::POP);
            encode_operand(&mut out, dst);
        }
        Inst::Alloc { size, dst } => {
            out.push(op::ALLOC | ((dst.index() as u32) << 8));
            encode_operand(&mut out, size);
        }
        Inst::Free { ptr } => {
            out.push(op::FREE);
            encode_operand(&mut out, ptr);
        }
        Inst::Copy { dst, src, len } => {
            out.push(op::COPY);
            encode_operand(&mut out, dst);
            encode_operand(&mut out, src);
            encode_operand(&mut out, len);
        }
        Inst::In { dst, port } => {
            out.push(op::IN | ((dst.index() as u32) << 8) | ((port.index() as u32) << 16));
        }
        Inst::Out { src, port } => {
            out.push(op::OUT | ((port.index() as u32) << 16));
            encode_operand(&mut out, src);
        }
        Inst::Halt => out.push(op::HALT),
        Inst::Nop => out.push(op::NOP),
    }
    out
}

/// The number of words `inst` occupies when encoded.
pub fn encoded_len(inst: Inst) -> u32 {
    encode(inst).len() as u32
}

/// Decode one instruction starting at `words[offset]`.
///
/// Returns the instruction and the number of words consumed.
pub fn decode(words: &[Word], offset: usize) -> Result<(Inst, u32), IsaError> {
    let first = *words.get(offset).ok_or(IsaError::TruncatedInstruction)?;
    let opcode = first & 0xff;
    let mut pos = offset + 1;
    let reg_field =
        || Reg::from_index(((first >> 8) & 0x7) as usize).ok_or(IsaError::InvalidEncoding(first));
    let inst = match opcode {
        op::MOV => {
            let dst = decode_operand(words, &mut pos)?;
            let src = decode_operand(words, &mut pos)?;
            Inst::Mov { dst, src }
        }
        op::LEA => {
            let dst = reg_field()?;
            let mem = match decode_operand(words, &mut pos)? {
                Operand::Mem(m) => m,
                _ => return Err(IsaError::InvalidEncoding(first)),
            };
            Inst::Lea { dst, mem }
        }
        op::ADD => {
            let dst = decode_operand(words, &mut pos)?;
            let src = decode_operand(words, &mut pos)?;
            Inst::Add { dst, src }
        }
        op::SUB => {
            let dst = decode_operand(words, &mut pos)?;
            let src = decode_operand(words, &mut pos)?;
            Inst::Sub { dst, src }
        }
        op::MUL => {
            let dst = reg_field()?;
            let src = decode_operand(words, &mut pos)?;
            Inst::Mul { dst, src }
        }
        op::AND => {
            let dst = decode_operand(words, &mut pos)?;
            let src = decode_operand(words, &mut pos)?;
            Inst::And { dst, src }
        }
        op::OR => {
            let dst = decode_operand(words, &mut pos)?;
            let src = decode_operand(words, &mut pos)?;
            Inst::Or { dst, src }
        }
        op::XOR => {
            let dst = decode_operand(words, &mut pos)?;
            let src = decode_operand(words, &mut pos)?;
            Inst::Xor { dst, src }
        }
        op::SHL => {
            let dst = decode_operand(words, &mut pos)?;
            let src = decode_operand(words, &mut pos)?;
            Inst::Shl { dst, src }
        }
        op::SHR => {
            let dst = decode_operand(words, &mut pos)?;
            let src = decode_operand(words, &mut pos)?;
            Inst::Shr { dst, src }
        }
        op::CMP => {
            let a = decode_operand(words, &mut pos)?;
            let b = decode_operand(words, &mut pos)?;
            Inst::Cmp { a, b }
        }
        op::TEST => {
            let a = decode_operand(words, &mut pos)?;
            let b = decode_operand(words, &mut pos)?;
            Inst::Test { a, b }
        }
        op::JMP => {
            let target = *words.get(pos).ok_or(IsaError::TruncatedInstruction)?;
            pos += 1;
            Inst::Jmp { target }
        }
        op::JMP_IND => {
            let target = decode_operand(words, &mut pos)?;
            Inst::JmpIndirect { target }
        }
        op::JCC => {
            let cond = Cond::from_index(((first >> 8) & 0x7) as usize)
                .ok_or(IsaError::InvalidEncoding(first))?;
            let target = *words.get(pos).ok_or(IsaError::TruncatedInstruction)?;
            pos += 1;
            Inst::Jcc { cond, target }
        }
        op::CALL => {
            let target = *words.get(pos).ok_or(IsaError::TruncatedInstruction)?;
            pos += 1;
            Inst::Call { target }
        }
        op::CALL_IND => {
            let target = decode_operand(words, &mut pos)?;
            Inst::CallIndirect { target }
        }
        op::RET => Inst::Ret,
        op::PUSH => {
            let src = decode_operand(words, &mut pos)?;
            Inst::Push { src }
        }
        op::POP => {
            let dst = decode_operand(words, &mut pos)?;
            Inst::Pop { dst }
        }
        op::ALLOC => {
            let dst = reg_field()?;
            let size = decode_operand(words, &mut pos)?;
            Inst::Alloc { size, dst }
        }
        op::FREE => {
            let ptr = decode_operand(words, &mut pos)?;
            Inst::Free { ptr }
        }
        op::COPY => {
            let dst = decode_operand(words, &mut pos)?;
            let src = decode_operand(words, &mut pos)?;
            let len = decode_operand(words, &mut pos)?;
            Inst::Copy { dst, src, len }
        }
        op::IN => {
            let dst = reg_field()?;
            let port = Port::from_index(((first >> 16) & 0xff) as usize)
                .ok_or(IsaError::InvalidEncoding(first))?;
            Inst::In { dst, port }
        }
        op::OUT => {
            let port = Port::from_index(((first >> 16) & 0xff) as usize)
                .ok_or(IsaError::InvalidEncoding(first))?;
            let src = decode_operand(words, &mut pos)?;
            Inst::Out { src, port }
        }
        op::HALT => Inst::Halt,
        op::NOP => Inst::Nop,
        other => return Err(IsaError::UnknownOpcode(other)),
    };
    Ok((inst, (pos - offset) as u32))
}

/// Decode an entire code image, returning one [`InstWithAddr`] per instruction.
///
/// `base` is the address of `words[0]` in the guest address space.
pub fn decode_all(words: &[Word], base: Addr) -> Result<Vec<InstWithAddr>, IsaError> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < words.len() {
        let (inst, len) = decode(words, offset)?;
        out.push(InstWithAddr {
            addr: base + offset as u32,
            inst,
            len,
        });
        offset += len as usize;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Inst> {
        vec![
            Inst::Mov {
                dst: Operand::Reg(Reg::Eax),
                src: Operand::Imm(42),
            },
            Inst::Mov {
                dst: Operand::Mem(MemRef::base_disp(Reg::Ebp, 12)),
                src: Operand::Reg(Reg::Eax),
            },
            Inst::Lea {
                dst: Reg::Esi,
                mem: MemRef::indexed(Reg::Ebx, Reg::Ecx, 4, -8),
            },
            Inst::Add {
                dst: Operand::Reg(Reg::Esp),
                src: Operand::Imm(4),
            },
            Inst::Sub {
                dst: Operand::Reg(Reg::Esp),
                src: Operand::Imm(4),
            },
            Inst::Mul {
                dst: Reg::Edx,
                src: Operand::Imm(3),
            },
            Inst::Cmp {
                a: Operand::Reg(Reg::Ecx),
                b: Operand::Imm(0),
            },
            Inst::Test {
                a: Operand::Reg(Reg::Eax),
                b: Operand::Reg(Reg::Eax),
            },
            Inst::Jmp { target: 0x1234 },
            Inst::JmpIndirect {
                target: Operand::Reg(Reg::Eax),
            },
            Inst::Jcc {
                cond: Cond::Lt,
                target: 0x4321,
            },
            Inst::Call { target: 0x1050 },
            Inst::CallIndirect {
                target: Operand::Mem(MemRef::base_disp(Reg::Eax, 2)),
            },
            Inst::Ret,
            Inst::Push {
                src: Operand::Reg(Reg::Ebp),
            },
            Inst::Pop {
                dst: Operand::Reg(Reg::Ebp),
            },
            Inst::Alloc {
                size: Operand::Imm(16),
                dst: Reg::Eax,
            },
            Inst::Free {
                ptr: Operand::Reg(Reg::Eax),
            },
            Inst::Copy {
                dst: Operand::Reg(Reg::Edi),
                src: Operand::Reg(Reg::Esi),
                len: Operand::Reg(Reg::Ecx),
            },
            Inst::In {
                dst: Reg::Eax,
                port: Port::Input,
            },
            Inst::Out {
                src: Operand::Reg(Reg::Eax),
                port: Port::Render,
            },
            Inst::Halt,
            Inst::Nop,
        ]
    }

    #[test]
    fn round_trip_each_sample() {
        for inst in samples() {
            let words = encode(inst);
            let (decoded, len) = decode(&words, 0).expect("decode");
            assert_eq!(decoded, inst);
            assert_eq!(len as usize, words.len());
            assert_eq!(encoded_len(inst) as usize, words.len());
        }
    }

    #[test]
    fn decode_all_assigns_sequential_addresses() {
        let mut words = Vec::new();
        let mut expected_addrs = Vec::new();
        let base = 0x1000;
        for inst in samples() {
            expected_addrs.push(base + words.len() as u32);
            words.extend(encode(inst));
        }
        let decoded = decode_all(&words, base).expect("decode_all");
        assert_eq!(decoded.len(), samples().len());
        for (d, (inst, addr)) in decoded
            .iter()
            .zip(samples().into_iter().zip(expected_addrs))
        {
            assert_eq!(d.inst, inst);
            assert_eq!(d.addr, addr);
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let words = encode(Inst::Mov {
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Imm(7),
        });
        let truncated = &words[..words.len() - 1];
        assert!(decode(truncated, 0).is_err());
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        assert!(matches!(
            decode(&[0xff], 0),
            Err(IsaError::UnknownOpcode(0xff))
        ));
    }

    #[test]
    fn next_addr_accounts_for_length() {
        let inst = Inst::Copy {
            dst: Operand::Reg(Reg::Edi),
            src: Operand::Reg(Reg::Esi),
            len: Operand::Imm(8),
        };
        let words = encode(inst);
        let iwa = InstWithAddr {
            addr: 0x2000,
            inst,
            len: words.len() as u32,
        };
        assert_eq!(iwa.next_addr(), 0x2000 + words.len() as u32);
    }
}
