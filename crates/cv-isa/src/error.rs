//! Error types for encoding, decoding, and assembly.

use std::fmt;

/// Errors produced by the ISA layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// The word stream ended in the middle of an instruction.
    TruncatedInstruction,
    /// An opcode byte that does not correspond to any instruction.
    UnknownOpcode(u32),
    /// A descriptor word with invalid fields (register index, operand kind, ...).
    InvalidEncoding(u32),
    /// A label was referenced but never defined by the assembler.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// The program does not fit in the code segment.
    CodeTooLarge {
        /// Words required by the assembled program.
        required: usize,
        /// Words available in the code segment.
        available: usize,
    },
    /// The static data does not fit in the data segment.
    DataTooLarge {
        /// Words required by the static data.
        required: usize,
        /// Words available in the data segment.
        available: usize,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::TruncatedInstruction => write!(f, "instruction stream ended unexpectedly"),
            IsaError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:x}"),
            IsaError::InvalidEncoding(w) => write!(f, "invalid encoding word 0x{w:x}"),
            IsaError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            IsaError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            IsaError::CodeTooLarge {
                required,
                available,
            } => {
                write!(
                    f,
                    "code segment overflow: need {required} words, have {available}"
                )
            }
            IsaError::DataTooLarge {
                required,
                available,
            } => {
                write!(
                    f,
                    "data segment overflow: need {required} words, have {available}"
                )
            }
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(IsaError::UnknownOpcode(0xff).to_string().contains("0xff"));
        assert!(IsaError::UndefinedLabel("loop".into())
            .to_string()
            .contains("loop"));
        let e = IsaError::CodeTooLarge {
            required: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }
}
