//! The learning front end: consumes execution traces and infers invariants.
//!
//! This is the reproduction's Daikon: the front end receives per-instruction trace
//! records from the managed execution environment (the values of all operands read and
//! all addresses computed — Section 2.2.1), discovers procedures and their CFGs as
//! blocks execute (Section 2.2.3), and infers one-of, lower-bound, less-than, and
//! stack-pointer-offset invariants with the optimizations of Section 2.2.4
//! (equal-variable deduplication and pointer classification).
//!
//! Samples are buffered per run and only committed when the caller declares the run
//! normal ([`LearningFrontend::commit_run`]); erroneous runs are discarded
//! ([`LearningFrontend::discard_run`]), implementing the "discard any invariants from
//! executions with errors" rule of Section 3.1.
//!
//! # The hot path
//!
//! Learning mode pays a cost on **every traced instruction execution**, so this
//! implementation keeps the per-event data plane flat and allocation-free:
//!
//! * events are buffered in a columnar [`RunBuffer`] (no per-event clone),
//! * every [`Variable`] is interned to a dense `u32` id on first sight
//!   ([`crate::intern::VarTable`]), and all statistics live in `Vec`-indexed tables,
//! * each instruction address gets a precomputed *schedule* — its read slots and its
//!   prior-in-block variables resolved to ids once — so the pairwise pass is a flat
//!   slice walk instead of re-deriving operands from every earlier instruction on
//!   every event.
//!
//! The unoptimized original is retained as [`crate::ReferenceFrontend`]; the two are
//! proven to produce equal invariant databases by the proptest parity suite.

use crate::cfg::ProcedureDatabase;
use crate::database::{InvariantDatabase, LearningStats};
use crate::intern::{PairTable, ScheduleCache, SpOffsetTable, VarId, VarTable, MAX_READS, NO_VAR};
use crate::invariant::Invariant;
use crate::variable::Variable;
use cv_isa::{Addr, BinaryImage, Inst, Operand, Word};
use cv_runtime::{ExecEvent, RunBuffer, Tracer};
use std::collections::BTreeSet;

/// A complete learned model: the invariants plus the procedure CFGs they were inferred
/// over (the latter is needed for predominator queries during correlated-invariant
/// identification).
#[derive(Debug, Clone)]
pub struct LearnedModel {
    /// The inferred invariants.
    pub invariants: InvariantDatabase,
    /// The dynamically discovered procedures.
    pub procedures: ProcedureDatabase,
}

/// The Daikon-style learning front end. Implements [`Tracer`] so it can be handed
/// directly to [`cv_runtime::ManagedExecutionEnvironment::run_with_tracer`].
pub struct LearningFrontend {
    procedures: ProcedureDatabase,
    filter_procs: Option<BTreeSet<Addr>>,
    vars: VarTable,
    pairs: PairTable,
    sp_offsets: SpOffsetTable,
    schedules: ScheduleCache,
    /// Per-[`VarId`] `(run stamp, value)` of the most recent sample in the run being
    /// committed — the dense replacement for a per-run `HashMap<Variable, Word>`.
    /// An entry is valid only when its stamp equals the current run's stamp, so
    /// starting a new run never clears the vector.
    last_values: Vec<(u64, Word)>,
    run_stamp: u64,
    /// Reusable call-stack scratch for [`LearningFrontend::commit_run`] (kept here so
    /// committing a run performs no allocation either).
    call_stack: Vec<(Addr, Word)>,
    pending: RunBuffer,
    events_processed: u64,
    runs_committed: u64,
    runs_discarded: u64,
}

impl LearningFrontend {
    /// Create a front end for `image`.
    pub fn new(image: BinaryImage) -> Self {
        LearningFrontend {
            procedures: ProcedureDatabase::new(image),
            filter_procs: None,
            vars: VarTable::default(),
            pairs: PairTable::default(),
            sp_offsets: SpOffsetTable::default(),
            schedules: ScheduleCache::default(),
            last_values: Vec::new(),
            run_stamp: 0,
            call_stack: Vec::new(),
            pending: RunBuffer::new(),
            events_processed: 0,
            runs_committed: 0,
            runs_discarded: 0,
        }
    }

    /// Restrict tracing to the given procedure entries (amortized community learning:
    /// each member instruments only part of the application, Section 3.1). Instructions
    /// in procedures not yet discovered are still traced.
    pub fn restrict_to_procedures(&mut self, procs: impl IntoIterator<Item = Addr>) {
        self.filter_procs = Some(procs.into_iter().collect());
    }

    /// Remove any procedure restriction.
    pub fn trace_everything(&mut self) {
        self.filter_procs = None;
    }

    /// The discovered procedures.
    pub fn procedures(&self) -> &ProcedureDatabase {
        &self.procedures
    }

    /// Number of trace events committed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of buffered (not yet committed or discarded) events for the current run.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Commit the buffered run as a *normal* execution: its samples become part of the
    /// model.
    ///
    /// Per event this performs one `Addr → schedule` hash lookup; everything else —
    /// variable statistics, pairwise statistics over the precomputed prior-in-block
    /// schedule, and last-value tracking — is direct `Vec` indexing by [`VarId`].
    pub fn commit_run(&mut self) {
        // Move the buffer out so iterating it does not alias the tables being
        // updated; it is handed back (capacity intact) after the walk.
        let buf = std::mem::take(&mut self.pending);
        self.run_stamp += 1;
        let stamp = self.run_stamp;
        self.schedules.sync(self.procedures.discovery_version());
        let mut call_stack = std::mem::take(&mut self.call_stack);
        call_stack.clear();
        for event in buf.iter() {
            self.events_processed += 1;
            if call_stack.is_empty() {
                let proc = self
                    .procedures
                    .proc_of_inst(event.addr)
                    .unwrap_or(event.addr);
                call_stack.push((proc, event.sp));
            }
            if let Some(&(proc_entry, entry_sp)) = call_stack.last() {
                let offset = (entry_sp as i64 - event.sp as i64) as i32;
                self.sp_offsets.record(proc_entry, event.addr, offset);
            }

            let schedule = self.schedules.get_or_build(
                event.addr,
                event.inst,
                &self.procedures,
                &mut self.vars,
            );
            if self.last_values.len() < self.vars.len() {
                self.last_values.resize(self.vars.len(), (0, 0));
            }

            // Single-variable samples (schedule slots map read slots straight to ids;
            // NO_VAR marks immediates).
            let mut current: [(VarId, Word); MAX_READS] = [(NO_VAR, 0); MAX_READS];
            let mut n = 0;
            for r in event.reads {
                let id = schedule.slots[r.slot as usize];
                if id == NO_VAR {
                    continue;
                }
                self.vars.record(id, r.value);
                current[n] = (id, r.value);
                n += 1;
            }
            let current = &current[..n];

            // Pairwise samples over the precomputed prior-in-block schedule. Priors
            // precede the current instruction in the block (strictly lower address)
            // and slots pair in ascending order, so every pair is already in
            // canonical variable order.
            if schedule.in_block {
                for &pid in &schedule.priors {
                    let (seen, pv) = self.last_values[pid as usize];
                    if seen == stamp {
                        for &(cur, cv) in current {
                            self.pairs.record(pid, cur, pv, cv);
                        }
                    }
                }
                for i in 0..n {
                    for j in (i + 1)..n {
                        let (a, av) = current[i];
                        let (b, bv) = current[j];
                        self.pairs.record(a, b, av, bv);
                    }
                }
            }

            for &(id, value) in current {
                self.last_values[id as usize] = (stamp, value);
            }

            // Track the call stack for stack-pointer-offset invariants.
            match event.inst {
                Inst::Call { target } => call_stack.push((target, event.sp.wrapping_sub(1))),
                Inst::CallIndirect { .. } => {
                    let target = event.reads.first().map(|r| r.value).unwrap_or(0);
                    call_stack.push((target, event.sp.wrapping_sub(1)));
                }
                Inst::Ret => {
                    call_stack.pop();
                }
                _ => {}
            }
        }
        let mut buf = buf;
        buf.clear();
        self.pending = buf;
        self.call_stack = call_stack;
        self.runs_committed += 1;
    }

    /// Discard the buffered run (an erroneous execution must not contribute samples).
    /// A pure length reset: every buffer allocation is retained for the next run.
    pub fn discard_run(&mut self) {
        self.pending.clear();
        self.runs_discarded += 1;
    }

    /// True if the control-flow graph guarantees that `a` and `b` always hold the same
    /// value: both read the same register within one basic block, and no instruction in
    /// between (nor the earlier instruction itself) writes that register or calls out.
    ///
    /// The paper's deduplication (Section 2.2.4) is a CFG analysis, not an
    /// observation-based one: two variables that merely happened to be equal on the
    /// learning inputs must not be merged, or invariants that distinguish them (such as
    /// the pre- and post-truncation buffer sizes in exploit 325403) would be lost.
    fn statically_redundant(&self, a: &Variable, b: &Variable) -> bool {
        let (Some(Operand::Reg(ra)), Some(Operand::Reg(rb))) = (a.operand, b.operand) else {
            return false;
        };
        if ra != rb {
            return false;
        }
        let Some(cfg) = self.procedures.proc_containing(a.addr) else {
            return false;
        };
        let (Some(ba), Some(bb)) = (cfg.block_of_inst(a.addr), cfg.block_of_inst(b.addr)) else {
            return false;
        };
        if ba != bb {
            return false;
        }
        let block = &cfg.blocks[&ba];
        let (Some(pa), Some(pb)) = (block.position_of(a.addr), block.position_of(b.addr)) else {
            return false;
        };
        let (lo, hi) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        block.insts[lo..hi]
            .iter()
            .all(|i| !i.inst.is_call() && !i.inst.writes_register(ra))
    }

    /// Infer the invariant database from every committed sample.
    ///
    /// The dense tables are resolved back to full [`Variable`]s here — and only
    /// here — and visited through sorted index vectors, reproducing the canonical
    /// (sorted-by-variable) emission order of [`crate::ReferenceFrontend::infer`]
    /// exactly: downstream consumers (candidate selection, repair tie-breaking, the
    /// fleet's byte-identical manager-parity guarantee) all observe insertion order.
    pub fn infer(&self) -> InvariantDatabase {
        let _span = cv_obs::recorder()
            .span("learning.infer", "learning")
            .arg("variables", self.vars.len() as u64)
            .arg("pairs", self.pairs.len() as u64);
        // Equal-variable deduplication: when the CFG guarantees two variables always
        // hold the same value, keep only the one from the earlier instruction
        // (Section 2.2.4). Variables read by indirect control transfers are exempt from
        // removal: the invariants at call sites admit the call-specific repairs of
        // Section 2.5.1 (skip the call, return from the enclosing procedure), so they
        // must stay attached to the call.
        let mut duplicates: BTreeSet<Variable> = BTreeSet::new();
        for idx in 0..self.pairs.len() {
            let (aid, bid) = self.pairs.ids(idx);
            let (a, b) = (self.vars.var(aid), self.vars.var(bid));
            if self.pairs.count_at(idx) > 0
                && self.pairs.always_eq(idx)
                && self.statically_redundant(&a, &b)
            {
                let later = a.max(b);
                let later_is_indirect_transfer = self
                    .procedures
                    .inst_at(later.addr)
                    .map(|i| i.inst.is_indirect_transfer())
                    .unwrap_or(false);
                if !later_is_indirect_transfer {
                    duplicates.insert(later);
                }
            }
        }

        let mut db = InvariantDatabase::new();
        let mut pointers = 0u64;
        // Ids are assigned in first-sight order, so sort an index vector by the
        // variables they resolve to. Never-observed ids (interned only through a pair
        // schedule) carry no samples and are skipped, exactly as they are absent from
        // the reference implementation's maps.
        let mut var_order: Vec<VarId> = (0..self.vars.len() as VarId)
            .filter(|&id| self.vars.count(id) > 0)
            .collect();
        var_order.sort_unstable_by_key(|&id| self.vars.var(id));
        for &id in &var_order {
            let var = self.vars.var(id);
            if duplicates.contains(&var) {
                continue;
            }
            if self.vars.is_pointer(id) {
                pointers += 1;
            }
            if !self.vars.overflowed(id) && !self.vars.values(id).is_empty() {
                db.insert(Invariant::OneOf {
                    var,
                    values: self.vars.values(id).iter().copied().collect(),
                });
            }
            if !self.vars.is_pointer(id) {
                db.insert(Invariant::LowerBound {
                    var,
                    min: self.vars.min_signed(id),
                });
            }
        }
        let mut pair_order: Vec<u32> = (0..self.pairs.len() as u32).collect();
        pair_order.sort_unstable_by_key(|&idx| {
            let (aid, bid) = self.pairs.ids(idx as usize);
            (self.vars.var(aid), self.vars.var(bid))
        });
        for &idx in &pair_order {
            let idx = idx as usize;
            if self.pairs.count_at(idx) == 0 || self.pairs.always_eq(idx) {
                continue;
            }
            let (aid, bid) = self.pairs.ids(idx);
            let (a, b) = (self.vars.var(aid), self.vars.var(bid));
            if duplicates.contains(&a) || duplicates.contains(&b) {
                continue;
            }
            if self.vars.is_pointer(aid) || self.vars.is_pointer(bid) {
                continue;
            }
            if self.pairs.a_le_b(idx) {
                db.insert(Invariant::LessThan { a, b });
            } else if self.pairs.b_le_a(idx) {
                db.insert(Invariant::LessThan { a: b, b: a });
            }
        }
        for &idx in &self.sp_offsets.sorted_indices() {
            let idx = idx as usize;
            let offsets = self.sp_offsets.offsets_at(idx);
            if offsets.len() == 1 {
                let (proc_entry, at) = self.sp_offsets.key(idx);
                db.insert(Invariant::StackPointerOffset {
                    proc_entry,
                    at,
                    offset: offsets[0],
                });
            }
        }

        db.stats = LearningStats {
            events_processed: self.events_processed,
            runs_committed: self.runs_committed,
            runs_discarded: self.runs_discarded,
            variables_observed: self.vars.observed(),
            duplicates_removed: duplicates.len() as u64,
            pointers_classified: pointers,
            ..Default::default()
        };
        db.recount();
        db
    }

    /// Consume the front end, producing the learned model (invariants + procedures).
    pub fn into_model(self) -> LearnedModel {
        let invariants = self.infer();
        LearnedModel {
            invariants,
            procedures: self.procedures,
        }
    }
}

impl Tracer for LearningFrontend {
    fn on_block_first_execution(&mut self, block_start: Addr) {
        self.procedures.observe_block(block_start);
    }

    fn on_inst(&mut self, event: &ExecEvent) {
        // Columnar append: no per-event heap allocation once capacities are warm.
        self.pending.push(event);
    }

    fn wants_addr(&self, addr: Addr) -> bool {
        match &self.filter_procs {
            None => true,
            Some(filter) => match self.procedures.proc_of_inst(addr) {
                Some(proc) => filter.contains(&proc),
                None => true,
            },
        }
    }

    fn on_call(&mut self, _call_site: Addr, target: Addr) {
        self.procedures.observe_call_target(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::{MemRef, Port, ProgramBuilder, Reg};
    use cv_runtime::{EnvConfig, ManagedExecutionEnvironment};

    /// A program with a virtual call through a small function-pointer table and a
    /// length-guarded copy, exercised with benign inputs.
    ///
    /// main:
    ///   eax  <- input (selector, 0 or 1)
    ///   ecx  <- input (length, >= 1 in benign pages)
    ///   ebx  <- vtable[selector]         ; one-of invariant target
    ///   call *ebx
    ///   copy [buffer], [source], ecx     ; lower-bound invariant target (1 <= ecx)
    ///   halt
    fn build_program() -> (
        cv_isa::BinaryImage,
        std::collections::BTreeMap<String, Addr>,
    ) {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Eax, Port::Input);
        b.input(Reg::Ecx, Port::Input);
        let f0 = b.new_label("f0");
        let f1 = b.new_label("f1");
        // Virtual dispatch.
        let vtable = b.data_here();
        b.note_symbol("vtable", vtable);
        b.mov(
            Reg::Ebx,
            Operand::Mem(MemRef {
                base: None,
                index: Some(Reg::Eax),
                scale: 1,
                disp: vtable as i32,
            }),
        );
        let call_site = b.call_indirect(Reg::Ebx);
        b.note_symbol("call_site", call_site);
        // Guarded copy into a heap buffer.
        b.alloc(Reg::Edi, 16u32);
        b.alloc(Reg::Esi, 16u32);
        let copy_site = b.copy(Reg::Edi, Reg::Esi, Reg::Ecx);
        b.note_symbol("copy_site", copy_site);
        b.output(Reg::Eax, Port::Render);
        b.halt();
        b.bind(f0);
        b.output(100u32, Port::Render);
        b.ret();
        b.bind(f1);
        b.output(200u32, Port::Render);
        b.ret();
        b.set_entry(main);
        // Fill the vtable after binding the functions.
        let f0_addr = b.label_addr(f0).unwrap();
        let f1_addr = b.label_addr(f1).unwrap();
        b.note_symbol("f0", f0_addr);
        b.note_symbol("f1", f1_addr);
        b.data_code_ref(f0);
        b.data_code_ref(f1);
        b.build_with_symbols().unwrap()
    }

    fn learn(pages: &[Vec<u32>]) -> (LearningFrontend, std::collections::BTreeMap<String, Addr>) {
        let (image, syms) = build_program();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image);
        for page in pages {
            let r = env.run_with_tracer(page, &mut fe);
            assert!(
                r.is_completed(),
                "learning page must complete: {:?}",
                r.status
            );
            fe.commit_run();
        }
        (fe, syms)
    }

    #[test]
    fn vtable_fixup_points_at_functions() {
        let (image, syms) = build_program();
        let vt = (syms["vtable"] - image.layout.data_base) as usize;
        assert_eq!(image.data[vt], syms["f0"]);
        assert_eq!(image.data[vt + 1], syms["f1"]);
    }

    #[test]
    fn one_of_invariant_learned_at_indirect_call() {
        let (fe, syms) = learn(&[vec![0, 3], vec![1, 5], vec![0, 2]]);
        let db = fe.infer();
        let invs = db.invariants_at(syms["call_site"]);
        let one_of = invs
            .iter()
            .find(|i| matches!(i, Invariant::OneOf { .. }))
            .expect("one-of at the virtual call site");
        match one_of {
            Invariant::OneOf { values, .. } => {
                assert!(values.contains(&syms["f0"]));
                assert!(values.contains(&syms["f1"]));
                assert_eq!(values.len(), 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn lower_bound_learned_on_copy_length() {
        let (fe, syms) = learn(&[vec![0, 3], vec![1, 5], vec![0, 2]]);
        let db = fe.infer();
        let invs = db.invariants_at(syms["copy_site"]);
        let lb = invs
            .iter()
            .filter_map(|i| match i {
                Invariant::LowerBound { var, min }
                    if var.operand == Some(Operand::Reg(Reg::Ecx)) =>
                {
                    Some(*min)
                }
                _ => None,
            })
            .next()
            .expect("lower bound on the copy length");
        assert_eq!(lb, 2, "smallest benign length observed");
    }

    #[test]
    fn function_pointers_are_classified_as_pointers() {
        let (fe, syms) = learn(&[vec![0, 3], vec![1, 5]]);
        let db = fe.infer();
        // No lower-bound invariant on the call-target variable: it is a pointer.
        let invs = db.invariants_at(syms["call_site"]);
        assert!(invs
            .iter()
            .all(|i| !matches!(i, Invariant::LowerBound { .. })));
        assert!(db.stats.pointers_classified > 0);
    }

    #[test]
    fn sp_offset_invariants_cover_procedure_bodies() {
        let (fe, syms) = learn(&[vec![0, 3]]);
        let db = fe.infer();
        // At the indirect call site, the stack pointer equals its value at main's entry.
        assert_eq!(db.sp_offset(syms["main"], syms["call_site"]), Some(0));
    }

    #[test]
    fn discarded_runs_do_not_contribute() {
        let (image, syms) = build_program();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image);
        // A run with a smaller length would weaken the lower bound; discard it as if it
        // had been flagged erroneous.
        let r = env.run_with_tracer(&[0, 1], &mut fe);
        assert!(r.is_completed());
        fe.discard_run();
        let r = env.run_with_tracer(&[0, 4], &mut fe);
        assert!(r.is_completed());
        fe.commit_run();
        let db = fe.infer();
        let invs = db.invariants_at(syms["copy_site"]);
        let lb = invs.iter().find_map(|i| match i {
            Invariant::LowerBound { var, min } if var.operand == Some(Operand::Reg(Reg::Ecx)) => {
                Some(*min)
            }
            _ => None,
        });
        assert_eq!(lb, Some(4));
        assert_eq!(db.stats.runs_discarded, 1);
        assert_eq!(db.stats.runs_committed, 1);
    }

    #[test]
    fn procedure_restriction_limits_tracing() {
        let (image, syms) = build_program();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image.clone());
        // First run discovers procedures (trace everything).
        env.run_with_tracer(&[0, 3], &mut fe);
        fe.commit_run();
        let full_events = fe.events_processed();
        // Now restrict to the helper f0 only and run again.
        fe.restrict_to_procedures([syms["f0"]]);
        env.run_with_tracer(&[0, 3], &mut fe);
        fe.commit_run();
        let delta = fe.events_processed() - full_events;
        assert!(
            delta < full_events,
            "restricted run traces fewer instructions ({delta} vs {full_events})"
        );
        assert!(delta >= 2, "the selected procedure is still traced");
    }

    #[test]
    fn model_includes_procedures_and_invariants() {
        let (fe, syms) = learn(&[vec![0, 3]]);
        let model = fe.into_model();
        assert!(model.procedures.proc(syms["main"]).is_some());
        assert!(model.procedures.proc(syms["f0"]).is_some());
        assert!(model.invariants.len() > 3);
        assert!(model.invariants.stats.total_invariants() as usize == model.invariants.len());
    }

    #[test]
    fn dedup_removes_statically_equal_variables() {
        // ecx is read at the cmp and again at the add with no intervening write: the
        // CFG guarantees both reads see the same value, so the later variable is
        // removed from the model.
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Ecx, Port::Input);
        b.cmp(Reg::Ecx, 5u32);
        b.add(Reg::Eax, Reg::Ecx);
        b.output(Reg::Eax, Port::Render);
        b.halt();
        b.set_entry(main);
        let image = b.build().unwrap();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image);
        for v in [5u32, 9, 12] {
            env.run_with_tracer(&[v], &mut fe);
            fe.commit_run();
        }
        let db = fe.infer();
        assert!(
            db.stats.duplicates_removed >= 1,
            "equal variables deduplicated"
        );
    }

    #[test]
    fn dedup_is_not_fooled_by_coincidental_equality() {
        // ebx = ecx & 0xFFFF: equal to ecx for all observed (small) inputs, but the CFG
        // does not guarantee it, so both variables keep their invariants.
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Ecx, Port::Input);
        b.mov(Reg::Ebx, Reg::Ecx);
        b.and(Reg::Ebx, 0xFFFFu32);
        let use_site = b.add(Reg::Eax, Reg::Ebx);
        b.output(Reg::Eax, Port::Render);
        b.halt();
        b.set_entry(main);
        let image = b.build().unwrap();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image);
        for v in [5u32, 9, 12, 44, 100, 3] {
            env.run_with_tracer(&[v], &mut fe);
            fe.commit_run();
        }
        let db = fe.infer();
        // The truncated value read at the add keeps its own lower-bound invariant.
        assert!(db
            .invariants_at(use_site)
            .iter()
            .any(|i| matches!(i, Invariant::LowerBound { .. })));
    }
}
