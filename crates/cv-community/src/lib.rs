//! # cv-community — the application community
//!
//! ClearView is deployed across an *application community*: a set of machines running
//! the same application that cooperate to learn invariants, detect attacks, and share
//! patches, so that members that have never been exposed to an attack become immune once
//! a few members have been attacked (Section 3 of the paper).
//!
//! * [`Community`] — the member nodes, the central ClearView manager (merged invariant
//!   database, per-failure responders), and patch distribution.
//! * [`Message`] — the protocol messages recorded in the console log (failure
//!   notifications, invariant uploads, check/repair distribution).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod community;
mod messages;

pub use community::{Community, CommunityOutcome};
pub use messages::{Message, NodeId};
