//! Invariant-checking patches (Section 2.4.2).
//!
//! When a failure is reported, ClearView deploys patches that *check* each candidate
//! correlated invariant and emit an observation (satisfied / violated) every time the
//! check executes. Single-variable invariants are checked at the variable's instruction;
//! two-variable invariants are checked at the later of the two instructions, with an
//! auxiliary patch at the earlier instruction storing the first variable's value for
//! retrieval by the check.

use cv_inference::{Invariant, Variable};
use cv_isa::{Addr, Word};
use cv_runtime::{Hook, HookAction, HookContext, ObservationKind};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Read the current value of a variable from the machine, if it has a readable operand.
pub(crate) fn read_variable(ctx: &HookContext<'_>, var: &Variable) -> Option<Word> {
    let op = var.operand?;
    ctx.machine.read_operand(&op).ok()
}

/// The auxiliary patch of Section 2.4.2: at the earlier instruction of a two-variable
/// invariant, store the variable's value for later retrieval by the check patch.
pub struct AuxStoreHook {
    var: Variable,
    cell: Arc<Mutex<Option<Word>>>,
}

impl AuxStoreHook {
    /// Create an auxiliary store for `var`, writing into `cell`.
    pub(crate) fn new(var: Variable, cell: Arc<Mutex<Option<Word>>>) -> Self {
        AuxStoreHook { var, cell }
    }
}

impl Hook for AuxStoreHook {
    fn on_execute(&mut self, ctx: &mut HookContext<'_>) -> HookAction {
        *self.cell.lock() = read_variable(ctx, &self.var);
        HookAction::Continue
    }

    fn describe(&self) -> String {
        format!("aux-store {}", self.var)
    }
}

/// The invariant-check patch: evaluates the invariant and emits an observation.
pub struct CheckHook {
    invariant: Invariant,
    /// For two-variable invariants: the stored value of the variable read at the
    /// earlier instruction.
    earlier: Option<(Variable, Arc<Mutex<Option<Word>>>)>,
}

impl CheckHook {
    fn value_of(&self, ctx: &HookContext<'_>, var: &Variable) -> Option<Word> {
        if let Some((earlier_var, cell)) = &self.earlier {
            if earlier_var == var {
                return *cell.lock();
            }
        }
        read_variable(ctx, var)
    }
}

impl Hook for CheckHook {
    fn on_execute(&mut self, ctx: &mut HookContext<'_>) -> HookAction {
        // Split borrows: evaluate first, then observe.
        let holds = {
            let lookup = |var: &Variable| self.value_of(ctx, var);
            self.invariant.holds(&lookup)
        };
        ctx.observe(if holds {
            ObservationKind::Satisfied
        } else {
            ObservationKind::Violated
        });
        HookAction::Continue
    }

    fn describe(&self) -> String {
        format!("check {}", self.invariant)
    }
}

/// An invariant-check patch, ready to be compiled into hooks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckPatch {
    /// The invariant being checked.
    pub invariant: Invariant,
}

impl CheckPatch {
    /// Create a check patch for `invariant`.
    pub fn new(invariant: Invariant) -> Self {
        CheckPatch { invariant }
    }

    /// The address at which the check observes the invariant.
    pub fn check_addr(&self) -> Addr {
        self.invariant.check_addr()
    }

    /// Compile the patch into hooks: `(address, hook)` pairs to apply to the managed
    /// environment. Two-variable invariants compile to an auxiliary store at the earlier
    /// instruction plus the check at the later one.
    pub fn build_hooks(&self) -> Vec<(Addr, Box<dyn Hook>)> {
        self.build_hooks_cells().0
    }

    /// Like [`CheckPatch::build_hooks`], additionally returning the auxiliary-store
    /// cell shared by the hook pair of a two-variable invariant (`None` otherwise).
    /// The cell is the only mutable state a check carries across runs; exposing it
    /// lets a scheduler persist it per member while rebuilding hooks on demand.
    #[allow(clippy::type_complexity)]
    pub fn build_hooks_cells(
        &self,
    ) -> (Vec<(Addr, Box<dyn Hook>)>, Option<Arc<Mutex<Option<Word>>>>) {
        let check_addr = self.check_addr();
        match &self.invariant {
            Invariant::LessThan { a, b } if a.addr != b.addr => {
                let (earlier, _later) = if a.addr < b.addr { (a, b) } else { (b, a) };
                let cell = Arc::new(Mutex::new(None));
                let hooks = vec![
                    (
                        earlier.addr,
                        Box::new(AuxStoreHook {
                            var: *earlier,
                            cell: Arc::clone(&cell),
                        }) as Box<dyn Hook>,
                    ),
                    (
                        check_addr,
                        Box::new(CheckHook {
                            invariant: self.invariant.clone(),
                            earlier: Some((*earlier, Arc::clone(&cell))),
                        }) as Box<dyn Hook>,
                    ),
                ];
                (hooks, Some(cell))
            }
            _ => (
                vec![(
                    check_addr,
                    Box::new(CheckHook {
                        invariant: self.invariant.clone(),
                        earlier: None,
                    }) as Box<dyn Hook>,
                )],
                None,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::{Operand, Port, ProgramBuilder, Reg};
    use cv_runtime::{EnvConfig, ManagedExecutionEnvironment, ObservationKind};

    /// in ecx; mov ebx, ecx; add ebx 1; copy-less program used to exercise checks.
    fn program() -> (cv_isa::BinaryImage, std::collections::BTreeMap<String, u32>) {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Ecx, Port::Input);
        let mov_site = b.mov(Reg::Ebx, Reg::Ecx);
        b.note_symbol("mov_site", mov_site);
        let add_site = b.add(Reg::Ebx, 5u32);
        b.note_symbol("add_site", add_site);
        let out_site = b.output(Reg::Ebx, Port::Render);
        b.note_symbol("out_site", out_site);
        b.halt();
        b.set_entry(main);
        b.build_with_symbols().unwrap()
    }

    #[test]
    fn single_variable_check_emits_observations() {
        let (image, syms) = program();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let inv = Invariant::LowerBound {
            var: Variable::read(syms["mov_site"], 0, Operand::Reg(Reg::Ecx)),
            min: 1,
        };
        let patch = CheckPatch::new(inv);
        assert_eq!(patch.check_addr(), syms["mov_site"]);
        for (addr, hook) in patch.build_hooks() {
            env.apply_hook(addr, hook);
        }
        let ok = env.run(&[5]);
        assert_eq!(ok.observations.len(), 1);
        assert_eq!(ok.observations[0].kind, ObservationKind::Satisfied);
        let bad = env.run(&[0]);
        assert_eq!(bad.observations.len(), 1);
        assert_eq!(bad.observations[0].kind, ObservationKind::Violated);
    }

    #[test]
    fn two_variable_check_uses_stored_earlier_value() {
        let (image, syms) = program();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        // Invariant: ecx (at the mov) <= ebx (at the out). Since ebx = ecx + 5 this
        // always holds — but only if the check retrieves ecx's value from the aux store
        // rather than re-reading it at the out instruction (where it is unchanged here,
        // so to make the test meaningful the attacker-style run clobbers ecx).
        let a = Variable::read(syms["mov_site"], 0, Operand::Reg(Reg::Ecx));
        let b = Variable::read(syms["out_site"], 0, Operand::Reg(Reg::Ebx));
        let patch = CheckPatch::new(Invariant::LessThan { a, b });
        let hooks = patch.build_hooks();
        assert_eq!(hooks.len(), 2, "aux store + check");
        for (addr, hook) in hooks {
            env.apply_hook(addr, hook);
        }
        let r = env.run(&[7]);
        assert!(r.is_completed());
        assert_eq!(r.observations.len(), 1);
        assert_eq!(r.observations[0].kind, ObservationKind::Satisfied);
        assert_eq!(r.observations[0].addr, syms["out_site"]);
    }

    #[test]
    fn check_of_unreadable_variable_reports_satisfied() {
        // A monitor-style check must never produce a false violation; if the value is
        // unavailable the check treats the invariant as satisfied.
        let (image, syms) = program();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let inv = Invariant::LowerBound {
            var: Variable::stack_pointer(syms["mov_site"]),
            min: 0,
        };
        for (addr, hook) in CheckPatch::new(inv).build_hooks() {
            env.apply_hook(addr, hook);
        }
        let r = env.run(&[1]);
        assert_eq!(r.observations[0].kind, ObservationKind::Satisfied);
    }
}
