//! Byte-identity of the incremental dirty-epoch delta cutter.
//!
//! `DeltaSnapshot::diff` is the executable specification: O(database), diffing two
//! materialized snapshots. `DeltaBuilder` + the store's `DirtyEpochs` tracker cut
//! the same delta in O(changed). These tests prove the two **byte-identical** —
//! same struct, same encoded container — over:
//!
//! * randomized epoch histories at the store level (proptest): merges that add,
//!   reshape, drop (one-of overflow), and no-op entries; procedure discoveries;
//!   plan churn; checkpoints cut mid-epoch (the open-epoch ambiguity the
//!   inclusive `dirty_since` rule exists for);
//! * a real fleet history: learning, multi-failure epochs, mid-epoch churn kills,
//!   delta and full rejoins, warm and cold joiners;
//! * the fallback seam: bases older than the tracker's floor (a coordinator
//!   restored from a snapshot) take the materialized diff and still converge.

use cv_apps::{learning_suite, red_team_exploits, Browser, MULTI_FAILURE_TARGETS};
use cv_core::{ClearViewConfig, Directive, NetPatchState, PatchPlan};
use cv_fleet::{
    DeltaSnapshot, Fleet, FleetConfig, MembershipOp, Presentation, ShardedInvariantStore, Snapshot,
};
use cv_inference::{Invariant, InvariantDatabase, Variable};
use cv_isa::{Addr, Operand, Reg};
use cv_store::DeltaBuilder;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Deterministic SplitMix64 driving the history generator (proptest supplies the
/// seed; the shim has no recursive strategy support, and explicit control over
/// the op mix matters more than shrinking here).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A small upload drawn from a bounded address pool, so repeated merges overlap:
/// some entries union new one-of values (change), some reproduce the stored entry
/// (no-op the dirty plane must not over-report as a changed *entry*... it may
/// over-stamp, but the cutter must filter), and some overflow ONE_OF_LIMIT and
/// drop entries entirely (removals).
fn random_upload(rng: &mut Rng) -> InvariantDatabase {
    let mut db = InvariantDatabase::new();
    let entries = 1 + rng.below(12);
    for _ in 0..entries {
        let addr = 0x4_0000u32 + (rng.below(24) as Addr) * 4;
        // Two registers only: repeated merges must collide on the same variable,
        // so one-of unions overflow ONE_OF_LIMIT and drop entries (removals).
        let var = Variable::read(addr, 0, Operand::Reg(Reg::ALL[rng.below(2) as usize]));
        match rng.below(3) {
            0 => {
                let values: BTreeSet<u32> =
                    (0..1 + rng.below(3)).map(|_| rng.below(9) as u32).collect();
                db.insert(Invariant::OneOf { var, values });
            }
            1 => db.insert(Invariant::LowerBound {
                var,
                min: rng.below(7) as i32 - 3,
            }),
            _ => db.insert(Invariant::StackPointerOffset {
                proc_entry: addr & !0x3F,
                at: addr,
                offset: rng.below(3) as i32,
            }),
        }
    }
    db.stats.events_processed = rng.below(100);
    db.stats.runs_committed = rng.below(5);
    db.recount();
    db
}

/// A simulated coordinator: the sharded store (with its dirty plane), the
/// discovered procedures, and the net patch configuration — everything a
/// checkpoint captures.
struct Coordinator {
    store: ShardedInvariantStore,
    procs: BTreeSet<Addr>,
    net: NetPatchState,
    epoch: u64,
}

impl Coordinator {
    fn new(shard_count: usize) -> Self {
        Coordinator {
            store: ShardedInvariantStore::new(shard_count),
            procs: BTreeSet::new(),
            net: NetPatchState::new(),
            epoch: 0,
        }
    }

    fn checkpoint(&self) -> Snapshot {
        Snapshot {
            epoch: self.epoch,
            shard_count: self.store.shard_count() as u32,
            invariants: self.store.snapshot(),
            procedures: self.procs.iter().copied().collect(),
            plan: self.net.to_plan(),
        }
    }

    fn mutate(&mut self, rng: &mut Rng) {
        match rng.below(6) {
            // Merges dominate: they are the O(changed) workload the plane tracks.
            0..=2 => {
                let uploads: Vec<InvariantDatabase> =
                    (0..1 + rng.below(3)).map(|_| random_upload(rng)).collect();
                self.store.merge_uploads(&uploads);
            }
            3 => {
                let entry = 0x4_0000u32 + (rng.below(16) as Addr) * 0x40;
                if self.procs.insert(entry) {
                    self.store.mark_proc(entry);
                }
            }
            _ => {
                let mut plan = PatchPlan::new();
                let location = 0x4_0000u32 + (rng.below(24) as Addr) * 4;
                let directive = match rng.below(3) {
                    0 => Directive::InstallChecks(Vec::new()),
                    1 => Directive::RemoveChecks,
                    _ => Directive::RemoveRepair,
                };
                plan.push(location, directive);
                self.net.apply(&plan);
                let router = cv_inference::ShardRouter::new(self.store.shard_count());
                self.store.mark_plan_shards(&plan.shards_touched(&router));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_deltas_are_byte_identical_over_random_histories(
        seed in any::<u64>(),
        shard_count in 1usize..8,
        epochs in 2u64..8,
    ) {
        let mut rng = Rng(seed);
        let mut coordinator = Coordinator::new(shard_count);
        let mut bases: Vec<Snapshot> = vec![coordinator.checkpoint()];

        for epoch in 1..=epochs {
            coordinator.epoch = epoch;
            coordinator.store.begin_epoch(epoch);
            for _ in 0..1 + rng.below(4) {
                coordinator.mutate(&mut rng);
                // Sometimes cut a checkpoint *mid-epoch*, before more mutations
                // stamp into the still-open epoch — the case the inclusive
                // `dirty_since(base)` rule exists for.
                if rng.below(4) == 0 {
                    bases.push(coordinator.checkpoint());
                }
            }
            if rng.below(2) == 0 {
                bases.push(coordinator.checkpoint());
            }
        }

        let target = coordinator.checkpoint();
        let fused = coordinator.store.snapshot();
        for base in &bases {
            let diffed = DeltaSnapshot::diff(base, &target);
            let dirty = coordinator
                .store
                .dirty_since(base.epoch)
                .expect("a live coordinator covers every base it ever cut");
            let incremental =
                DeltaBuilder::new(base, &dirty).cut(target.epoch, &fused, target.plan.clone());
            prop_assert_eq!(&incremental, &diffed);
            prop_assert_eq!(incremental.encode(), diffed.encode());

            let mut advanced = base.clone();
            advanced.apply_delta(&incremental).unwrap();
            prop_assert_eq!(advanced, target.clone());
        }
    }
}

/// The epochs-to-protection ceiling for the fleet history below.
const MAX_EPOCHS: usize = 12;

/// A real fleet history — learning, two simultaneous exploits, mid-epoch churn
/// kills, delta + full rejoins, a warm and a cold joiner — with checkpoints cut
/// along the way; every recorded base must yield byte-identical incremental and
/// diff-based deltas, and the incremental path must actually have been taken.
#[test]
fn fleet_history_cuts_identical_deltas_incrementally() {
    let browser = Browser::build();
    let exploits = red_team_exploits(&browser);
    let targets: Vec<_> = MULTI_FAILURE_TARGETS
        .iter()
        .take(2)
        .map(|(bug, sym)| {
            (
                exploits
                    .iter()
                    .find(|e| e.bugzilla == *bug)
                    .unwrap()
                    .clone(),
                browser.sym(sym),
            )
        })
        .collect();

    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(48),
    );
    fleet.distributed_learning(&learning_suite());

    let mut bases = vec![fleet.checkpoint()];
    let batch: Vec<Presentation> = targets
        .iter()
        .enumerate()
        .map(|(k, (exploit, _))| Presentation::new(k, exploit.page()))
        .collect();

    // First epoch kills members 30..36 mid-epoch (they miss the patch push).
    fleet.run_epoch_churn(&batch, &[30, 31, 32, 33, 34, 35]);
    bases.push(fleet.checkpoint());
    for _ in 0..MAX_EPOCHS {
        if targets
            .iter()
            .all(|(_, loc)| fleet.is_protected_against(*loc))
        {
            break;
        }
        fleet.run_epoch(&batch);
    }
    for (_, loc) in &targets {
        assert!(fleet.is_protected_against(*loc), "fleet failed to immunize");
    }
    bases.push(fleet.checkpoint());

    // Churn: delta rejoins against two different generations of checkpoint, a
    // full rejoin, and joiners — all of which cut deltas / snapshots internally.
    fleet.apply_membership(MembershipOp::Rejoin {
        node: 30,
        checkpoint: Some(&bases[0]),
    });
    fleet.apply_membership(MembershipOp::Rejoin {
        node: 31,
        checkpoint: Some(&bases[1]),
    });
    fleet.apply_membership(MembershipOp::Rejoin {
        node: 32,
        checkpoint: None,
    });
    fleet.apply_membership(MembershipOp::JoinWarm);
    let cold = fleet.apply_membership(MembershipOp::JoinCold).nodes[0];
    fleet.apply_membership(MembershipOp::Resync(cold));
    fleet.run_epoch(&batch);
    bases.push(fleet.checkpoint());

    // Every base, old or new: incremental == diff, byte for byte.
    let target = fleet.checkpoint();
    for base in &bases {
        let incremental = fleet.delta_since(base);
        let diffed = DeltaSnapshot::diff(base, &target);
        assert_eq!(incremental, diffed);
        assert_eq!(incremental.encode(), diffed.encode());
        let mut advanced = base.clone();
        advanced.apply_delta(&incremental).unwrap();
        assert_eq!(advanced, target);
    }

    let metrics = fleet.metrics();
    assert_eq!(
        metrics.delta_cuts, metrics.incremental_delta_cuts,
        "a live fleet covers all its own checkpoints: every cut must be incremental"
    );
    assert!(metrics.incremental_delta_cuts >= bases.len() as u64);
    assert!(metrics.dirty_shards_last <= fleet.shard_count() as u64);
}

/// Two checkpoints can share an epoch label (learning lands while the epoch is
/// open). A *live* coordinator handles that via the inclusive `dirty_since`
/// rule; a *restored* one has no mutation history for its label epoch at all,
/// so handing it the earlier same-label checkpoint must not produce an identity
/// delta — the member would silently miss the second learning round.
#[test]
fn restored_fleet_never_hands_identity_deltas_to_same_label_bases() {
    let browser = Browser::build();
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(16),
    );
    let pages = learning_suite();
    fleet.distributed_learning(&pages[..pages.len() / 2]);
    let first = fleet.checkpoint(); // epoch E, pre-second-learning
    fleet.distributed_learning(&pages[pages.len() / 2..]);
    let second = fleet.checkpoint(); // same epoch E, different state
    assert_eq!(first.epoch, second.epoch);
    assert_ne!(first, second);

    // The live coordinator covers both labels (inclusive rule) and cuts a
    // correct non-identity delta for the earlier variant.
    let live_delta = fleet.delta_since(&first);
    assert!(!live_delta.is_identity());
    assert_eq!(
        live_delta.encode(),
        DeltaSnapshot::diff(&first, &second).encode()
    );

    // The restored coordinator cannot tell the variants apart; it must fall
    // back to the diff for the same-label base rather than claim it clean.
    let mut restored = Fleet::from_snapshot(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(16),
        &second,
    );
    let restored_delta = restored.delta_since(&first);
    assert_eq!(restored.metrics().incremental_delta_cuts, 0);
    assert!(!restored_delta.is_identity());
    let mut advanced = first.clone();
    advanced.apply_delta(&restored_delta).unwrap();
    assert_eq!(advanced.invariants, second.invariants);
}

/// A coordinator restored from a snapshot has no mutation history older than the
/// restore point: bases at or after it cut incrementally, older bases take the
/// materialized-diff fallback — and both converge members onto the same state.
#[test]
fn restored_fleet_falls_back_to_diff_for_pre_restore_bases() {
    let browser = Browser::build();
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");

    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(32),
    );
    fleet.distributed_learning(&learning_suite());
    let old_base = fleet.checkpoint(); // pre-restore generation
    let batch = [Presentation::new(0, exploit.page())];
    for _ in 0..MAX_EPOCHS {
        fleet.run_epoch(&batch);
        if fleet.is_protected_against(location) {
            break;
        }
    }
    assert!(fleet.is_protected_against(location));
    let snapshot = fleet.checkpoint();

    let mut restored = Fleet::from_snapshot(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(32),
        &snapshot,
    );
    restored.run_epoch(&batch);
    let mid_base = restored.checkpoint(); // post-restore generation
    restored.run_epoch(&batch);
    let target = restored.checkpoint();

    // Only the post-restore base is covered. Both the pre-restore base *and* a
    // base carrying the restore snapshot's own epoch label must take the diff
    // fallback: the restore has no mutation history for that epoch, and two
    // different checkpoints can share a label (learning lands mid-epoch), so
    // claiming coverage there could hand a member an identity delta for state
    // it does not hold. All three must equal the specification diff exactly.
    let from_mid = restored.delta_since(&mid_base);
    assert_eq!(restored.metrics().incremental_delta_cuts, 1);
    let from_restore_label = restored.delta_since(&snapshot);
    let from_old = restored.delta_since(&old_base);
    assert_eq!(restored.metrics().delta_cuts, 3);
    assert_eq!(
        restored.metrics().incremental_delta_cuts,
        1,
        "bases at or before the restore label must take the diff fallback"
    );
    for (base, delta) in [
        (&mid_base, from_mid),
        (&snapshot, from_restore_label),
        (&old_base, from_old),
    ] {
        assert_eq!(delta.encode(), DeltaSnapshot::diff(base, &target).encode());
        let mut advanced = base.clone();
        advanced.apply_delta(&delta).unwrap();
        assert_eq!(advanced, target);
    }
}
