//! Binary-level variables: the things invariants talk about.
//!
//! Because ClearView operates on stripped binaries, "variables" are not source-level
//! names — they are the values of registers and memory locations read at a specific
//! instruction (Section 2.2). A [`Variable`] therefore names an instruction address plus
//! an operand slot, and carries the operand expression so that a repair patch knows what
//! to overwrite when it enforces an invariant on the variable.

use cv_isa::{Addr, Operand};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which value at an instruction a variable refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VarSlot {
    /// The `n`-th operand the instruction reads (in `Inst::operands_read` order).
    Read(u8),
    /// The `n`-th effective address the instruction computes (in `Inst::mem_refs` order).
    ComputedAddr(u8),
    /// The stack pointer immediately before the instruction executes.
    StackPointer,
}

impl fmt::Display for VarSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarSlot::Read(n) => write!(f, "read{n}"),
            VarSlot::ComputedAddr(n) => write!(f, "addr{n}"),
            VarSlot::StackPointer => write!(f, "sp"),
        }
    }
}

/// A binary-level variable: a value observed at a specific instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Variable {
    /// The instruction at which the value is observed.
    pub addr: Addr,
    /// Which of the instruction's values this is.
    pub slot: VarSlot,
    /// The operand expression, when the slot is a read (used by enforcement patches to
    /// overwrite the value). `None` for computed addresses and the stack pointer.
    pub operand: Option<Operand>,
}

impl Variable {
    /// A variable for the `slot`-th read operand of the instruction at `addr`.
    pub fn read(addr: Addr, slot: u8, operand: Operand) -> Variable {
        Variable {
            addr,
            slot: VarSlot::Read(slot),
            operand: Some(operand),
        }
    }

    /// A variable for the `slot`-th computed address of the instruction at `addr`.
    pub fn computed_addr(addr: Addr, slot: u8) -> Variable {
        Variable {
            addr,
            slot: VarSlot::ComputedAddr(slot),
            operand: None,
        }
    }

    /// The stack-pointer variable at `addr`.
    pub fn stack_pointer(addr: Addr) -> Variable {
        Variable {
            addr,
            slot: VarSlot::StackPointer,
            operand: None,
        }
    }

    /// True if an enforcement patch can overwrite this variable (it names a register or
    /// memory operand the instruction reads).
    pub fn is_enforceable(&self) -> bool {
        matches!(self.operand, Some(op) if op.is_writable())
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.operand {
            Some(op) => write!(f, "0x{:x}:{}({})", self.addr, self.slot, op),
            None => write!(f, "0x{:x}:{}", self.addr, self.slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::Reg;

    #[test]
    fn display_includes_address_slot_and_operand() {
        let v = Variable::read(0x1043, 0, Operand::Reg(Reg::Ecx));
        let s = v.to_string();
        assert!(s.contains("0x1043"));
        assert!(s.contains("read0"));
        assert!(s.contains("ecx"));
        let sp = Variable::stack_pointer(0x1000);
        assert!(sp.to_string().contains("sp"));
    }

    #[test]
    fn enforceability() {
        assert!(Variable::read(1, 0, Operand::Reg(Reg::Eax)).is_enforceable());
        assert!(!Variable::read(1, 0, Operand::Imm(3)).is_enforceable());
        assert!(!Variable::computed_addr(1, 0).is_enforceable());
        assert!(!Variable::stack_pointer(1).is_enforceable());
    }

    #[test]
    fn ordering_is_by_address_then_slot() {
        let a = Variable::read(1, 0, Operand::Imm(0));
        let b = Variable::read(2, 0, Operand::Imm(0));
        assert!(a < b);
    }
}
