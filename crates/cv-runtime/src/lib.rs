//! # cv-runtime — the managed program execution environment and monitors
//!
//! ClearView runs applications under the Determina Managed Program Execution
//! Environment (built on DynamoRIO), which executes binaries out of a code cache and
//! lets plugins instrument blocks and apply or remove patches from running applications
//! (Section 2.1 of the paper). Its monitors — Memory Firewall (program shepherding) and
//! Heap Guard — detect failures and report failure locations; an optional Shadow Stack
//! records the caller chain.
//!
//! This crate is that substrate for the simulated ISA in [`cv_isa`]:
//!
//! * [`Machine`] — registers, flags, memory, the canary-bracketing heap allocator, and
//!   I/O ports.
//! * [`CodeCache`] / [`BasicBlock`] — blocks decoded on first execution, ejected when
//!   patches are applied or removed.
//! * [`Hook`] / [`HookRegistry`] — the plugin/patch interface: run before an
//!   instruction, read and write guest state, emit invariant-check observations, skip
//!   the instruction, or return from the enclosing procedure.
//! * [`MemoryFirewall`-style validation, `HeapGuard` checks, and the `ShadowStack`]
//!   — see [`MonitorConfig`], [`Failure`], [`FailureKind`].
//! * [`ManagedExecutionEnvironment`] — ties it all together and reports a [`RunResult`]
//!   per execution, including [`ExecutionStats`] for the simulated cost model.
//!
//! [`MemoryFirewall`-style validation, `HeapGuard` checks, and the `ShadowStack`]: MonitorConfig

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod env;
mod error;
mod heap;
mod hooks;
mod machine;
mod memory;
mod monitors;
mod shared;
mod stats;
mod trace;

pub use cache::{BasicBlock, CodeCache};
pub use env::{EnvConfig, ManagedExecutionEnvironment, RunResult, RunStatus};
pub use error::{CrashInfo, CrashKind, RuntimeError};
pub use heap::{Allocation, HeapAllocator, CANARY};
pub use hooks::{
    Hook, HookAction, HookContext, HookId, HookRegistry, Observation, ObservationKind,
};
pub use machine::{CopyOutcome, Machine, MemFault};
pub use memory::{Memory, PAGE_WORDS};
pub use monitors::{Failure, FailureKind, MonitorConfig, ShadowStack, StackFrame};
pub use shared::{CodeIndex, SharedProgram};
pub use stats::{CostModel, ExecutionStats};
pub use trace::{
    AddrComputation, BufferedEvent, ExecEvent, OperandValue, RecordingTracer, RunBuffer, Tracer,
};
