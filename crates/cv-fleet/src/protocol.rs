//! The batched fleet wire protocol.
//!
//! `cv-community::Message` records one console message per event — one upload per
//! member, one notification per failure, one push per patch. At community scale that
//! protocol is the bottleneck: a 10,000-member fleet uploading invariants would cross
//! the management console's SSL channels 10,000 times per learning round (Section 3 of
//! the paper describes exactly this console). The fleet protocol instead moves
//! *batches*: everything of one kind that happened in one epoch travels as a single
//! message, and patch pushes carry the epoch's shard-merged [`PatchPlan`] once,
//! regardless of how many members receive it.
//!
//! Messages carry counts, patch plans, and patch descriptions, not raw databases —
//! mirroring the paper's observation that the invariant database, not trace data, is
//! what crosses the network. [`FleetMessage::batched_wire_words`] /
//! [`FleetMessage::unbatched_wire_words`] quantify what batching saves.
//!
//! Because every shard's manager pass is deterministic and [`PatchPlan::merge`]
//! imposes a canonical op order, the log a fleet writes is *byte-identical* whether
//! the manager ran sharded-parallel or sequentially — the manager-parity tests
//! compare entire [`BatchLog`]s across configurations.

use cv_core::{Directive, PatchPlan};
use cv_isa::Addr;
use serde::{Deserialize, Serialize};

/// Identifies a fleet member (compatible with `cv-community::NodeId`).
pub type NodeId = usize;

/// One page presentation scheduled for one member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Presentation {
    /// The member that loads the page.
    pub node: NodeId,
    /// The page content.
    pub page: Vec<cv_isa::Word>,
}

impl Presentation {
    /// Convenience constructor.
    pub fn new(node: NodeId, page: impl Into<Vec<cv_isa::Word>>) -> Self {
        Presentation {
            node,
            page: page.into(),
        }
    }
}

/// The log-friendly summary of one patch-plan operation (the payload itself is a
/// [`Directive`] inside the plan).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatchPushKind {
    /// Invariant-checking patches were pushed.
    InstallChecks {
        /// Number of invariants checked.
        invariants: usize,
    },
    /// Checking patches were removed.
    RemoveChecks,
    /// A candidate repair was pushed.
    InstallRepair {
        /// Human-readable description of the repair.
        description: String,
    },
    /// A repair was removed.
    RemoveRepair,
}

impl PatchPushKind {
    /// The summary for a directive.
    pub fn of(directive: &Directive) -> Self {
        match directive {
            Directive::InstallChecks(checks) => PatchPushKind::InstallChecks {
                invariants: checks.len(),
            },
            Directive::RemoveChecks => PatchPushKind::RemoveChecks,
            Directive::InstallRepair(repair) => PatchPushKind::InstallRepair {
                description: repair.description(),
            },
            Directive::RemoveRepair => PatchPushKind::RemoveRepair,
        }
    }
}

/// A batched protocol message, as recorded in the fleet console log.
///
/// Each variant aggregates everything of its kind that happened in one epoch (or one
/// learning round); the `cv-community` facade expands these back into the legacy
/// per-event [`cv_community::Message`](../cv_community) stream for compatibility.
///
/// Messages are deliberately **sync-source-agnostic**: a [`Bootstrap`] or
/// [`DeltaSync`] record is the same whether the payload was served by the root
/// coordinator or cut by a tier coordinator in the manager tree — tier cuts are
/// byte-identical to root cuts for the same base, so the log stays byte-identical
/// between flat and tiered fleets (the determinism discipline CI diffs). Which
/// tier served a sync lives in the metric stream
/// ([`MetricEvent::TierSync`](crate::MetricEvent)) and the `tier.sync` trace
/// instants, not in the protocol history.
///
/// [`Bootstrap`]: FleetMessage::Bootstrap
/// [`DeltaSync`]: FleetMessage::DeltaSync
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetMessage {
    /// Members uploaded locally inferred invariants (amortized parallel learning).
    InvariantUploads {
        /// The epoch (learning round) of the batch.
        epoch: u64,
        /// `(member, invariant count)` per uploading member.
        uploads: Vec<(NodeId, usize)>,
    },
    /// Monitors detected failures during the epoch.
    Failures {
        /// The epoch of the batch.
        epoch: u64,
        /// `(member, failure location)` per detected failure.
        failures: Vec<(NodeId, Addr)>,
    },
    /// Members reported invariant-check observations for one failure location.
    Observations {
        /// The epoch of the batch.
        epoch: u64,
        /// The failure location the observations belong to.
        location: Addr,
        /// `(member, observation count)` per reporting member.
        reports: Vec<(NodeId, usize)>,
    },
    /// The console pushed the epoch's shard-merged patch plan to every member.
    PatchPushes {
        /// The epoch of the batch.
        epoch: u64,
        /// How many members received the plan.
        members: usize,
        /// The merged, canonically ordered plan (one copy on the wire, applied by
        /// every member).
        plan: PatchPlan,
    },
    /// Members were brought to the current protection state from the coordinator's
    /// full snapshot (warm start / full resync) instead of replaying learning.
    Bootstrap {
        /// The epoch at which the bootstrap happened.
        epoch: u64,
        /// How many members were bootstrapped from this snapshot.
        members: usize,
        /// Encoded snapshot size in bytes (one copy on the wire).
        snapshot_bytes: u64,
        /// Patch-plan operations installed on each bootstrapped member.
        plan_ops: usize,
    },
    /// Members holding the base-epoch snapshot were advanced to the current state
    /// by a shard-keyed delta instead of a full snapshot.
    DeltaSync {
        /// The epoch at which the sync happened.
        epoch: u64,
        /// How many members were synced from this delta.
        members: usize,
        /// The epoch of the checkpoint the members already held.
        base_epoch: u64,
        /// Encoded delta size in bytes (what actually crossed the wire).
        delta_bytes: u64,
        /// Encoded size of the full snapshot the delta replaced.
        full_bytes: u64,
    },
}

/// Flat per-event cost of one protocol event, in wire words (header + ids).
const EVENT_HEADER_WORDS: u64 = 4;

impl FleetMessage {
    /// Number of events aggregated in this batch.
    pub fn event_count(&self) -> usize {
        match self {
            FleetMessage::InvariantUploads { uploads, .. } => uploads.len(),
            FleetMessage::Failures { failures, .. } => failures.len(),
            FleetMessage::Observations { reports, .. } => reports.len(),
            FleetMessage::PatchPushes { plan, .. } => plan.len(),
            FleetMessage::Bootstrap { members, .. } => *members,
            FleetMessage::DeltaSync { members, .. } => *members,
        }
    }

    /// `(location, summary)` for every operation of a patch-push batch (empty for
    /// other message kinds).
    pub fn push_summaries(&self) -> Vec<(Addr, PatchPushKind)> {
        match self {
            FleetMessage::PatchPushes { plan, .. } => plan
                .ops()
                .iter()
                .map(|op| (op.location, PatchPushKind::of(&op.directive)))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Estimated wire size of the batch: one header plus two words per entry.
    /// Snapshot-bearing messages carry their encoded payload once, regardless of
    /// how many members consume it.
    pub fn batched_wire_words(&self) -> u64 {
        match self {
            FleetMessage::Bootstrap { snapshot_bytes, .. } => {
                EVENT_HEADER_WORDS + snapshot_bytes.div_ceil(4)
            }
            FleetMessage::DeltaSync { delta_bytes, .. } => {
                EVENT_HEADER_WORDS + delta_bytes.div_ceil(4)
            }
            _ => EVENT_HEADER_WORDS + 2 * self.event_count() as u64,
        }
    }

    /// Estimated wire size of the same traffic sent without batching or deltas (the
    /// `cv-community` protocol): one header plus two words per event — patch plans
    /// repeated once per receiving member, snapshots shipped in full to every
    /// member, deltas replaced by the full snapshot they stand in for.
    pub fn unbatched_wire_words(&self) -> u64 {
        match self {
            FleetMessage::PatchPushes { plan, members, .. } => {
                (EVENT_HEADER_WORDS + 2) * plan.len() as u64 * (*members).max(1) as u64
            }
            FleetMessage::Bootstrap {
                members,
                snapshot_bytes,
                ..
            } => (EVENT_HEADER_WORDS + snapshot_bytes.div_ceil(4)) * (*members).max(1) as u64,
            FleetMessage::DeltaSync {
                members,
                full_bytes,
                ..
            } => (EVENT_HEADER_WORDS + full_bytes.div_ceil(4)) * (*members).max(1) as u64,
            _ => (EVENT_HEADER_WORDS + 2) * self.event_count() as u64,
        }
    }
}

/// The fleet console log: batched messages plus aggregate wire accounting.
///
/// Logs are `PartialEq`, so parity tests can assert that a sharded-parallel manager
/// and a sequential one wrote identical histories.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchLog {
    messages: Vec<FleetMessage>,
}

impl BatchLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a batch (empty batches are dropped).
    pub fn push(&mut self, message: FleetMessage) {
        if message.event_count() > 0 {
            self.messages.push(message);
        }
    }

    /// The recorded batches.
    pub fn messages(&self) -> &[FleetMessage] {
        &self.messages
    }

    /// Every patch plan ever pushed, in epoch order — enough to replay the fleet's
    /// patch state onto a fresh member.
    pub fn patch_plans(&self) -> impl Iterator<Item = &PatchPlan> {
        self.messages.iter().filter_map(|m| match m {
            FleetMessage::PatchPushes { plan, .. } => Some(plan),
            _ => None,
        })
    }

    /// Total wire words with batching.
    pub fn batched_wire_words(&self) -> u64 {
        self.messages.iter().map(|m| m.batched_wire_words()).sum()
    }

    /// Total wire words the legacy per-event protocol would have used.
    pub fn unbatched_wire_words(&self) -> u64 {
        self.messages.iter().map(|m| m.unbatched_wire_words()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_compresses_patch_distribution() {
        let mut log = BatchLog::new();
        let mut plan = PatchPlan::new();
        plan.push(0x4000, Directive::RemoveChecks);
        log.push(FleetMessage::PatchPushes {
            epoch: 3,
            members: 1000,
            plan,
        });
        assert_eq!(log.messages().len(), 1);
        assert!(log.batched_wire_words() * 100 < log.unbatched_wire_words());
        assert_eq!(
            log.messages()[0].push_summaries(),
            vec![(0x4000, PatchPushKind::RemoveChecks)]
        );
    }

    #[test]
    fn empty_batches_are_dropped() {
        let mut log = BatchLog::new();
        log.push(FleetMessage::Failures {
            epoch: 0,
            failures: vec![],
        });
        log.push(FleetMessage::PatchPushes {
            epoch: 0,
            members: 10,
            plan: PatchPlan::new(),
        });
        assert!(log.messages().is_empty());
        log.push(FleetMessage::Failures {
            epoch: 0,
            failures: vec![(7, 0x40)],
        });
        assert_eq!(log.messages().len(), 1);
        assert_eq!(log.messages()[0].event_count(), 1);
    }

    #[test]
    fn patch_plans_replay_in_epoch_order() {
        let mut log = BatchLog::new();
        for epoch in 1..=3u64 {
            let mut plan = PatchPlan::new();
            plan.push(0x100 * epoch as u32, Directive::RemoveRepair);
            log.push(FleetMessage::PatchPushes {
                epoch,
                members: 4,
                plan,
            });
        }
        let locations: Vec<_> = log.patch_plans().flat_map(|p| p.locations()).collect();
        assert_eq!(locations, vec![0x100, 0x200, 0x300]);
    }
}
