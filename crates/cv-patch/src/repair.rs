//! Candidate repair patches: enforce a correlated invariant (Section 2.5).
//!
//! A repair patch first checks whether its invariant is violated; if so, it enforces the
//! invariant by changing the values of registers or memory locations, by skipping a
//! call, or by returning immediately from the enclosing procedure. The three invariant
//! kinds and their repairs follow Sections 2.5.1–2.5.3:
//!
//! * **one-of** `v ∈ {c1..cn}` — one repair per observed value (`v = ci`); if `v` is the
//!   target of a call, a repair that skips the call; and a repair that returns from the
//!   enclosing procedure (stack pointer adjusted via a learned sp-offset invariant).
//! * **lower-bound** `c ≤ v` — `if !(c <= v) then v = c`.
//! * **less-than** `v1 ≤ v2` — `if !(v1 <= v2)` then set the variable read at the check
//!   instruction so that the relation holds (the paper's `v1 = v2` form).

use crate::check::read_variable;
use cv_inference::{Invariant, Variable};
use cv_isa::{Addr, Word};
use cv_runtime::{Hook, HookAction, HookContext, ObservationKind};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// How a repair patch enforces its invariant when the invariant is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairStrategy {
    /// Overwrite the variable with a previously observed value (one-of repair).
    SetValue {
        /// The value to install.
        value: Word,
    },
    /// Skip the (call) instruction entirely (one-of repair for function pointers).
    SkipCall,
    /// Return immediately from the enclosing procedure, adjusting the stack pointer by
    /// the learned offset first (one-of repair).
    ReturnFromProcedure {
        /// Words to add to the stack pointer before popping the return address.
        sp_adjust: i32,
    },
    /// Set the variable to the invariant's lower bound (lower-bound repair).
    ClampToLowerBound,
    /// Set the variable read at the check instruction equal to the other variable so
    /// that `v1 ≤ v2` holds (less-than repair).
    EnforceLessThan,
}

impl RepairStrategy {
    /// True if the strategy changes the flow of control rather than just state — used by
    /// the evaluation tie-breaking rule that prefers state-only repairs (Section 2.6).
    pub fn changes_control_flow(&self) -> bool {
        matches!(
            self,
            RepairStrategy::SkipCall | RepairStrategy::ReturnFromProcedure { .. }
        )
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RepairStrategy::SetValue { .. } => "set-value",
            RepairStrategy::SkipCall => "skip-call",
            RepairStrategy::ReturnFromProcedure { .. } => "return-from-procedure",
            RepairStrategy::ClampToLowerBound => "clamp-lower-bound",
            RepairStrategy::EnforceLessThan => "enforce-less-than",
        }
    }
}

impl fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairStrategy::SetValue { value } => write!(f, "set-value(0x{value:x})"),
            RepairStrategy::ReturnFromProcedure { sp_adjust } => {
                write!(f, "return-from-procedure(sp+={sp_adjust})")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// A candidate repair: an invariant plus the strategy used to enforce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairPatch {
    /// The correlated invariant being enforced.
    pub invariant: Invariant,
    /// The enforcement strategy.
    pub strategy: RepairStrategy,
}

impl RepairPatch {
    /// The address at which the repair patch runs.
    pub fn check_addr(&self) -> Addr {
        self.invariant.check_addr()
    }

    /// True if applying the repair can change control flow.
    pub fn changes_control_flow(&self) -> bool {
        self.strategy.changes_control_flow()
    }

    /// Generate every candidate repair for `invariant` (Section 2.5).
    ///
    /// * `is_call_target` — true when the invariant's variable is the target operand of
    ///   an indirect call at the check address, enabling the skip-call repair.
    /// * `sp_adjust` — the learned stack-pointer offset at the check address, enabling
    ///   the return-from-procedure repair.
    pub fn candidates(
        invariant: &Invariant,
        is_call_target: bool,
        sp_adjust: Option<i32>,
    ) -> Vec<RepairPatch> {
        let mut out = Vec::new();
        match invariant {
            Invariant::OneOf { var, values } => {
                if var.is_enforceable() {
                    for value in values {
                        out.push(RepairPatch {
                            invariant: invariant.clone(),
                            strategy: RepairStrategy::SetValue { value: *value },
                        });
                    }
                }
                if is_call_target {
                    out.push(RepairPatch {
                        invariant: invariant.clone(),
                        strategy: RepairStrategy::SkipCall,
                    });
                }
                if let Some(adjust) = sp_adjust {
                    out.push(RepairPatch {
                        invariant: invariant.clone(),
                        strategy: RepairStrategy::ReturnFromProcedure { sp_adjust: adjust },
                    });
                }
            }
            Invariant::LowerBound { var, .. } => {
                if var.is_enforceable() {
                    out.push(RepairPatch {
                        invariant: invariant.clone(),
                        strategy: RepairStrategy::ClampToLowerBound,
                    });
                }
            }
            Invariant::LessThan { a, b } => {
                let check = invariant.check_addr();
                let at_check_enforceable = (a.addr == check && a.is_enforceable())
                    || (b.addr == check && b.is_enforceable());
                if at_check_enforceable {
                    out.push(RepairPatch {
                        invariant: invariant.clone(),
                        strategy: RepairStrategy::EnforceLessThan,
                    });
                }
            }
            Invariant::StackPointerOffset { .. } => {}
        }
        out
    }

    /// A human-readable description (part of the information ClearView gives
    /// maintainers about each patch).
    pub fn description(&self) -> String {
        format!("enforce [{}] via {}", self.invariant, self.strategy)
    }

    /// Compile the repair into hooks to apply to the managed environment.
    pub fn build_hooks(&self) -> Vec<(Addr, Box<dyn Hook>)> {
        self.build_hooks_cells().0
    }

    /// Like [`RepairPatch::build_hooks`], additionally returning the auxiliary-store
    /// cell shared by the hook pair of a two-variable invariant (`None` otherwise), so
    /// a scheduler can persist the cell per member across rebuilt hook sets.
    #[allow(clippy::type_complexity)]
    pub fn build_hooks_cells(
        &self,
    ) -> (Vec<(Addr, Box<dyn Hook>)>, Option<Arc<Mutex<Option<Word>>>>) {
        let check_addr = self.check_addr();
        match &self.invariant {
            Invariant::LessThan { a, b } if a.addr != b.addr => {
                let (earlier, _later) = if a.addr < b.addr { (a, b) } else { (b, a) };
                let cell = Arc::new(Mutex::new(None));
                let hooks = vec![
                    (
                        earlier.addr,
                        Box::new(crate::check::AuxStoreHook::new(*earlier, Arc::clone(&cell)))
                            as Box<dyn Hook>,
                    ),
                    (
                        check_addr,
                        Box::new(RepairHook {
                            patch: self.clone(),
                            earlier: Some((*earlier, Arc::clone(&cell))),
                            triggered: Arc::new(Mutex::new(0)),
                        }) as Box<dyn Hook>,
                    ),
                ];
                (hooks, Some(cell))
            }
            _ => (
                vec![(
                    check_addr,
                    Box::new(RepairHook {
                        patch: self.clone(),
                        earlier: None,
                        triggered: Arc::new(Mutex::new(0)),
                    }) as Box<dyn Hook>,
                )],
                None,
            ),
        }
    }
}

impl fmt::Display for RepairPatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.description())
    }
}

/// The hook that implements a repair patch at run time.
pub struct RepairHook {
    patch: RepairPatch,
    earlier: Option<(Variable, Arc<Mutex<Option<Word>>>)>,
    /// Number of times the repair actually enforced its invariant.
    pub triggered: Arc<Mutex<u64>>,
}

impl RepairHook {
    fn value_of(&self, ctx: &HookContext<'_>, var: &Variable) -> Option<Word> {
        if let Some((earlier_var, cell)) = &self.earlier {
            if earlier_var == var {
                return *cell.lock();
            }
        }
        read_variable(ctx, var)
    }
}

impl Hook for RepairHook {
    fn on_execute(&mut self, ctx: &mut HookContext<'_>) -> HookAction {
        let holds = {
            let lookup = |var: &Variable| self.value_of(ctx, var);
            self.patch.invariant.holds(&lookup)
        };
        ctx.observe(if holds {
            ObservationKind::Satisfied
        } else {
            ObservationKind::Violated
        });
        if holds {
            return HookAction::Continue;
        }
        *self.triggered.lock() += 1;
        match self.patch.strategy {
            RepairStrategy::SetValue { value } => {
                if let Some(var) = self.patch.invariant.variables().first() {
                    if let Some(op) = var.operand {
                        let _ = ctx.machine.write_operand(&op, value);
                    }
                }
                HookAction::Continue
            }
            RepairStrategy::SkipCall => HookAction::SkipInstruction,
            RepairStrategy::ReturnFromProcedure { sp_adjust } => {
                HookAction::ReturnFromProcedure { sp_adjust }
            }
            RepairStrategy::ClampToLowerBound => {
                if let Invariant::LowerBound { var, min } = &self.patch.invariant {
                    if let Some(op) = var.operand {
                        let _ = ctx.machine.write_operand(&op, *min as Word);
                    }
                }
                HookAction::Continue
            }
            RepairStrategy::EnforceLessThan => {
                if let Invariant::LessThan { a, b } = self.patch.invariant.clone() {
                    let check = self.patch.invariant.check_addr();
                    // Set the variable read at the check instruction so that a <= b.
                    let (to_write, other) = if b.addr == check && b.is_enforceable() {
                        (b, a)
                    } else {
                        (a, b)
                    };
                    if let (Some(op), Some(value)) = (to_write.operand, self.value_of(ctx, &other))
                    {
                        let _ = ctx.machine.write_operand(&op, value);
                    }
                }
                HookAction::Continue
            }
        }
    }

    fn describe(&self) -> String {
        self.patch.description()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::{Operand, Reg};

    fn var(addr: Addr, reg: Reg) -> Variable {
        Variable::read(addr, 0, Operand::Reg(reg))
    }

    #[test]
    fn one_of_candidates_cover_all_three_repair_forms() {
        let inv = Invariant::OneOf {
            var: var(0x41000, Reg::Ebx),
            values: [0x41100u32, 0x41200].into_iter().collect(),
        };
        let repairs = RepairPatch::candidates(&inv, true, Some(0));
        let names: Vec<&str> = repairs.iter().map(|r| r.strategy.name()).collect();
        assert_eq!(
            names,
            vec![
                "set-value",
                "set-value",
                "skip-call",
                "return-from-procedure"
            ]
        );
        assert!(repairs[2].changes_control_flow());
        assert!(!repairs[0].changes_control_flow());
    }

    #[test]
    fn one_of_without_call_or_sp_only_sets_values() {
        let inv = Invariant::OneOf {
            var: var(0x41000, Reg::Ebx),
            values: [7u32].into_iter().collect(),
        };
        let repairs = RepairPatch::candidates(&inv, false, None);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].strategy, RepairStrategy::SetValue { value: 7 });
    }

    #[test]
    fn lower_bound_candidate_is_a_clamp() {
        let inv = Invariant::LowerBound {
            var: var(0x41000, Reg::Ecx),
            min: 1,
        };
        let repairs = RepairPatch::candidates(&inv, false, None);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].strategy, RepairStrategy::ClampToLowerBound);
        assert_eq!(repairs[0].check_addr(), 0x41000);
    }

    #[test]
    fn non_enforceable_invariants_generate_no_repairs() {
        let inv = Invariant::LowerBound {
            var: Variable::read(0x41000, 0, Operand::Imm(4)),
            min: 1,
        };
        assert!(RepairPatch::candidates(&inv, false, None).is_empty());
        let sp = Invariant::StackPointerOffset {
            proc_entry: 1,
            at: 2,
            offset: 0,
        };
        assert!(RepairPatch::candidates(&sp, false, None).is_empty());
    }

    #[test]
    fn less_than_candidate_requires_enforceable_var_at_check() {
        let inv = Invariant::LessThan {
            a: var(0x41000, Reg::Ecx),
            b: var(0x41010, Reg::Edx),
        };
        let repairs = RepairPatch::candidates(&inv, false, None);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].strategy, RepairStrategy::EnforceLessThan);
        assert_eq!(repairs[0].check_addr(), 0x41010);
    }

    #[test]
    fn descriptions_identify_invariant_and_strategy() {
        let inv = Invariant::LowerBound {
            var: var(0x41043, Reg::Ecx),
            min: 1,
        };
        let r = &RepairPatch::candidates(&inv, false, None)[0];
        let d = r.description();
        assert!(d.contains("0x41043"));
        assert!(d.contains("clamp-lower-bound"));
    }
}
