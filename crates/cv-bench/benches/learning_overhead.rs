//! Criterion bench backing Section 4.4.1: traced (learning) versus untraced execution
//! of the learning suite.

use criterion::{criterion_group, criterion_main, Criterion};
use cv_apps::{learning_suite, Browser};
use cv_core::learn_model;
use cv_runtime::{EnvConfig, ManagedExecutionEnvironment, MonitorConfig};

fn learning_overhead(c: &mut Criterion) {
    let browser = Browser::build();
    let pages: Vec<Vec<u32>> = learning_suite().into_iter().take(12).collect();
    let mut group = c.benchmark_group("learning_overhead");
    group.sample_size(10);
    group.bench_function("without_learning", |b| {
        b.iter(|| {
            let mut env =
                ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
            for page in &pages {
                std::hint::black_box(env.run(page));
            }
        });
    });
    group.bench_function("with_learning", |b| {
        b.iter(|| std::hint::black_box(learn_model(&browser.image, &pages, MonitorConfig::full())));
    });
    group.finish();
}

criterion_group!(benches, learning_overhead);
criterion_main!(benches);
