//! The trace interface consumed by the learning component.
//!
//! The Daikon x86 front end described in Section 2.2.1 instruments every instruction to
//! emit, on each execution, "the values of all operands that the instruction reads and
//! all addresses that the instruction computes". [`ExecEvent`] is that record;
//! [`Tracer`] is the consumer interface the inference engine implements.

use cv_isa::{Addr, Inst, MemRef, Operand, Word};
use serde::{Deserialize, Serialize};

/// The value of one operand read by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperandValue {
    /// Which read slot of the instruction this is (0-based, in `operands_read` order).
    pub slot: u8,
    /// The operand as written in the instruction.
    pub operand: Operand,
    /// The value observed.
    pub value: Word,
}

/// One address computed by an instruction (one per memory operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrComputation {
    /// Which memory-reference slot this is (0-based, in `mem_refs` order).
    pub slot: u8,
    /// The memory reference as written in the instruction.
    pub mem: MemRef,
    /// The effective address computed.
    pub addr: Addr,
}

/// A complete per-instruction trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecEvent {
    /// The instruction's address.
    pub addr: Addr,
    /// The instruction itself.
    pub inst: Inst,
    /// The values of all operands the instruction reads.
    pub reads: Vec<OperandValue>,
    /// All addresses the instruction computes.
    pub addrs: Vec<AddrComputation>,
    /// The stack pointer before the instruction executes (used for the stack-pointer
    /// offset invariants of Section 2.2.4).
    pub sp: Word,
}

/// Columnar (struct-of-arrays) storage for one run's buffered trace events.
///
/// The learning front end buffers every event of a run and only commits them once the
/// run is known to be normal. Buffering by cloning [`ExecEvent`]s heap-allocates twice
/// per traced instruction (the `reads` and `addrs` vectors); a `RunBuffer` stores the
/// same information in parallel flat arrays — addr, stack pointer, and instruction per
/// event, plus one packed array of operand reads — so pushing performs **zero
/// per-event heap allocation** once the buffer's capacity has warmed up, and
/// discarding a run is a length reset that keeps every allocation for the next run.
///
/// Computed addresses ([`ExecEvent::addrs`]) are not retained: the inference engine
/// derives no invariants from them.
#[derive(Debug, Clone, Default)]
pub struct RunBuffer {
    addrs: Vec<Addr>,
    sps: Vec<Word>,
    insts: Vec<Inst>,
    /// Prefix sums: the reads of event `i` are `reads[read_ends[i-1]..read_ends[i]]`
    /// (with `read_ends[-1]` taken as 0).
    read_ends: Vec<u32>,
    /// All events' operand reads, packed end to end.
    reads: Vec<OperandValue>,
}

/// One event viewed out of a [`RunBuffer`].
#[derive(Debug, Clone, Copy)]
pub struct BufferedEvent<'a> {
    /// The instruction's address.
    pub addr: Addr,
    /// The stack pointer before the instruction executed.
    pub sp: Word,
    /// The instruction itself.
    pub inst: Inst,
    /// The values of the operands the instruction read.
    pub reads: &'a [OperandValue],
}

impl RunBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event (copies its columns; no allocation once capacity is warm).
    pub fn push(&mut self, event: &ExecEvent) {
        self.addrs.push(event.addr);
        self.sps.push(event.sp);
        self.insts.push(event.inst);
        self.reads.extend_from_slice(&event.reads);
        self.read_ends.push(self.reads.len() as u32);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Drop all buffered events, retaining every allocation (a length reset).
    pub fn clear(&mut self) {
        self.addrs.clear();
        self.sps.clear();
        self.insts.clear();
        self.read_ends.clear();
        self.reads.clear();
    }

    /// Iterate the buffered events in execution order.
    pub fn iter(&self) -> impl Iterator<Item = BufferedEvent<'_>> {
        (0..self.len()).map(move |i| {
            let start = if i == 0 {
                0
            } else {
                self.read_ends[i - 1] as usize
            };
            BufferedEvent {
                addr: self.addrs[i],
                sp: self.sps[i],
                inst: self.insts[i],
                reads: &self.reads[start..self.read_ends[i] as usize],
            }
        })
    }
}

/// A consumer of execution traces (implemented by the learning front end).
pub trait Tracer {
    /// Called the first time a basic block enters the code cache.
    fn on_block_first_execution(&mut self, _block_start: Addr) {}

    /// Called for every traced instruction execution.
    fn on_inst(&mut self, event: &ExecEvent);

    /// Return `false` to skip tracing for an address. This is how a community member
    /// traces only its assigned procedures and pays no learning overhead for the rest
    /// of the application (Section 3.1).
    fn wants_addr(&self, _addr: Addr) -> bool {
        true
    }

    /// Called when a call transfers control to `target` from `call_site` — used by the
    /// learning component to discover procedure entry points dynamically.
    fn on_call(&mut self, _call_site: Addr, _target: Addr) {}

    /// Called when a run ends (normally or otherwise), so the tracer can close out
    /// per-run bookkeeping.
    fn on_run_end(&mut self) {}
}

/// A tracer that records every event into memory; useful for tests and for feeding the
/// inference engine offline.
#[derive(Debug, Default)]
pub struct RecordingTracer {
    /// All recorded events in execution order.
    pub events: Vec<ExecEvent>,
    /// Basic block first executions in order.
    pub blocks: Vec<Addr>,
    /// Observed (call site, target) pairs.
    pub calls: Vec<(Addr, Addr)>,
    /// Number of completed runs.
    pub runs: u32,
    /// Optional address filter: when non-empty, only these addresses are traced.
    pub filter: Option<std::collections::BTreeSet<Addr>>,
}

impl RecordingTracer {
    /// A tracer that records everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracer restricted to the given instruction addresses.
    pub fn with_filter(addrs: impl IntoIterator<Item = Addr>) -> Self {
        RecordingTracer {
            filter: Some(addrs.into_iter().collect()),
            ..Self::default()
        }
    }
}

impl Tracer for RecordingTracer {
    fn on_block_first_execution(&mut self, block_start: Addr) {
        self.blocks.push(block_start);
    }

    fn on_inst(&mut self, event: &ExecEvent) {
        self.events.push(event.clone());
    }

    fn wants_addr(&self, addr: Addr) -> bool {
        match &self.filter {
            Some(f) => f.contains(&addr),
            None => true,
        }
    }

    fn on_call(&mut self, call_site: Addr, target: Addr) {
        self.calls.push((call_site, target));
    }

    fn on_run_end(&mut self) {
        self.runs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::Reg;

    #[test]
    fn recording_tracer_collects_events() {
        let mut t = RecordingTracer::new();
        let ev = ExecEvent {
            addr: 0x1000,
            inst: Inst::Nop,
            reads: vec![],
            addrs: vec![],
            sp: 0x60000,
        };
        t.on_block_first_execution(0x1000);
        t.on_inst(&ev);
        t.on_call(0x1001, 0x1010);
        t.on_run_end();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.blocks, vec![0x1000]);
        assert_eq!(t.calls, vec![(0x1001, 0x1010)]);
        assert_eq!(t.runs, 1);
    }

    #[test]
    fn filter_restricts_addresses() {
        let t = RecordingTracer::with_filter([0x1000, 0x1004]);
        assert!(t.wants_addr(0x1000));
        assert!(!t.wants_addr(0x1001));
    }

    #[test]
    fn run_buffer_round_trips_events() {
        let events = [
            ExecEvent {
                addr: 0x1000,
                inst: Inst::Mov {
                    dst: Operand::Reg(Reg::Eax),
                    src: Operand::Imm(1),
                },
                reads: vec![OperandValue {
                    slot: 0,
                    operand: Operand::Imm(1),
                    value: 1,
                }],
                addrs: vec![],
                sp: 0x60000,
            },
            ExecEvent {
                addr: 0x1002,
                inst: Inst::Nop,
                reads: vec![],
                addrs: vec![],
                sp: 0x60000,
            },
            ExecEvent {
                addr: 0x1003,
                inst: Inst::Add {
                    dst: Operand::Reg(Reg::Eax),
                    src: Operand::Reg(Reg::Ebx),
                },
                reads: vec![
                    OperandValue {
                        slot: 0,
                        operand: Operand::Reg(Reg::Eax),
                        value: 1,
                    },
                    OperandValue {
                        slot: 1,
                        operand: Operand::Reg(Reg::Ebx),
                        value: 2,
                    },
                ],
                addrs: vec![],
                sp: 0x5fffe,
            },
        ];
        let mut buf = RunBuffer::new();
        for ev in &events {
            buf.push(ev);
        }
        assert_eq!(buf.len(), 3);
        for (got, want) in buf.iter().zip(&events) {
            assert_eq!(got.addr, want.addr);
            assert_eq!(got.sp, want.sp);
            assert_eq!(got.inst, want.inst);
            assert_eq!(got.reads, want.reads.as_slice());
        }
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.iter().count(), 0);
    }

    #[test]
    fn exec_event_clone_and_equality() {
        let ev = ExecEvent {
            addr: 0x1000,
            inst: Inst::Mov {
                dst: Operand::Reg(Reg::Eax),
                src: Operand::Imm(1),
            },
            reads: vec![OperandValue {
                slot: 0,
                operand: Operand::Imm(1),
                value: 1,
            }],
            addrs: vec![AddrComputation {
                slot: 0,
                mem: MemRef::base(Reg::Ebp),
                addr: 0x50000,
            }],
            sp: 5,
        };
        assert_eq!(ev.clone(), ev);
    }
}
