//! # cv-community — the application community
//!
//! ClearView is deployed across an *application community*: a set of machines running
//! the same application that cooperate to learn invariants, detect attacks, and share
//! patches, so that members that have never been exposed to an attack become immune once
//! a few members have been attacked (Section 3 of the paper).
//!
//! * [`Community`] — the member nodes, the central ClearView manager (merged invariant
//!   database, per-failure responders), and patch distribution. Since the `cv-fleet`
//!   engine landed this is a thin N=small facade over [`cv_fleet::Fleet`] — one
//!   presentation per epoch reproduces the sequential protocol exactly; use
//!   `cv-fleet` directly for thousand-member communities.
//! * [`Message`] — the legacy per-event protocol messages recorded in the console log
//!   (failure notifications, invariant uploads, check/repair distribution), expanded
//!   from the fleet's batched [`cv_fleet::FleetMessage`] log.
//!
//! Member-side learning runs on the interned/columnar
//! [`cv_inference::LearningFrontend`] hot path and manager-side upload merging on the
//! fleet's sharded store with its single-core inline fallback; both are proven
//! behaviour-identical to the seed implementations (`cv-inference/tests/parity.rs`,
//! `cv-fleet/tests/shard_parity.rs`), which is why this facade reproduces the seed
//! protocol byte for byte without any code of its own changing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod community;
mod messages;

pub use community::{Community, CommunityOutcome};
pub use messages::{Message, NodeId};
