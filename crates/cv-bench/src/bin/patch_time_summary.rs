//! Regenerates the patch-generation time summary of Section 4.4.3: the average time and
//! number of executions from the first exposure to a new exploit until a successful
//! patch is obtained (the paper reports 4.9 minutes and 5.4 executions on average, with
//! exploit 311710 as the outlier that repairs three defects in sequence).

use cv_bench::{print_table, run_red_team};

fn main() {
    let runs = run_red_team(true);
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    let mut executions = Vec::new();
    for run in &runs {
        let Some(presentations) = run.presentations else {
            continue;
        };
        let total: f64 = run.timelines.iter().map(|t| t.total_seconds()).sum();
        totals.push(total);
        executions.push(presentations as f64);
        rows.push(vec![
            run.exploit.bugzilla.to_string(),
            format!("{:.1}", total / 60.0),
            presentations.to_string(),
            run.timelines.len().to_string(),
        ]);
    }
    print_table(
        "Patch generation time per successfully patched exploit",
        &[
            "Bugzilla",
            "Minutes to patch (simulated)",
            "Executions",
            "Defects repaired",
        ],
        &rows,
    );
    let avg_min = totals.iter().sum::<f64>() / totals.len() as f64 / 60.0;
    let avg_exec = executions.iter().sum::<f64>() / executions.len() as f64;
    println!("\naverage time to a successful patch: {avg_min:.1} minutes (paper: 4.9 minutes)");
    println!("average executions to a successful patch: {avg_exec:.1} (paper: 5.4 executions)");
    println!("(compare against the paper's 28-day average for manual vendor patches)");
}
