//! Fleet-scale benchmark: sequential vs. parallel epoch scheduling throughput
//! (pages/sec), monolithic vs. sharded invariant-store merge, and — since the
//! manager plane was sharded — the multi-failure manager benchmark: N simultaneous
//! exploits at N distinct failure locations, where the sharded manager turns the
//! per-epoch responder pass from O(failures) into O(failures / workers). A captured
//! run is recorded in `EXPERIMENTS.md`.
//!
//! Run with: `cargo run --release -p cv-bench --bin fleet_scale [-- OPTIONS]`
//!
//! Options:
//!   --json          also write a `BENCH_fleet.json` record (pages/sec,
//!                   time-to-immunity, manager ms/epoch, speedups, snapshot/churn
//!                   columns; implies the churn scenario)
//!   --churn         run the churn scenario (kill 20% mid-epoch, rejoin half by
//!                   delta sync and half by full bootstrap, late-join warm + cold)
//!   --digest PATH   determinism mode: run only the log-producing scenarios
//!                   (multi-failure sequential + sharded, churn), assert the
//!                   sequential and sharded manager logs byte-identical, and
//!                   write every `BatchLog` record to PATH — CI runs this twice
//!                   and diffs the files, locking in the byte-identical-log
//!                   guarantee across runs. No timing-dependent output.
//!   --trace PATH    enable the `cv-obs` recorder and write a Chrome
//!                   `trace_event` JSON of the whole run to PATH, plus a
//!                   machine-readable per-phase summary (medians/p99, counters,
//!                   repair timelines) of the churn fleet to PATH's
//!                   `.summary.json` sibling; implies the churn scenario
//!   --workers N     worker threads for the parallel configurations (0 = one per core)
//!   --nodes N       community size (default 256)
//!   --epochs N      benign throughput epochs (default 4)
//!   --rounds N      measurement rounds for the throughput scenario (default 1).
//!                   With N > 1 each scheduler runs one untimed warmup round and
//!                   then N timed rounds; the flat pages/sec keys in
//!                   `BENCH_fleet.json` become medians, and a `"spread"` object
//!                   records median/min/max/MAD/IQR plus the raw samples per
//!                   metric — the shape `perf_gate` ingests.
//!   --tree-fanout N merge and push patch plans through a hierarchical manager
//!                   tree with fan-out N (0 = flat, the default)
//!   --sweep LIST    scale sweep: for each comma-separated member count (e.g.
//!                   `1000,10000,100000`) drive an event-engine fleet to
//!                   fleet-wide immunity, measure pages/sec and bytes/member,
//!                   print the table, and write one JSON row per point to
//!                   `BENCH_fleet_sweep.json` (gated by `bench_gate --cap`).
//!                   Runs only the sweep; other scenarios are skipped.
//!   --transport T   transport backend for every fleet this run builds:
//!                   `inprocess` (default) or `socket` (loopback TCP with real
//!                   envelope serialization). `--digest` with each must produce
//!                   byte-identical files — CI diffs them.
//!   --chaos SEED    chaos mode: run only the chaos scenario — a fleet on the
//!                   seeded lossy transport (drops, duplicates, delays) with a
//!                   mid-history partition — assert multi-location fleet-wide
//!                   immunity, print the transport counters, and write them to
//!                   `BENCH_fleet.json` (`"bench": "fleet_scale_chaos"`).
//!                   Combine with `--digest PATH` to dump the chaos run's
//!                   `BatchLog`: same seed → byte-identical dump, different
//!                   seed → different history. CI runs two seeds twice each.

use cv_apps::{
    evaluation_suite, expanded_learning_suite, learning_suite, red_team_exploits, Browser,
    MULTI_FAILURE_TARGETS,
};
use cv_bench::print_table;
use cv_core::{learn_model, ClearViewConfig};
use cv_fleet::{
    ChaosConfig, Fleet, FleetConfig, FleetMetrics, MembershipOp, Presentation,
    ShardedInvariantStore, TransportKind,
};
use cv_inference::{InvariantDatabase, LearnedModel, LearningFrontend};
use cv_obs::{chrome_trace_json, FixedHistogram, Summary, TraceEvent};
use cv_perf::MetricStats;
use cv_runtime::{EnvConfig, ManagedExecutionEnvironment, MonitorConfig};
use std::time::Instant;

const MERGE_MEMBERS: usize = 64;
const MERGE_ROUNDS: usize = 50;
const MANAGER_SHARDS: usize = 8;
const MULTI_FAILURE_EPOCHS: u64 = 10;

#[derive(Debug, Clone)]
struct Options {
    json: bool,
    churn: bool,
    digest: Option<String>,
    trace: Option<String>,
    workers: usize,
    nodes: usize,
    epochs: usize,
    rounds: usize,
    tree_fanout: usize,
    sweep: Option<Vec<usize>>,
    transport: String,
    chaos: Option<u64>,
}

impl Options {
    /// The transport every fleet in this run is built on (`--transport`).
    fn transport_kind(&self) -> TransportKind {
        match self.transport.as_str() {
            "inprocess" => TransportKind::InProcess,
            "socket" => TransportKind::Socket,
            other => panic!("--transport must be 'inprocess' or 'socket', got {other:?}"),
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options {
        json: false,
        churn: false,
        digest: None,
        trace: None,
        workers: 0,
        nodes: 256,
        epochs: 4,
        rounds: 1,
        tree_fanout: 0,
        sweep: None,
        transport: "inprocess".into(),
        chaos: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("{name} requires a numeric argument"))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--churn" => opts.churn = true,
            "--digest" => opts.digest = Some(args.next().expect("--digest requires a path")),
            "--trace" => opts.trace = Some(args.next().expect("--trace requires a path")),
            "--workers" => opts.workers = number("--workers"),
            "--nodes" => opts.nodes = number("--nodes").max(16),
            "--epochs" => opts.epochs = number("--epochs").max(1),
            "--rounds" => opts.rounds = number("--rounds").max(1),
            "--tree-fanout" => opts.tree_fanout = number("--tree-fanout"),
            "--transport" => {
                opts.transport = args.next().expect("--transport requires a backend name")
            }
            "--chaos" => {
                let seed = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .expect("--chaos requires a numeric seed");
                opts.chaos = Some(seed);
            }
            "--sweep" => {
                let list = args
                    .next()
                    .expect("--sweep requires a comma-separated list");
                let points: Vec<usize> = list
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| panic!("--sweep: bad member count {p:?}"))
                            .max(16)
                    })
                    .collect();
                assert!(!points.is_empty(), "--sweep requires at least one point");
                opts.sweep = Some(points);
            }
            other => panic!("unknown option {other}"),
        }
    }
    // The JSON record carries the snapshot/churn columns, so --json implies the
    // churn scenario; the trace summary reports the churn fleet, so --trace does
    // too.
    opts.churn |= opts.json || opts.trace.is_some();
    opts
}

/// Run benign-traffic epochs (every member loads four pages per epoch) and return
/// (pages processed, execution seconds, pages/sec).
fn throughput(parallel: bool, workers: usize, opts: &Options) -> (u64, f64, f64) {
    let browser = Browser::build();
    let mut config = FleetConfig::new(opts.nodes)
        .with_workers(workers)
        .with_tree_fanout(opts.tree_fanout)
        .with_transport(opts.transport_kind());
    if !parallel {
        config = config.sequential();
    }
    let mut fleet = Fleet::new(browser.image.clone(), ClearViewConfig::default(), config);
    fleet.distributed_learning(&learning_suite());

    let pages = evaluation_suite();
    let mut batch = Vec::with_capacity(opts.nodes * 4);
    for node in 0..opts.nodes {
        for k in 0..4 {
            batch.push(Presentation::new(
                node,
                pages[(node * 4 + k) % pages.len()].clone(),
            ));
        }
    }

    for _ in 0..opts.epochs {
        let outcome = fleet.run_epoch(&batch);
        assert_eq!(
            outcome.completed(),
            batch.len(),
            "benign pages all complete"
        );
    }
    let metrics = fleet.metrics();
    (
        metrics.pages_processed,
        metrics.execution_time.as_secs_f64(),
        metrics.pages_per_second(),
    )
}

/// Produce `MERGE_MEMBERS` member uploads via amortized learning.
fn uploads() -> Vec<InvariantDatabase> {
    let browser = Browser::build();
    let pages = learning_suite();
    (0..MERGE_MEMBERS)
        .map(|member| {
            let mut env =
                ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
            let mut frontend = LearningFrontend::new(browser.image.clone());
            for page in pages.iter().skip(member % pages.len()).step_by(4) {
                let result = env.run_with_tracer(page, &mut frontend);
                if result.is_completed() {
                    frontend.commit_run();
                } else {
                    frontend.discard_run();
                }
            }
            frontend.into_model().invariants
        })
        .collect()
}

/// Time `MERGE_ROUNDS` rounds of merging the uploads into a store (after two
/// untimed warmup rounds: allocator and cache state otherwise leak across the
/// configurations being compared).
fn merge_time(shards: usize, parallel: bool, uploads: &[InvariantDatabase]) -> f64 {
    let round = |timed: bool| {
        let start = Instant::now();
        let mut store = ShardedInvariantStore::new(shards);
        if parallel {
            store.merge_uploads(uploads);
        } else {
            store.merge_uploads_sequential(uploads);
        }
        std::hint::black_box(store.len());
        if timed {
            start.elapsed().as_secs_f64()
        } else {
            0.0
        }
    };
    round(false);
    round(false);
    (0..MERGE_ROUNDS).map(|_| round(true)).sum()
}

/// The outcome of one multi-failure manager run.
struct MultiFailureRun {
    manager_ms_per_epoch: f64,
    /// `None` when no manager fan-out ever ran on multiple threads — the
    /// single-core / single-worker case, where there is no parallel section to
    /// measure. Rendered as `-` in the table and `null` in the JSON record.
    manager_parallel_speedup: Option<f64>,
    immune: usize,
    immunity_epochs: Vec<(u32, u64)>,
    /// The fleet's entire `BatchLog`, one record per line — timing-free, so two
    /// runs of the same scenario must produce byte-identical dumps.
    log: String,
}

/// Render a manager-parallel speedup cell: `-` when no parallel fan-out ran.
fn speedup_cell(speedup: Option<f64>) -> String {
    match speedup {
        Some(s) => format!("{s:.2}x"),
        None => "-".into(),
    }
}

/// Dump a fleet's batched console log, one `FleetMessage` record per line.
fn log_dump(fleet: &Fleet) -> String {
    let mut out = String::new();
    for message in fleet.log().messages() {
        out.push_str(&format!("{message:?}\n"));
    }
    out
}

/// Attack all eight defects simultaneously: every member presents the exploit page
/// of defect `member % 8`, every epoch. The manager therefore routes
/// `members × active-locations` digests per epoch — the responder load the sharded
/// plane parallelizes.
fn multi_failure(browser: &Browser, model: &LearnedModel, config: FleetConfig) -> MultiFailureRun {
    let all = red_team_exploits(browser);
    let exploits: Vec<_> = MULTI_FAILURE_TARGETS
        .iter()
        .map(|(b, _)| all.iter().find(|e| e.bugzilla == *b).unwrap().clone())
        .collect();
    let locations: Vec<(u32, u32)> = MULTI_FAILURE_TARGETS
        .iter()
        .map(|(bug, sym)| (*bug, browser.sym(sym)))
        .collect();

    let nodes = config.node_count;
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::with_stack_walk(2),
        config,
    );
    fleet.set_model(model.clone());

    let batch: Vec<Presentation> = (0..nodes)
        .map(|node| Presentation::new(node, exploits[node % exploits.len()].page()))
        .collect();
    for _ in 0..MULTI_FAILURE_EPOCHS {
        fleet.run_epoch(&batch);
    }

    let metrics = fleet.metrics();
    let immunity_epochs: Vec<(u32, u64)> = locations
        .iter()
        .filter_map(|(bug, loc)| {
            metrics
                .immunity(*loc)
                .and_then(|r| r.epochs_to_immunity())
                .map(|e| (*bug, e))
        })
        .collect();
    MultiFailureRun {
        manager_ms_per_epoch: metrics.manager_ms_per_epoch(),
        manager_parallel_speedup: metrics.manager_parallel_speedup(),
        immune: locations
            .iter()
            .filter(|(_, loc)| fleet.is_protected_against(*loc))
            .count(),
        immunity_epochs,
        log: log_dump(&fleet),
    }
}

/// The outcome of the churn scenario.
struct ChurnRun {
    killed: usize,
    rejoined_delta: usize,
    rejoined_full: usize,
    late_warm: usize,
    late_cold: usize,
    snapshot_bytes: u64,
    delta_bytes: u64,
    delta_full_bytes: u64,
    delta_savings: f64,
    joiner_tti_max: u64,
    immune_members: usize,
    total_members: usize,
    /// The fleet's `BatchLog` dump (see [`log_dump`]): the churn protocol
    /// history, including `Bootstrap`/`DeltaSync` records with their byte sizes.
    log: String,
    /// The churn fleet's full metrics aggregate — the `--json` record dumps it
    /// whole, and the `--trace` summary is reconciled against it.
    metrics: FleetMetrics,
    /// The churn fleet's `cv-obs` id, for filtering the recorded stream down to
    /// this fleet's events.
    obs_id: u64,
}

/// Kill 20% of the fleet mid-epoch (they miss that epoch's patch push), drive the
/// survivors to immunity, rejoin half the casualties by shard-keyed delta sync and
/// half by full bootstrap, late-join members warm (snapshot) and cold (resync),
/// then attack everyone: the whole fleet must be immune, with warm joiners
/// Protected in <= 1 epoch.
fn churn(browser: &Browser, opts: &Options) -> ChurnRun {
    let exploit = red_team_exploits(browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");

    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(opts.nodes)
            .with_workers(opts.workers)
            .with_tree_fanout(opts.tree_fanout)
            .with_transport(opts.transport_kind()),
    );
    fleet.distributed_learning(&learning_suite());
    let base = fleet.checkpoint();

    // Attack five members from the low half (the kill range below is the upper
    // half, so attackers survive the outage); a fifth of the fleet dies mid-epoch
    // in the first round.
    let attackers: Vec<usize> = (0..5).map(|k| k * (opts.nodes / 16)).collect();
    let batch: Vec<Presentation> = attackers
        .iter()
        .map(|&node| Presentation::new(node, exploit.page()))
        .collect();
    let kills: Vec<usize> = (opts.nodes / 2..opts.nodes / 2 + opts.nodes / 5).collect();
    fleet.run_epoch_churn(&batch, &kills);
    for _ in 0..12 {
        if fleet.is_protected_against(location) {
            break;
        }
        fleet.run_epoch(&batch);
    }
    assert!(
        fleet.is_protected_against(location),
        "fleet failed to immunize"
    );

    // Rejoin: half by delta against the pre-outage checkpoint, half full.
    let half = kills.len() / 2;
    for &node in &kills[..half] {
        fleet.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: Some(&base),
        });
    }
    for &node in &kills[half..] {
        fleet.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: None,
        });
    }
    // Late joiners: warm from the sync source's snapshot, cold + explicit resync.
    let late_warm = 8;
    let late_cold = 2;
    for _ in 0..late_warm {
        fleet.apply_membership(MembershipOp::JoinWarm);
    }
    for _ in 0..late_cold {
        let node = fleet.apply_membership(MembershipOp::JoinCold).nodes[0];
        fleet.apply_membership(MembershipOp::Resync(node));
    }

    // Everyone gets attacked; everyone must survive.
    let verify: Vec<Presentation> = (0..fleet.node_count())
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);

    let metrics = fleet.metrics();
    ChurnRun {
        killed: kills.len(),
        rejoined_delta: half,
        rejoined_full: kills.len() - half,
        late_warm,
        late_cold,
        snapshot_bytes: metrics.snapshot_bytes_last,
        delta_bytes: metrics.delta_bytes_total,
        delta_full_bytes: metrics.delta_full_bytes_total,
        delta_savings: metrics.delta_savings(),
        joiner_tti_max: metrics.max_joiner_immunity_epochs().unwrap_or(0),
        immune_members: outcome.completed(),
        total_members: fleet.node_count(),
        log: log_dump(&fleet),
        metrics: metrics.clone(),
        obs_id: fleet.obs_id(),
    }
}

/// One measured point of the scale sweep.
struct ScaleRow {
    members: usize,
    epochs_to_immunity: u64,
    pages_per_second: f64,
    bytes_per_member: f64,
    resident_bytes_per_member: f64,
    tier_depth: u64,
    tier_sync_bytes: u64,
    tier_delta_cuts: u64,
    root_sync_bypass_count: u64,
    root_sync_bypass_share: f64,
    immune_members: usize,
}

/// Drive one event-engine fleet of `nodes` members to fleet-wide immunity:
/// learn, attack five spread members with exploit 290162 until the community is
/// protected, run one full-fleet benign epoch (the throughput measurement that
/// matters at scale), then present the exploit to **every** member and require
/// every one to complete — the paper's immunized-members-that-were-never-attacked
/// claim, at six figures.
fn scale_point(browser: &Browser, nodes: usize, opts: &Options) -> ScaleRow {
    let exploit = red_team_exploits(browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");
    let fanout = if opts.tree_fanout == 0 {
        32
    } else {
        opts.tree_fanout
    };

    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(nodes)
            .with_workers(opts.workers)
            .with_tree_fanout(fanout)
            .with_transport(opts.transport_kind()),
    );
    fleet.distributed_learning(&learning_suite());

    // Five attacked members spread across the fleet; everyone else is immunized
    // purely by the manager tree's patch push.
    let attackers: Vec<usize> = (0..5).map(|k| k * (nodes / 5) + 3).collect();
    let batch: Vec<Presentation> = attackers
        .iter()
        .map(|&node| Presentation::new(node, exploit.page()))
        .collect();
    for _ in 0..12 {
        fleet.run_epoch(&batch);
        if fleet.is_protected_against(location) {
            break;
        }
    }
    assert!(
        fleet.is_protected_against(location),
        "{nodes}-member fleet failed to immunize"
    );

    // A churn wave at scale: a twentieth of the fleet dies mid-epoch and
    // rejoins, half by delta against the pre-outage checkpoint and half by
    // full bootstrap — so the sweep also measures the sync plane, which a
    // fleet larger than the fan-out serves through the manager tree's leaf
    // tier instead of the root.
    let base = fleet.checkpoint();
    let kills: Vec<usize> = (nodes / 2..nodes / 2 + (nodes / 20).max(2)).collect();
    fleet.run_epoch_churn(&batch, &kills);
    let half = kills.len() / 2;
    for &node in &kills[..half] {
        fleet.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: Some(&base),
        });
    }
    for &node in &kills[half..] {
        fleet.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: None,
        });
    }

    // One full-fleet benign epoch: every member loads a page through its patched
    // configuration.
    let pages = evaluation_suite();
    let benign: Vec<Presentation> = (0..nodes)
        .map(|node| Presentation::new(node, pages[node % pages.len()].clone()))
        .collect();
    let outcome = fleet.run_epoch(&benign);
    assert_eq!(
        outcome.completed(),
        benign.len(),
        "benign pages all complete"
    );

    // Fleet-wide immunity: everyone gets attacked, everyone survives.
    let verify: Vec<Presentation> = (0..nodes)
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    let immune_members = outcome.completed();
    assert_eq!(
        immune_members,
        fleet.alive_count(),
        "{nodes}-member fleet failed fleet-wide immunity"
    );

    let metrics = fleet.metrics();
    ScaleRow {
        members: nodes,
        epochs_to_immunity: metrics
            .immunity(location)
            .and_then(|r| r.epochs_to_immunity())
            .unwrap_or(0),
        pages_per_second: metrics.pages_per_second(),
        bytes_per_member: metrics.bytes_per_member(),
        resident_bytes_per_member: metrics.member_state_bytes_last as f64 / nodes as f64,
        tier_depth: metrics.tier_depth_last,
        tier_sync_bytes: metrics.tier_sync_bytes,
        tier_delta_cuts: metrics.tier_delta_cuts,
        root_sync_bypass_count: metrics.root_sync_bypass_count,
        root_sync_bypass_share: metrics.root_sync_bypass_share(),
        immune_members,
    }
}

/// `--sweep`: measure each member count, print the scaling table, and write
/// `BENCH_fleet_sweep.json` — `bench_gate --cap` holds `bytes_per_member` to the
/// ≤ 1 KiB budget from there.
fn run_sweep(points: &[usize], opts: &Options) {
    let browser = Browser::build();
    let fanout = if opts.tree_fanout == 0 {
        32
    } else {
        opts.tree_fanout
    };
    let rows: Vec<ScaleRow> = points
        .iter()
        .map(|&nodes| {
            let start = Instant::now();
            let row = scale_point(&browser, nodes, opts);
            println!(
                "  {} members: immune {}/{} in {:.1}s",
                nodes,
                row.immune_members,
                nodes,
                start.elapsed().as_secs_f64()
            );
            row
        })
        .collect();

    print_table(
        &format!("Scale sweep (event engine, manager-tree fan-out {fanout})"),
        &[
            "members",
            "epochs to immunity",
            "pages/sec",
            "bytes/member",
            "resident B/member",
            "tier depth",
            "tier sync B",
            "root bypass",
            "immune",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.members.to_string(),
                    r.epochs_to_immunity.to_string(),
                    format!("{:.0}", r.pages_per_second),
                    format!("{:.1}", r.bytes_per_member),
                    format!("{:.1}", r.resident_bytes_per_member),
                    r.tier_depth.to_string(),
                    r.tier_sync_bytes.to_string(),
                    r.root_sync_bypass_count.to_string(),
                    format!("{}/{}", r.immune_members, r.members),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let point_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"members\": {},\n      \"epochs_to_immunity\": {},\n      \"pages_per_second\": {:.1},\n      \"bytes_per_member\": {:.1},\n      \"resident_bytes_per_member\": {:.1},\n      \"tier_depth\": {},\n      \"tier_sync_bytes\": {},\n      \"tier_delta_cuts\": {},\n      \"root_sync_bypass_count\": {},\n      \"root_sync_bypass_share\": {:.3},\n      \"immune_members\": {}\n    }}",
                r.members,
                r.epochs_to_immunity,
                r.pages_per_second,
                r.bytes_per_member,
                r.resident_bytes_per_member,
                r.tier_depth,
                r.tier_sync_bytes,
                r.tier_delta_cuts,
                r.root_sync_bypass_count,
                r.root_sync_bypass_share,
                r.immune_members,
            )
        })
        .collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"fleet_scale_sweep\",\n  \"workers\": {},\n  \"cores\": {cores},\n  \"rounds\": 1,\n  \"warmups\": 0,\n  \"tree_fanout\": {fanout},\n  \"points\": [\n{}\n  ]\n}}\n",
        opts.workers,
        point_json.join(",\n"),
    );
    std::fs::write("BENCH_fleet_sweep.json", &json).expect("write BENCH_fleet_sweep.json");
    println!("\nwrote BENCH_fleet_sweep.json:\n{json}");
}

/// Write the Chrome trace (the whole process: every fleet this run built) to
/// `path`, and the churn fleet's per-phase summary to `path`'s `.summary.json`
/// sibling — after asserting the summary reconciles with the churn fleet's
/// [`FleetMetrics`].
fn write_trace(path: &str, mut events: Vec<TraceEvent>, run: &ChurnRun) {
    let churn_events = cv_obs::recorder().drain();
    let summary = Summary::build_for_fleet(&churn_events, run.obs_id);
    reconcile(&summary, &run.metrics);

    events.extend(churn_events);
    std::fs::write(path, chrome_trace_json(&events)).expect("write chrome trace");
    let summary_path = match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.summary.json"),
        None => format!("{path}.summary.json"),
    };
    std::fs::write(&summary_path, summary.to_json()).expect("write trace summary");
    println!("\nchurn-fleet phase summary (reconciled against FleetMetrics):\n{summary}");
    println!(
        "wrote {path} ({} events — open in chrome://tracing or ui.perfetto.dev) \
         and {summary_path}",
        events.len()
    );
}

/// Assert the trace-derived per-phase totals agree with the metrics fold. Each
/// instrumented phase is measured **once** (`timed_span`) and the same
/// `Duration` feeds both the trace event and the `MetricEvent`, so the totals
/// are equal exactly, not approximately — any drift is an accounting bug.
fn reconcile(summary: &Summary, metrics: &FleetMetrics) {
    use std::time::Duration;
    let total = |name: &str| summary.phase(name).map_or(Duration::ZERO, |p| p.total);
    let count = |name: &str| summary.phase(name).map_or(0, |p| p.count);
    assert_eq!(total("fleet.execution"), metrics.execution_time);
    assert_eq!(count("fleet.execution"), metrics.epochs);
    assert_eq!(total("fleet.manager"), metrics.manager_time);
    assert_eq!(total("fleet.manager_fanout"), metrics.manager_fanout_time);
    assert_eq!(total("fleet.delta_cut"), metrics.delta_cut_time);
    assert_eq!(count("fleet.delta_cut"), metrics.delta_cuts);
    // The push span is recorded every epoch; the metrics event folds in only
    // the rounds that actually pushed a plan.
    assert!(total("fleet.patch_push") >= metrics.patch_propagation_time);
    assert_eq!(
        summary.counters.get("fleet.pages_processed").copied(),
        Some(metrics.pages_processed)
    );
    assert_eq!(
        summary.counters.get("fleet.patch_applications").copied(),
        Some(metrics.patch_applications)
    );
    println!(
        "\ntrace/metrics reconciliation: per-phase totals match the FleetMetrics fold exactly"
    );
}

/// Determinism mode (`--digest PATH`): run only the log-producing scenarios,
/// assert the sequential and sharded manager logs byte-identical (the PR 2
/// parity guarantee), and write every record to PATH. CI runs this twice and
/// diffs the two files: any nondeterminism in learning, routing, responder
/// driving, plan merging, or the delta-sync byte accounting shows up as a diff.
fn write_digest(path: &str, opts: &Options) {
    let browser = Browser::build();
    let model = learn_model(
        &browser.image,
        &expanded_learning_suite(),
        MonitorConfig::full(),
    )
    .0;
    let seq_run = multi_failure(
        &browser,
        &model,
        FleetConfig::new(opts.nodes)
            .sequential()
            .with_manager_shards(1)
            .with_transport(opts.transport_kind()),
    );
    let par_run = multi_failure(
        &browser,
        &model,
        FleetConfig::new(opts.nodes)
            .with_workers(opts.workers)
            .with_manager_shards(MANAGER_SHARDS)
            .with_transport(opts.transport_kind()),
    );
    assert_eq!(seq_run.immune, par_run.immune, "manager parity violated");
    assert_eq!(
        seq_run.log, par_run.log,
        "sequential and sharded managers must write byte-identical logs"
    );
    let churn_run = churn(&browser, opts);

    let digest = format!(
        "== multi-failure ({} members, {} exploits, sequential == sharded x{}) ==\n{}\n== churn ({} members) ==\n{}",
        opts.nodes,
        MULTI_FAILURE_TARGETS.len(),
        MANAGER_SHARDS,
        par_run.log,
        opts.nodes,
        churn_run.log,
    );
    std::fs::write(path, &digest).expect("write digest");
    println!(
        "wrote {} ({} lines, {} bytes) — run twice and diff to check determinism",
        path,
        digest.lines().count(),
        digest.len()
    );
}

/// `--chaos SEED`: drive one fleet on the seeded lossy transport — 10% drops,
/// 5% duplicates, delay-window reordering, plus a mid-history partition of a
/// contiguous member range — against exploits at two distinct code locations.
/// The fleet must reach immunity at both, resync every cut member via the
/// delta plane, and survive a fleet-wide verify wave; the transport counters
/// (retransmits, suppressed duplicates, partition recovery) land in
/// `BENCH_fleet.json`, and `--digest PATH` additionally dumps the `BatchLog`
/// for the CI seed-determinism diff.
fn run_chaos(seed: u64, opts: &Options) {
    if opts.trace.is_some() {
        cv_obs::recorder().set_enabled(true);
    }
    let browser = Browser::build();
    let targets: Vec<(u32, u32)> = [
        (269095u32, "vuln_269095_call"),
        (290162u32, "vuln_290162_call"),
    ]
    .into_iter()
    .map(|(bug, sym)| (bug, browser.sym(sym)))
    .collect();
    let all = red_team_exploits(&browser);
    let exploits: Vec<_> = targets
        .iter()
        .map(|(bug, _)| all.iter().find(|e| e.bugzilla == *bug).unwrap().clone())
        .collect();

    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(opts.nodes)
            .with_workers(opts.workers)
            .with_tree_fanout(opts.tree_fanout)
            .with_transport(TransportKind::Chaos(ChaosConfig::standard(seed))),
    );
    fleet.distributed_learning(&learning_suite());

    let nodes = opts.nodes;
    let cut: Vec<usize> = (nodes / 2..nodes / 2 + nodes / 8).collect();
    let benign = evaluation_suite();
    let mut epochs_run = 0u64;
    for round in 0..40u64 {
        let mut batch: Vec<Presentation> = Vec::new();
        for (which, exploit) in exploits.iter().enumerate() {
            for k in 0..4usize {
                batch.push(Presentation::new(
                    (which * (nodes / 2 - 1) + k * (nodes / 16) + 1) % nodes,
                    exploit.page(),
                ));
            }
        }
        for (i, page) in benign.iter().take(4).enumerate() {
            batch.push(Presentation::new((nodes / 4 + i * 7) % nodes, page.clone()));
        }
        if round == 2 {
            fleet.partition_members(&cut);
        }
        if round == 6 {
            fleet.heal_partition();
        }
        fleet.run_epoch(&batch);
        epochs_run = round + 1;
        if round > 6
            && targets
                .iter()
                .all(|(_, loc)| fleet.is_protected_against(*loc))
        {
            break;
        }
    }
    for (bug, loc) in &targets {
        assert!(
            fleet.is_protected_against(*loc),
            "chaos fleet (seed {seed}) never immunized defect {bug}"
        );
    }
    // Settle: benign epochs until every cut/desynced member is resynced.
    for _ in 0..16 {
        if fleet.transport_desynced().is_empty() {
            break;
        }
        fleet.run_epoch(&[Presentation::new(0, benign[0].clone())]);
    }
    assert!(
        fleet.transport_desynced().is_empty(),
        "chaos fleet (seed {seed}) still has desynced members: {:?}",
        fleet.transport_desynced()
    );
    // Fleet-wide immunity: a verify wave across the fleet blocks nobody (a
    // dropped page never runs — it cannot fail).
    let verify: Vec<Presentation> = (0..nodes)
        .flat_map(|node| {
            exploits
                .iter()
                .map(move |exploit| Presentation::new(node, exploit.page()))
        })
        .collect();
    let outcome = fleet.run_epoch(&verify);
    assert_eq!(
        outcome.blocked(),
        0,
        "an immunized member failed under chaos"
    );

    let m = fleet.metrics();
    assert!(m.envelopes_dropped > 0, "seeded chaos produced no drops");
    assert!(m.retransmits > 0, "drops must force retransmits");
    assert!(
        m.duplicates_suppressed > 0,
        "no duplicate was ever suppressed"
    );
    assert!(m.partition_drops > 0, "the partition dropped nothing");
    assert!(m.transport_resyncs > 0, "cut members never resynced");

    print_table(
        &format!(
            "Chaos scenario (seed {seed}, {nodes} members, {} partitioned)",
            cut.len()
        ),
        &["quantity", "value"],
        &[
            vec!["transport".into(), fleet.transport_name().to_string()],
            vec!["epochs to dual immunity".into(), epochs_run.to_string()],
            vec!["envelopes sent".into(), m.envelopes_sent.to_string()],
            vec![
                "envelopes delivered".into(),
                m.envelopes_delivered.to_string(),
            ],
            vec!["envelopes dropped".into(), m.envelopes_dropped.to_string()],
            vec![
                "envelopes duplicated".into(),
                m.envelopes_duplicated.to_string(),
            ],
            vec!["retransmits".into(), m.retransmits.to_string()],
            vec![
                "duplicates suppressed".into(),
                m.duplicates_suppressed.to_string(),
            ],
            vec!["partition drops".into(), m.partition_drops.to_string()],
            vec!["member desyncs".into(), m.transport_desyncs.to_string()],
            vec![
                "member resyncs (delta)".into(),
                format!("{} ({})", m.transport_resyncs, m.transport_delta_resyncs),
            ],
        ],
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"fleet_scale_chaos\",\n  \"seed\": {seed},\n  \"nodes\": {nodes},\n  \"workers\": {},\n  \"cores\": {cores},\n  \"rounds\": 1,\n  \"warmups\": 0,\n  \"partitioned_members\": {},\n  \"epochs_to_immunity\": {epochs_run},\n  \"envelopes_sent\": {},\n  \"envelopes_delivered\": {},\n  \"envelopes_dropped\": {},\n  \"envelopes_duplicated\": {},\n  \"retransmits\": {},\n  \"duplicates_suppressed\": {},\n  \"partition_drops\": {},\n  \"transport_desyncs\": {},\n  \"transport_resyncs\": {},\n  \"transport_delta_resyncs\": {}\n}}\n",
        opts.workers,
        cut.len(),
        m.envelopes_sent,
        m.envelopes_delivered,
        m.envelopes_dropped,
        m.envelopes_duplicated,
        m.retransmits,
        m.duplicates_suppressed,
        m.partition_drops,
        m.transport_desyncs,
        m.transport_resyncs,
        m.transport_delta_resyncs,
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("\nwrote BENCH_fleet.json:\n{json}");

    if let Some(path) = &opts.digest {
        let digest = format!(
            "== chaos (seed {seed}, {nodes} members, {} partitioned) ==\n{}",
            cut.len(),
            log_dump(&fleet),
        );
        std::fs::write(path, &digest).expect("write chaos digest");
        println!(
            "wrote {} ({} lines) — same seed must reproduce it byte-identically",
            path,
            digest.lines().count()
        );
    }

    if let Some(path) = &opts.trace {
        // The partition-recovery timeline, straight from the cv-obs stream:
        // every `transport`-category instant the fleet recorded, in order —
        // partition cut, per-member desyncs while pushes cannot ack, heal,
        // and per-member resyncs (delta=1 when the delta plane was used).
        let events = cv_obs::recorder().drain();
        println!("\npartition-recovery timeline (cv-obs `transport` instants):");
        for event in events.iter().filter(|e| e.cat == "transport") {
            let detail: Vec<String> = event
                .args
                .iter()
                .filter(|(k, _)| *k != "fleet")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            println!(
                "  {:>10.3} ms  {:<18} {}",
                event.ts_nanos as f64 / 1e6,
                event.name,
                detail.join(" ")
            );
        }
        let summary = Summary::build_for_fleet(&events, fleet.obs_id());
        std::fs::write(path, chrome_trace_json(&events)).expect("write chrome trace");
        let summary_path = match path.strip_suffix(".json") {
            Some(stem) => format!("{stem}.summary.json"),
            None => format!("{path}.summary.json"),
        };
        std::fs::write(&summary_path, summary.to_json()).expect("write trace summary");
        println!("\nchaos-fleet summary:\n{summary}");
        println!("wrote {path} and {summary_path}");
    }
}

fn main() {
    let opts = parse_options();
    if let Some(seed) = opts.chaos {
        run_chaos(seed, &opts);
        return;
    }
    if let Some(path) = opts.digest.clone() {
        // Determinism mode stays untraced: the digest is the byte-identical
        // BatchLog dump, and the recorder has nothing to add to it.
        write_digest(&path, &opts);
        return;
    }
    if let Some(points) = opts.sweep.clone() {
        run_sweep(&points, &opts);
        return;
    }
    if opts.trace.is_some() {
        cv_obs::recorder().set_enabled(true);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let worker_label = if opts.workers == 0 {
        format!("{cores} workers (auto)")
    } else {
        format!("{} workers", opts.workers)
    };
    println!(
        "fleet_scale: {} members, {} epochs x {} pages/epoch, {cores} cores, {worker_label}",
        opts.nodes,
        opts.epochs,
        opts.nodes * 4
    );

    // Multi-round measurement: with --rounds N > 1 each scheduler gets one
    // untimed warmup round, then N timed rounds. The headline numbers are
    // medians (robust to a single noisy round); the raw samples and the
    // span-style execution histograms feed the "spread" section of the record.
    let warmups: usize = if opts.rounds > 1 { 1 } else { 0 };
    for _ in 0..warmups {
        throughput(false, 1, &opts);
        throughput(true, opts.workers, &opts);
    }
    let mut seq_rates = Vec::with_capacity(opts.rounds);
    let mut par_rates = Vec::with_capacity(opts.rounds);
    let mut seq_hist = FixedHistogram::new();
    let mut par_hist = FixedHistogram::new();
    let mut seq_pages = 0u64;
    for _ in 0..opts.rounds {
        let (pages, secs, rate) = throughput(false, 1, &opts);
        let (par_pages, par_secs, par_rate) = throughput(true, opts.workers, &opts);
        assert_eq!(pages, par_pages);
        seq_pages = pages;
        seq_rates.push(rate);
        par_rates.push(par_rate);
        seq_hist.record(std::time::Duration::from_secs_f64(secs));
        par_hist.record(std::time::Duration::from_secs_f64(par_secs));
    }
    let seq_stats = MetricStats::from_samples(&seq_rates);
    let par_stats = MetricStats::from_samples(&par_rates);
    let (seq_rate, par_rate) = (seq_stats.median, par_stats.median);
    let seq_secs = seq_hist.total().as_secs_f64() / opts.rounds as f64;
    let par_secs = par_hist.total().as_secs_f64() / opts.rounds as f64;
    let scheduling_speedup = par_rate / seq_rate;

    print_table(
        "Epoch scheduling throughput",
        &["scheduler", "pages", "exec seconds", "pages/sec", "speedup"],
        &[
            vec![
                "sequential (1 worker)".into(),
                seq_pages.to_string(),
                format!("{seq_secs:.3}"),
                format!("{seq_rate:.0}"),
                "1.00x".into(),
            ],
            vec![
                format!("parallel ({worker_label})"),
                seq_pages.to_string(),
                format!("{par_secs:.3}"),
                format!("{par_rate:.0}"),
                format!("{scheduling_speedup:.2}x"),
            ],
        ],
    );

    let ups = uploads();
    let invariants: usize = ups.iter().map(|u| u.len()).sum();
    let mono = merge_time(1, false, &ups);
    let sharded_seq = merge_time(8, false, &ups);
    let sharded_par = merge_time(8, true, &ups);
    print_table(
        &format!(
            "Invariant-store merge ({MERGE_MEMBERS} uploads, {invariants} invariants, {MERGE_ROUNDS} rounds)"
        ),
        &["store", "seconds", "speedup vs monolithic"],
        &[
            vec!["monolithic".into(), format!("{mono:.3}"), "1.00x".into()],
            vec![
                "8 shards, 1 thread".into(),
                format!("{sharded_seq:.3}"),
                format!("{:.2}x", mono / sharded_seq),
            ],
            vec![
                "8 shards, parallel".into(),
                format!("{sharded_par:.3}"),
                format!("{:.2}x", mono / sharded_par),
            ],
        ],
    );

    // The multi-failure manager benchmark: all eight exploitable defects attacked at
    // distinct addresses in every epoch, across the whole community.
    let browser = Browser::build();
    let model = learn_model(
        &browser.image,
        &expanded_learning_suite(),
        MonitorConfig::full(),
    )
    .0;
    let seq_run = multi_failure(
        &browser,
        &model,
        FleetConfig::new(opts.nodes)
            .sequential()
            .with_manager_shards(1)
            .with_transport(opts.transport_kind()),
    );
    let par_run = multi_failure(
        &browser,
        &model,
        FleetConfig::new(opts.nodes)
            .with_workers(opts.workers)
            .with_manager_shards(MANAGER_SHARDS)
            .with_transport(opts.transport_kind()),
    );
    // Keep the benchmark honest before anything is reported or written: the
    // sharded manager must reach the same immunity as the sequential one.
    assert_eq!(seq_run.immune, par_run.immune, "manager parity violated");
    print_table(
        &format!(
            "Sharded manager plane ({} exploits at distinct addresses, {} members, {MULTI_FAILURE_EPOCHS} epochs)",
            MULTI_FAILURE_TARGETS.len(),
            opts.nodes
        ),
        &[
            "manager",
            "shards",
            "manager ms/epoch",
            "manager-parallel speedup",
            "immune locations",
        ],
        &[
            vec![
                "sequential (seed shape)".into(),
                "1".into(),
                format!("{:.3}", seq_run.manager_ms_per_epoch),
                speedup_cell(seq_run.manager_parallel_speedup),
                format!("{}/{}", seq_run.immune, MULTI_FAILURE_TARGETS.len()),
            ],
            vec![
                format!("sharded ({worker_label})"),
                MANAGER_SHARDS.to_string(),
                format!("{:.3}", par_run.manager_ms_per_epoch),
                speedup_cell(par_run.manager_parallel_speedup),
                format!("{}/{}", par_run.immune, MULTI_FAILURE_TARGETS.len()),
            ],
        ],
    );
    for (bug, epochs) in &par_run.immunity_epochs {
        println!("  defect {bug}: community-immune after {epochs} epoch(s)");
    }
    let manager_wall_ratio = if par_run.manager_ms_per_epoch > 0.0 {
        seq_run.manager_ms_per_epoch / par_run.manager_ms_per_epoch
    } else {
        1.0
    };
    println!(
        "manager wall-clock vs sequential: {manager_wall_ratio:.2}x \
         (expect ~1x on a single core; the manager-parallel speedup column is \
         busy-time / fan-out wall time and is '-' when no parallel fan-out ran)"
    );

    if scheduling_speedup > 1.0 {
        println!(
            "\nparallel epoch scheduling speedup: {scheduling_speedup:.2}x (> 1 on this machine)"
        );
    } else {
        println!("\nWARNING: no scheduling speedup measured (single-core machine?)");
    }

    let churn_run = if opts.churn {
        // Everything recorded so far — the throughput fleets, the merge rounds,
        // the two multi-failure fleets — belongs in the Chrome trace but not in
        // the per-fleet summary: drain it now so the stream that remains is
        // exactly the churn run's.
        let pre_churn_events = if opts.trace.is_some() {
            cv_obs::recorder().drain()
        } else {
            Vec::new()
        };
        let run = churn(&browser, &opts);
        print_table(
            &format!(
                "Churn scenario ({} members, 20% killed mid-epoch, exploit 290162)",
                opts.nodes
            ),
            &["quantity", "value"],
            &[
                vec!["killed mid-epoch".into(), run.killed.to_string()],
                vec![
                    "rejoined via delta sync".into(),
                    run.rejoined_delta.to_string(),
                ],
                vec![
                    "rejoined via full bootstrap".into(),
                    run.rejoined_full.to_string(),
                ],
                vec![
                    "late joins (warm / cold)".into(),
                    format!("{} / {}", run.late_warm, run.late_cold),
                ],
                vec!["snapshot bytes".into(), run.snapshot_bytes.to_string()],
                vec![
                    "delta bytes vs full".into(),
                    format!(
                        "{} vs {} ({:.1}x saved)",
                        run.delta_bytes, run.delta_full_bytes, run.delta_savings
                    ),
                ],
                vec![
                    "joiner time-to-immunity".into(),
                    format!("<= {} epoch(s)", run.joiner_tti_max),
                ],
                vec![
                    "immune members after verify".into(),
                    format!("{}/{}", run.immune_members, run.total_members),
                ],
            ],
        );
        assert_eq!(
            run.immune_members, run.total_members,
            "churned fleet failed fleet-wide immunity"
        );
        if let Some(path) = &opts.trace {
            write_trace(path, pre_churn_events, &run);
        }
        Some(run)
    } else {
        None
    };

    if opts.json {
        let immunity_entries: Vec<String> = par_run
            .immunity_epochs
            .iter()
            .map(|(bug, epochs)| format!("\"{bug}\": {epochs}"))
            .collect();
        let max_immunity = par_run
            .immunity_epochs
            .iter()
            .map(|(_, e)| *e)
            .max()
            .unwrap_or(0);
        let churn_json = match &churn_run {
            Some(run) => format!(
                ",\n  \"snapshot_bytes\": {},\n  \"churn_killed\": {},\n  \"churn_rejoined_delta\": {},\n  \"churn_rejoined_full\": {},\n  \"churn_late_warm\": {},\n  \"churn_late_cold\": {},\n  \"delta_bytes_total\": {},\n  \"delta_full_bytes_total\": {},\n  \"delta_savings\": {:.2},\n  \"joiner_time_to_immunity_epochs_max\": {},\n  \"churn_immune_members\": {},\n  \"churn_total_members\": {}",
                run.snapshot_bytes,
                run.killed,
                run.rejoined_delta,
                run.rejoined_full,
                run.late_warm,
                run.late_cold,
                run.delta_bytes,
                run.delta_full_bytes,
                run.delta_savings,
                run.joiner_tti_max,
                run.immune_members,
                run.total_members,
            ),
            None => String::new(),
        };
        // The full churn-fleet aggregate, delta-cut and churn counters included,
        // as one nested object — the gated throughput keys above stay flat and
        // untouched.
        let metrics_json = match &churn_run {
            Some(run) => format!(",\n  \"metrics\": {}", run.metrics.to_json("  ")),
            None => String::new(),
        };
        let speedup_json = match par_run.manager_parallel_speedup {
            Some(s) => format!("{s:.3}"),
            None => "null".to_string(),
        };
        // Per-metric multi-round statistics in the canonical cv-perf shape:
        // rate spreads carry their raw samples, execution-time spreads come
        // from the log2-µs histograms (bounded memory at any round count).
        let spread_json = format!(
            ",\n  \"spread\": {{\n    \"pages_per_second_sequential\": {},\n    \"pages_per_second_parallel\": {},\n    \"execution_ms_sequential\": {},\n    \"execution_ms_parallel\": {}\n  }}",
            seq_stats.to_json(),
            par_stats.to_json(),
            MetricStats::from_histogram(&seq_hist).to_json(),
            MetricStats::from_histogram(&par_hist).to_json(),
        );
        let json = format!(
            "{{\n  \"bench\": \"fleet_scale\",\n  \"nodes\": {},\n  \"workers\": {},\n  \"cores\": {cores},\n  \"epochs\": {},\n  \"rounds\": {},\n  \"warmups\": {warmups},\n  \"pages_per_second_sequential\": {seq_rate:.1},\n  \"pages_per_second_parallel\": {par_rate:.1},\n  \"scheduling_speedup\": {scheduling_speedup:.3},\n  \"merge_monolithic_seconds\": {mono:.4},\n  \"merge_sharded_parallel_seconds\": {sharded_par:.4},\n  \"manager_ms_per_epoch_sequential\": {:.4},\n  \"manager_ms_per_epoch_sharded\": {:.4},\n  \"manager_parallel_speedup\": {speedup_json},\n  \"manager_shards\": {MANAGER_SHARDS},\n  \"multi_failure_locations\": {},\n  \"immune_locations\": {},\n  \"time_to_immunity_epochs_max\": {max_immunity},\n  \"time_to_immunity_epochs\": {{ {} }}{churn_json}{metrics_json}{spread_json}\n}}\n",
            opts.nodes,
            opts.workers,
            opts.epochs,
            opts.rounds,
            seq_run.manager_ms_per_epoch,
            par_run.manager_ms_per_epoch,
            MULTI_FAILURE_TARGETS.len(),
            par_run.immune,
            immunity_entries.join(", "),
        );
        std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
        println!("\nwrote BENCH_fleet.json:\n{json}");
    }
}
