//! Regenerates the learning-overhead result of Section 4.4.1: loading the learning
//! pages with the Daikon front end attached is orders of magnitude slower than loading
//! them without learning (the paper reports 5.2 s vs 1600 s, a factor of ≈300).

use cv_apps::{learning_suite, Browser};
use cv_bench::print_table;
use cv_core::learn_model;
use cv_runtime::{CostModel, EnvConfig, ManagedExecutionEnvironment, MonitorConfig};
use std::time::Instant;

fn main() {
    let browser = Browser::build();
    let pages = learning_suite();
    let cost = CostModel::default();

    // Without learning.
    let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
    let wall_start = Instant::now();
    for page in &pages {
        env.run(page);
    }
    let untraced_wall = wall_start.elapsed().as_secs_f64();
    let untraced = env.cumulative_stats();

    // With learning (full tracing + inference).
    let wall_start = Instant::now();
    let (model, traced) = learn_model(&browser.image, &pages, MonitorConfig::full());
    let traced_wall = wall_start.elapsed().as_secs_f64();

    let sim_ratio = cost.cost(&traced) / cost.cost(&untraced);
    let wall_ratio = traced_wall / untraced_wall;
    let rows = vec![
        vec![
            "Without learning".to_string(),
            format!("{:.0}", cost.cost(&untraced)),
            format!("{untraced_wall:.4}"),
            "1.0".to_string(),
            "1.0 (5.2 s)".to_string(),
        ],
        vec![
            "With learning (Daikon front end)".to_string(),
            format!("{:.0}", cost.cost(&traced)),
            format!("{traced_wall:.4}"),
            format!("{sim_ratio:.0}x / {wall_ratio:.0}x (sim/wall)"),
            "~300x (1600 s)".to_string(),
        ],
    ];
    print_table(
        &format!(
            "Learning overhead over {} learning pages ({} invariants learned)",
            pages.len(),
            model.invariants.len()
        ),
        &[
            "Configuration",
            "Simulated cost",
            "Wall clock (s)",
            "Slowdown (measured)",
            "Slowdown (paper)",
        ],
        &rows,
    );
    println!(
        "\nLearning statistics: {} trace events, {} variables, {} invariants \
         ({} one-of, {} lower-bound, {} less-than, {} sp-offset), {} duplicates removed, {} pointers.",
        model.invariants.stats.events_processed,
        model.invariants.stats.variables_observed,
        model.invariants.len(),
        model.invariants.stats.one_of,
        model.invariants.stats.lower_bound,
        model.invariants.stats.less_than,
        model.invariants.stats.sp_offset,
        model.invariants.stats.duplicates_removed,
        model.invariants.stats.pointers_classified,
    );
}
