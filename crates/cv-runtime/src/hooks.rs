//! Instrumentation hooks: the plugin interface of the managed execution environment.
//!
//! The Determina environment "allows plugins to validate and (if desired) transform new
//! code blocks before they enter the cache for execution" and to eject previously
//! inserted blocks, which is how ClearView applies and removes patches from running
//! applications (Section 2.1). In this reproduction a patch is a [`Hook`] attached to an
//! instruction address: it runs immediately before the instruction executes, may read
//! and write machine state, may emit invariant-check [`Observation`]s, and may redirect
//! control (skip the instruction or return from the enclosing procedure) — the three
//! repair actions of Section 2.5.

use crate::machine::Machine;
use cv_isa::{Addr, Inst};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies a registered hook (and therefore an applied patch).
pub type HookId = u64;

/// What the hook asks the environment to do after it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookAction {
    /// Execute the instruction normally (possibly after the hook mutated state).
    Continue,
    /// Do not execute the instruction; continue at the next instruction. Implements the
    /// "skip the call" repair for one-of invariants on function pointers.
    SkipInstruction,
    /// Return immediately from the enclosing procedure: adjust the stack pointer by
    /// `sp_adjust` (derived from a learned stack-pointer-offset invariant) so that it
    /// points at the saved return address, then perform a normal `ret`.
    ReturnFromProcedure {
        /// Words to add to the stack pointer before popping the return address.
        sp_adjust: i32,
    },
}

/// Whether a checked invariant held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObservationKind {
    /// The invariant was satisfied at this execution of the check.
    Satisfied,
    /// The invariant was violated.
    Violated,
}

/// One observation produced by an invariant-checking patch (Section 2.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// The hook (patch) that produced the observation.
    pub hook: HookId,
    /// The instruction address the patch is attached to.
    pub addr: Addr,
    /// Satisfied or violated.
    pub kind: ObservationKind,
}

/// The state a hook can inspect and mutate when it runs.
pub struct HookContext<'a> {
    /// The guest machine (registers, memory, heap, I/O).
    pub machine: &'a mut Machine,
    /// The instruction about to execute.
    pub inst: Inst,
    /// The instruction's address.
    pub addr: Addr,
    /// The id of the hook currently running.
    pub hook_id: HookId,
    observations: &'a mut Vec<Observation>,
}

impl<'a> HookContext<'a> {
    pub(crate) fn new(
        machine: &'a mut Machine,
        inst: Inst,
        addr: Addr,
        hook_id: HookId,
        observations: &'a mut Vec<Observation>,
    ) -> Self {
        HookContext {
            machine,
            inst,
            addr,
            hook_id,
            observations,
        }
    }

    /// Record an invariant-check observation for this run.
    pub fn observe(&mut self, kind: ObservationKind) {
        self.observations.push(Observation {
            hook: self.hook_id,
            addr: self.addr,
            kind,
        });
    }
}

/// A hook attached to an instruction address.
pub trait Hook: Send {
    /// Runs immediately before the instruction at the hook's address executes.
    fn on_execute(&mut self, ctx: &mut HookContext<'_>) -> HookAction;

    /// Human-readable description used in logs and repair reports.
    fn describe(&self) -> String {
        "hook".to_string()
    }
}

/// A registered hook together with its id.
pub(crate) type HookEntry = (HookId, Box<dyn Hook>);

/// The per-environment registry of hooks, keyed by instruction address.
#[derive(Default)]
pub struct HookRegistry {
    pub(crate) by_addr: HashMap<Addr, Vec<HookEntry>>,
    addr_of: HashMap<HookId, Addr>,
    next_id: HookId,
}

impl HookRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a hook at `addr`; returns its id.
    pub fn add(&mut self, addr: Addr, hook: Box<dyn Hook>) -> HookId {
        let id = self.next_id;
        self.next_id += 1;
        self.by_addr.entry(addr).or_default().push((id, hook));
        self.addr_of.insert(id, addr);
        id
    }

    /// Remove a hook by id. Returns the address it was attached to, if it existed.
    pub fn remove(&mut self, id: HookId) -> Option<Addr> {
        let addr = self.addr_of.remove(&id)?;
        if let Some(list) = self.by_addr.get_mut(&addr) {
            list.retain(|(hid, _)| *hid != id);
            if list.is_empty() {
                self.by_addr.remove(&addr);
            }
        }
        Some(addr)
    }

    /// The address a hook is attached to.
    pub fn addr_of(&self, id: HookId) -> Option<Addr> {
        self.addr_of.get(&id).copied()
    }

    /// Total number of registered hooks.
    pub fn len(&self) -> usize {
        self.addr_of.len()
    }

    /// True when no hooks are registered.
    pub fn is_empty(&self) -> bool {
        self.addr_of.is_empty()
    }

    /// True if any hook is registered at `addr`.
    pub fn has_hooks_at(&self, addr: Addr) -> bool {
        self.by_addr.contains_key(&addr)
    }

    /// All addresses that currently have hooks.
    pub fn hooked_addrs(&self) -> Vec<Addr> {
        self.by_addr.keys().copied().collect()
    }

    /// Remove every hook.
    pub fn clear(&mut self) {
        self.by_addr.clear();
        self.addr_of.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NopHook;
    impl Hook for NopHook {
        fn on_execute(&mut self, _ctx: &mut HookContext<'_>) -> HookAction {
            HookAction::Continue
        }
    }

    #[test]
    fn add_and_remove_hooks() {
        let mut reg = HookRegistry::new();
        assert!(reg.is_empty());
        let a = reg.add(0x1000, Box::new(NopHook));
        let b = reg.add(0x1000, Box::new(NopHook));
        let c = reg.add(0x2000, Box::new(NopHook));
        assert_eq!(reg.len(), 3);
        assert!(reg.has_hooks_at(0x1000));
        assert_eq!(reg.addr_of(b), Some(0x1000));
        assert_eq!(reg.remove(a), Some(0x1000));
        assert!(reg.has_hooks_at(0x1000), "second hook still present");
        assert_eq!(reg.remove(b), Some(0x1000));
        assert!(!reg.has_hooks_at(0x1000));
        assert_eq!(reg.remove(b), None, "double remove is a no-op");
        assert_eq!(reg.len(), 1);
        let mut addrs = reg.hooked_addrs();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0x2000]);
        assert_eq!(reg.remove(c), Some(0x2000));
        assert!(reg.is_empty());
    }

    #[test]
    fn clear_removes_everything() {
        let mut reg = HookRegistry::new();
        reg.add(1, Box::new(NopHook));
        reg.add(2, Box::new(NopHook));
        reg.clear();
        assert!(reg.is_empty());
        assert!(!reg.has_hooks_at(1));
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut reg = HookRegistry::new();
        let a = reg.add(1, Box::new(NopHook));
        let b = reg.add(1, Box::new(NopHook));
        assert!(b > a);
    }
}
