//! Sharded-merge correctness against real learned uploads: merging N member uploads
//! shard-by-shard in parallel must yield a database identical to the seed's
//! sequential `InvariantDatabase::merge` (the satellite acceptance test for the
//! sharded store).

use cv_apps::{learning_suite, Browser};
use cv_fleet::ShardedInvariantStore;
use cv_inference::{InvariantDatabase, LearningFrontend};
use cv_runtime::{EnvConfig, ManagedExecutionEnvironment};

/// Produce per-member uploads exactly as amortized parallel learning does: page `i`
/// is traced by member `i % members`, erroneous runs are discarded.
fn member_uploads(members: usize) -> Vec<InvariantDatabase> {
    let browser = Browser::build();
    let pages = learning_suite();
    let mut uploads = Vec::new();
    for member in 0..members {
        let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
        let mut frontend = LearningFrontend::new(browser.image.clone());
        for page in pages.iter().skip(member).step_by(members) {
            let result = env.run_with_tracer(page, &mut frontend);
            if result.is_completed() {
                frontend.commit_run();
            } else {
                frontend.discard_run();
            }
        }
        uploads.push(frontend.into_model().invariants);
    }
    uploads
}

#[test]
fn parallel_shard_merge_matches_sequential_merge_of_learned_uploads() {
    let uploads = member_uploads(5);
    assert!(
        uploads.iter().map(|u| u.len()).sum::<usize>() > 50,
        "learning produced a meaningful upload set"
    );

    // The seed's sequential path: one monolithic merge per upload, in member order.
    let mut sequential = InvariantDatabase::new();
    for upload in &uploads {
        sequential.merge(upload);
    }

    for shard_count in [1, 3, 8, 32] {
        let mut store = ShardedInvariantStore::new(shard_count);
        store.merge_uploads(&uploads);
        assert_eq!(
            store.snapshot(),
            sequential,
            "shard_count={shard_count} diverged from the sequential merge"
        );
    }
}

#[test]
fn sharded_snapshot_supports_the_same_lookups() {
    let uploads = member_uploads(3);
    let mut sequential = InvariantDatabase::new();
    for upload in &uploads {
        sequential.merge(upload);
    }
    let mut store = ShardedInvariantStore::new(8);
    store.merge_uploads(&uploads);
    let snapshot = store.snapshot();
    for addr in sequential.addrs() {
        assert_eq!(snapshot.invariants_at(addr), sequential.invariants_at(addr));
    }
    assert_eq!(snapshot.stats, sequential.stats);
}
