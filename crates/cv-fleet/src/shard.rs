//! The sharded invariant store.
//!
//! The central manager's `InvariantDatabase` is the write-hot structure of a learning
//! round: every member uploads its locally inferred invariants and all uploads must be
//! merged (Section 3.1 of the paper). A monolithic database serializes those merges.
//! [`ShardedInvariantStore`] partitions the database by check-address shard
//! ([`InvariantDatabase::shard_of`]): each shard owns a disjoint set of check
//! addresses, so N shard workers can merge the *same* sequence of uploads in parallel
//! — each restricted to its own addresses — without locks, and the fused result is
//! bit-identical to the sequential merge (`tests/shard_parity.rs` proves this against
//! the seed's `InvariantDatabase::merge`).

use cv_inference::InvariantDatabase;

/// A community invariant database partitioned by check-address shard.
#[derive(Debug, Clone)]
pub struct ShardedInvariantStore {
    shards: Vec<InvariantDatabase>,
}

impl ShardedInvariantStore {
    /// An empty store with `shard_count` shards (at least 1).
    pub fn new(shard_count: usize) -> Self {
        ShardedInvariantStore {
            shards: vec![InvariantDatabase::new(); shard_count.max(1)],
        }
    }

    /// Partition an existing database into a store.
    pub fn from_database(db: InvariantDatabase, shard_count: usize) -> Self {
        ShardedInvariantStore {
            shards: db.split(shard_count.max(1)),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of invariants across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no invariants are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// The individual shards (each holds only addresses it owns).
    pub fn shards(&self) -> &[InvariantDatabase] {
        &self.shards
    }

    /// Merge member uploads into the store, one worker thread per shard.
    ///
    /// Every shard scans every upload but merges only the invariants whose check
    /// address it owns; each upload's run counters are absorbed exactly once. Upload
    /// order is preserved per address, so the result equals merging the uploads
    /// sequentially into a monolithic database.
    pub fn merge_uploads(&mut self, uploads: &[InvariantDatabase]) {
        self.merge_uploads_inner(uploads, true);
    }

    /// Single-threaded variant of [`ShardedInvariantStore::merge_uploads`] (the
    /// sequential baseline of the `fleet_scale` benchmark). Same merge semantics —
    /// both paths share one per-shard implementation.
    pub fn merge_uploads_sequential(&mut self, uploads: &[InvariantDatabase]) {
        self.merge_uploads_inner(uploads, false);
    }

    fn merge_uploads_inner(&mut self, uploads: &[InvariantDatabase], parallel: bool) {
        if uploads.is_empty() {
            return;
        }
        let shard_count = self.shards.len();
        if parallel && shard_count > 1 {
            std::thread::scope(|scope| {
                for (index, shard) in self.shards.iter_mut().enumerate() {
                    scope.spawn(move || merge_one_shard(shard, index, shard_count, uploads));
                }
            });
        } else {
            for (index, shard) in self.shards.iter_mut().enumerate() {
                merge_one_shard(shard, index, shard_count, uploads);
            }
        }
        for upload in uploads {
            self.shards[0].absorb_run_stats(&upload.stats);
        }
    }

    /// Fuse the shards into one monolithic database (the central manager's merged
    /// community model). Equal to the result of sequentially merging every upload the
    /// store has seen.
    pub fn snapshot(&self) -> InvariantDatabase {
        InvariantDatabase::fuse(self.shards.iter().cloned())
    }
}

/// Merge every upload's invariants owned by shard `index` (the shared per-shard
/// implementation of both merge paths).
fn merge_one_shard(
    shard: &mut InvariantDatabase,
    index: usize,
    shard_count: usize,
    uploads: &[InvariantDatabase],
) {
    for upload in uploads {
        shard.merge_filtered(upload, |addr| {
            InvariantDatabase::shard_of(addr, shard_count) == index
        });
    }
    shard.recount();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_inference::{Invariant, Variable};
    use cv_isa::{Operand, Reg};

    fn upload(member: u32) -> InvariantDatabase {
        let mut db = InvariantDatabase::new();
        for k in 0u32..60 {
            let addr = 0x1000 + (k * 4) % 128;
            let var = Variable::read(addr, 0, Operand::Reg(Reg::Ecx));
            db.insert(Invariant::OneOf {
                var,
                values: [member + k, k % 4].into_iter().collect(),
            });
            db.insert(Invariant::LowerBound {
                var,
                min: (member as i32) - (k as i32),
            });
        }
        db.stats.events_processed = 1000 + member as u64;
        db.stats.runs_committed = 10 + member as u64;
        db.recount();
        db
    }

    #[test]
    fn parallel_merge_equals_sequential_monolithic_merge() {
        let uploads: Vec<_> = (0..8).map(upload).collect();

        let mut reference = InvariantDatabase::new();
        for up in &uploads {
            reference.merge(up);
        }

        for shard_count in [1, 2, 5, 16] {
            let mut store = ShardedInvariantStore::new(shard_count);
            store.merge_uploads(&uploads);
            assert_eq!(
                store.snapshot(),
                reference,
                "shard_count={shard_count} diverged from the sequential merge"
            );
            assert_eq!(store.len(), reference.len());
        }
    }

    #[test]
    fn incremental_upload_batches_accumulate() {
        let uploads: Vec<_> = (0..6).map(upload).collect();
        let mut reference = InvariantDatabase::new();
        for up in &uploads {
            reference.merge(up);
        }

        let mut store = ShardedInvariantStore::new(4);
        store.merge_uploads(&uploads[..2]);
        store.merge_uploads(&uploads[2..]);
        assert_eq!(store.snapshot(), reference);
    }

    #[test]
    fn from_database_round_trips() {
        let mut db = InvariantDatabase::new();
        for up in (0..3).map(upload) {
            db.merge(&up);
        }
        let store = ShardedInvariantStore::from_database(db.clone(), 8);
        assert_eq!(store.shard_count(), 8);
        assert_eq!(store.snapshot(), db);
    }
}
