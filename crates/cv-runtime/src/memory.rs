//! The guest's flat, word-granular memory — with an optional copy-on-write backing
//! so thousands of short-lived machines can share one pristine loaded image.

use crate::error::CrashKind;
use cv_isa::{Addr, BinaryImage, MemoryLayout, Segment, Word};
use std::sync::Arc;

/// Copy-on-write page size in words (2 KiB pages at 4 bytes/word).
const PAGE_SHIFT: usize = 9;
/// Words per CoW page.
pub const PAGE_WORDS: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: usize = PAGE_WORDS - 1;

/// The storage behind a [`Memory`]: either a private flat array (the classic shape) or
/// a shared pristine base overlaid with privately-owned dirty pages.
#[derive(Debug, Clone)]
enum Backing {
    /// One privately owned flat array (zeroed or image-loaded).
    Flat(Vec<Word>),
    /// A shared read-only base (the pristine loaded image) plus copy-on-write pages
    /// keyed by page id. Reads fall through to the base; the first write to a page
    /// copies it. A run that dirties a few stack/heap/data pages costs kilobytes
    /// instead of a full address-space copy.
    Cow {
        base: Arc<[Word]>,
        pages: Vec<Option<Box<[Word]>>>,
    },
}

/// The guest memory: a flat array of 32-bit words, partitioned by [`MemoryLayout`].
///
/// All accesses are bounds- and segment-checked; violations are reported as
/// [`CrashKind`] values so the environment can turn them into guest crashes rather than
/// host panics.
#[derive(Debug, Clone)]
pub struct Memory {
    layout: MemoryLayout,
    backing: Backing,
    /// When true, writes into the code segment crash (the normal W^X configuration).
    protect_code: bool,
}

impl Memory {
    /// Create a zeroed memory for `layout`.
    pub fn new(layout: MemoryLayout) -> Memory {
        Memory {
            layout,
            backing: Backing::Flat(vec![0; layout.total_words()]),
            protect_code: true,
        }
    }

    /// Create a memory with the image's code and data loaded at their segment bases.
    pub fn load(image: &BinaryImage) -> Memory {
        let mut words = vec![0; image.layout.total_words()];
        let cb = image.layout.code_base as usize;
        words[cb..cb + image.code.len()].copy_from_slice(&image.code);
        let db = image.layout.data_base as usize;
        words[db..db + image.data.len()].copy_from_slice(&image.data);
        Memory {
            layout: image.layout,
            backing: Backing::Flat(words),
            protect_code: true,
        }
    }

    /// Create a copy-on-write memory over a shared pristine base (the words of
    /// [`Memory::load`] for the same image, frozen behind an `Arc`).
    ///
    /// Reads are served from `base` until a page is written; observable behaviour is
    /// identical to [`Memory::load`], without the per-machine address-space copy.
    ///
    /// # Panics
    ///
    /// Panics if `base` does not cover exactly `layout.total_words()` words.
    pub fn cow(layout: MemoryLayout, base: Arc<[Word]>) -> Memory {
        assert_eq!(
            base.len(),
            layout.total_words(),
            "CoW base must cover the whole layout"
        );
        let page_count = base.len().div_ceil(PAGE_WORDS);
        Memory {
            layout,
            backing: Backing::Cow {
                base,
                pages: vec![None; page_count],
            },
            protect_code: true,
        }
    }

    /// The layout this memory was created with.
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// Total words (base + overlay) privately owned by this memory — the resident cost
    /// of the backing beyond any shared base. A flat memory owns everything; a CoW
    /// memory owns only its dirty pages.
    pub fn owned_words(&self) -> usize {
        match &self.backing {
            Backing::Flat(words) => words.len(),
            Backing::Cow { pages, .. } => pages
                .iter()
                .map(|p| p.as_ref().map_or(0, |p| p.len()))
                .sum(),
        }
    }

    #[inline]
    fn word(&self, idx: usize) -> Word {
        match &self.backing {
            Backing::Flat(words) => words[idx],
            Backing::Cow { base, pages } => match pages[idx >> PAGE_SHIFT].as_deref() {
                Some(page) => page[idx & PAGE_MASK],
                None => base[idx],
            },
        }
    }

    #[inline]
    fn word_mut(&mut self, idx: usize) -> &mut Word {
        match &mut self.backing {
            Backing::Flat(words) => &mut words[idx],
            Backing::Cow { base, pages } => {
                let pid = idx >> PAGE_SHIFT;
                let slot = &mut pages[pid];
                if slot.is_none() {
                    let start = pid << PAGE_SHIFT;
                    let end = (start + PAGE_WORDS).min(base.len());
                    *slot = Some(base[start..end].to_vec().into_boxed_slice());
                }
                &mut slot.as_mut().expect("page materialized")[idx & PAGE_MASK]
            }
        }
    }

    /// Read the word at `addr`.
    pub fn read(&self, addr: Addr) -> Result<Word, CrashKind> {
        if !self.layout.is_mapped(addr) {
            return Err(CrashKind::UnmappedAccess { addr });
        }
        Ok(self.word(addr as usize))
    }

    /// Write the word at `addr`.
    ///
    /// Writes to the code segment crash (the image is mapped read-only/execute, as in a
    /// normal Win32 process).
    pub fn write(&mut self, addr: Addr, value: Word) -> Result<(), CrashKind> {
        match self.layout.segment_of(addr) {
            Segment::Unmapped => Err(CrashKind::UnmappedAccess { addr }),
            Segment::Code if self.protect_code => Err(CrashKind::CodeWrite { addr }),
            _ => {
                *self.word_mut(addr as usize) = value;
                Ok(())
            }
        }
    }

    /// Read without segment checks (used by diagnostics and the heap allocator, which
    /// operates entirely inside the heap segment).
    pub(crate) fn read_raw(&self, addr: Addr) -> Word {
        self.word(addr as usize)
    }

    /// Write without segment checks (heap allocator book-keeping).
    pub(crate) fn write_raw(&mut self, addr: Addr, value: Word) {
        *self.word_mut(addr as usize) = value;
    }

    /// Copy `src.len()` words into guest memory starting at `dst`, bypassing protection
    /// (used by the environment to stage input data in the data segment).
    pub fn write_slice_raw(&mut self, dst: Addr, src: &[Word]) -> Result<(), CrashKind> {
        let end = dst as usize + src.len();
        if end > self.len() {
            return Err(CrashKind::UnmappedAccess { addr: end as Addr });
        }
        for (i, &w) in src.iter().enumerate() {
            *self.word_mut(dst as usize + i) = w;
        }
        Ok(())
    }

    /// Snapshot `len` words starting at `addr` (diagnostics and tests).
    pub fn read_slice(&self, addr: Addr, len: usize) -> Result<Vec<Word>, CrashKind> {
        let end = addr as usize + len;
        if end > self.len() {
            return Err(CrashKind::UnmappedAccess { addr: end as Addr });
        }
        Ok((addr as usize..end).map(|i| self.word(i)).collect())
    }

    /// Total mapped words.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Flat(words) => words.len(),
            Backing::Cow { base, .. } => base.len(),
        }
    }

    /// Never empty for a valid layout, but provided for completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::ProgramBuilder;

    fn tiny_image() -> BinaryImage {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.halt();
        b.set_entry(main);
        b.data_words(&[7, 8, 9]);
        b.build().unwrap()
    }

    #[test]
    fn load_places_code_and_data() {
        let image = tiny_image();
        let mem = Memory::load(&image);
        assert_eq!(mem.read(image.layout.code_base).unwrap(), image.code[0]);
        assert_eq!(mem.read(image.layout.data_base).unwrap(), 7);
        assert_eq!(mem.read(image.layout.data_base + 2).unwrap(), 9);
    }

    #[test]
    fn unmapped_read_is_a_crash() {
        let mem = Memory::new(MemoryLayout::default());
        assert!(matches!(mem.read(0), Err(CrashKind::UnmappedAccess { .. })));
        let end = MemoryLayout::default().stack_end();
        assert!(matches!(
            mem.read(end),
            Err(CrashKind::UnmappedAccess { .. })
        ));
    }

    #[test]
    fn code_writes_are_rejected() {
        let image = tiny_image();
        let mut mem = Memory::load(&image);
        let err = mem.write(image.layout.code_base, 0xdead).unwrap_err();
        assert!(matches!(err, CrashKind::CodeWrite { .. }));
    }

    #[test]
    fn heap_and_stack_writes_succeed() {
        let layout = MemoryLayout::default();
        let mut mem = Memory::new(layout);
        mem.write(layout.heap_base + 10, 123).unwrap();
        assert_eq!(mem.read(layout.heap_base + 10).unwrap(), 123);
        mem.write(layout.stack_base + 10, 456).unwrap();
        assert_eq!(mem.read(layout.stack_base + 10).unwrap(), 456);
    }

    #[test]
    fn read_slice_bounds_checked() {
        let layout = MemoryLayout::default();
        let mem = Memory::new(layout);
        assert!(mem.read_slice(layout.stack_end() - 2, 4).is_err());
        assert_eq!(mem.read_slice(layout.heap_base, 3).unwrap(), vec![0, 0, 0]);
    }

    /// A CoW memory over the pristine image behaves exactly like `Memory::load`.
    #[test]
    fn cow_memory_matches_flat_load() {
        let image = tiny_image();
        let flat = Memory::load(&image);
        let base: Arc<[Word]> = flat.read_slice(0, flat.len()).unwrap().into();
        let mut cow = Memory::cow(image.layout, base);

        // Reads fall through to the shared base.
        assert_eq!(cow.read(image.layout.code_base).unwrap(), image.code[0]);
        assert_eq!(cow.read(image.layout.data_base).unwrap(), 7);
        assert_eq!(
            cow.owned_words(),
            0,
            "nothing copied before the first write"
        );

        // Code protection and unmapped checks are unchanged.
        assert!(matches!(
            cow.write(image.layout.code_base, 1),
            Err(CrashKind::CodeWrite { .. })
        ));
        assert!(matches!(cow.read(0), Err(CrashKind::UnmappedAccess { .. })));

        // The first write materializes exactly one page, seeded from the base.
        let heap = image.layout.heap_base;
        cow.write(heap + 1, 99).unwrap();
        assert_eq!(cow.read(heap + 1).unwrap(), 99);
        assert_eq!(
            cow.read(heap).unwrap(),
            0,
            "rest of the page came from base"
        );
        assert_eq!(cow.owned_words(), PAGE_WORDS);

        // Writes never leak into the shared base: a second overlay sees pristine data.
        let data = image.layout.data_base;
        cow.write(data, 1234).unwrap();
        assert_eq!(cow.read(data).unwrap(), 1234);
        let reread = Memory::cow(
            image.layout,
            match &cow.backing {
                Backing::Cow { base, .. } => base.clone(),
                _ => unreachable!(),
            },
        );
        assert_eq!(reread.read(data).unwrap(), 7);
    }
}
