//! The managed program execution environment.
//!
//! This is the reproduction's equivalent of the Determina Managed Program Execution
//! Environment built on DynamoRIO (Section 2.1): it executes a stripped binary out of a
//! code cache of dynamically decoded basic blocks, lets instrumentation hooks (patches)
//! run before instructions and mutate state or redirect control, validates every control
//! transfer through the Memory Firewall, applies Heap Guard to heap writes, maintains
//! the Shadow Stack, and reports failures with their failure locations.

use crate::cache::CodeCache;
use crate::error::{CrashInfo, CrashKind, RuntimeError};
use crate::hooks::{Hook, HookAction, HookContext, HookId, HookRegistry, Observation};
use crate::machine::{Machine, MemFault};
use crate::monitors::{Failure, FailureKind, MonitorConfig, ShadowStack, StackFrame};
use crate::shared::{CodeIndex, SharedProgram};
use crate::stats::ExecutionStats;
use crate::trace::{AddrComputation, ExecEvent, OperandValue, Tracer};
use cv_isa::{decode, Addr, BinaryImage, Inst, InstWithAddr, Reg, Word};
use std::sync::Arc;

/// Configuration of one managed environment instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvConfig {
    /// Which monitors are enabled.
    pub monitors: MonitorConfig,
    /// Runaway-loop guard: the maximum number of guest instructions per run.
    pub max_instructions: u64,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            monitors: MonitorConfig::full(),
            max_instructions: 2_000_000,
        }
    }
}

impl EnvConfig {
    /// A configuration with the given monitors and the default instruction budget.
    pub fn with_monitors(monitors: MonitorConfig) -> Self {
        EnvConfig {
            monitors,
            ..Default::default()
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The guest executed `halt`.
    Completed,
    /// A monitor detected a failure and terminated the run.
    Failure(Failure),
    /// The guest crashed without a monitor detecting anything.
    Crash(CrashInfo),
}

/// The full result of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// How the run ended.
    pub status: RunStatus,
    /// Words the guest wrote to the render port (the "display" used for the autoimmune
    /// and false-positive evaluations).
    pub rendered: Vec<Word>,
    /// Words the guest wrote to the debug port.
    pub debug: Vec<Word>,
    /// Event counts for this run.
    pub stats: ExecutionStats,
    /// Invariant-check observations emitted by hooks during the run.
    pub observations: Vec<Observation>,
}

impl RunResult {
    /// True if the guest halted normally.
    pub fn is_completed(&self) -> bool {
        matches!(self.status, RunStatus::Completed)
    }

    /// True if the run ended in a crash.
    pub fn is_crash(&self) -> bool {
        matches!(self.status, RunStatus::Crash(_))
    }

    /// The failure, if a monitor detected one.
    pub fn failure(&self) -> Option<&Failure> {
        match &self.status {
            RunStatus::Failure(f) => Some(f),
            _ => None,
        }
    }
}

/// Internal: how a single step ended.
enum StepEnd {
    Continue,
    Halt,
    Fail(Failure),
    Crash(CrashInfo),
}

/// Where instructions come from: a private on-demand code cache (the classic shape,
/// required for tracing's first-execution block signals) or a fleet-shared pre-decoded
/// index plus the pristine address space backing copy-on-write machines.
enum Fetch {
    /// Private cache, private `Memory::load` per run.
    Classic(CodeCache),
    /// Shared immutable program state: pre-decoded instructions and a CoW base.
    /// Untraced runs are observationally identical to `Classic`; block
    /// first-execution tracer signals are not produced (nothing is ever "built").
    Shared {
        index: Arc<CodeIndex>,
        pristine: Arc<[Word]>,
    },
}

/// The managed execution environment for one application image.
pub struct ManagedExecutionEnvironment {
    image: Arc<BinaryImage>,
    config: EnvConfig,
    fetch: Fetch,
    hooks: HookRegistry,
    cumulative: ExecutionStats,
}

impl ManagedExecutionEnvironment {
    /// Create an environment for `image`.
    pub fn new(image: BinaryImage, config: EnvConfig) -> Self {
        ManagedExecutionEnvironment {
            image: Arc::new(image),
            config,
            fetch: Fetch::Classic(CodeCache::new()),
            hooks: HookRegistry::new(),
            cumulative: ExecutionStats::default(),
        }
    }

    /// Create an environment running off a [`SharedProgram`]: no private image copy,
    /// no private code cache, and machines whose address space is a copy-on-write
    /// overlay over the shared pristine space. Untraced runs behave exactly like an
    /// environment from [`ManagedExecutionEnvironment::new`]; use the classic shape
    /// when a [`Tracer`] needs block first-execution signals.
    pub fn with_shared(program: &SharedProgram, config: EnvConfig) -> Self {
        ManagedExecutionEnvironment {
            image: program.image().clone(),
            config,
            fetch: Fetch::Shared {
                index: program.index().clone(),
                pristine: program.pristine().clone(),
            },
            hooks: HookRegistry::new(),
            cumulative: ExecutionStats::default(),
        }
    }

    /// The loaded image.
    pub fn image(&self) -> &BinaryImage {
        &self.image
    }

    /// The current configuration.
    pub fn config(&self) -> EnvConfig {
        self.config
    }

    /// Change the monitor configuration (takes effect on the next run).
    pub fn set_monitors(&mut self, monitors: MonitorConfig) {
        self.config.monitors = monitors;
    }

    /// Statistics accumulated across all runs of this environment.
    pub fn cumulative_stats(&self) -> ExecutionStats {
        self.cumulative
    }

    /// Reset the accumulated statistics.
    pub fn reset_cumulative_stats(&mut self) {
        self.cumulative = ExecutionStats::default();
    }

    /// Number of registered hooks (applied patches).
    pub fn hook_count(&self) -> usize {
        self.hooks.len()
    }

    /// Addresses that currently carry hooks.
    pub fn hooked_addrs(&self) -> Vec<Addr> {
        self.hooks.hooked_addrs()
    }

    /// Apply a hook (patch) at `addr` without restarting the application: the cached
    /// blocks containing the address are ejected and rebuilt on next execution.
    pub fn apply_hook(&mut self, addr: Addr, hook: Box<dyn Hook>) -> HookId {
        if let Fetch::Classic(cache) = &mut self.fetch {
            cache.eject_blocks_containing(addr);
        }
        self.hooks.add(addr, hook)
    }

    /// Remove a previously applied hook.
    pub fn remove_hook(&mut self, id: HookId) -> Result<(), RuntimeError> {
        match self.hooks.remove(id) {
            Some(addr) => {
                if let Fetch::Classic(cache) = &mut self.fetch {
                    cache.eject_blocks_containing(addr);
                }
                Ok(())
            }
            None => Err(RuntimeError::UnknownHook(id)),
        }
    }

    /// Remove every hook.
    pub fn clear_hooks(&mut self) {
        if let Fetch::Classic(cache) = &mut self.fetch {
            for addr in self.hooks.hooked_addrs() {
                cache.eject_blocks_containing(addr);
            }
        }
        self.hooks.clear();
    }

    /// Drop all cached blocks (simulates a cold start / application restart). A
    /// shared-program environment has no private cache; its runs are always cold in
    /// exactly this sense, so this is a no-op there.
    pub fn flush_cache(&mut self) {
        if let Fetch::Classic(cache) = &mut self.fetch {
            cache.flush();
        }
    }

    /// Run the application on `input` without tracing.
    pub fn run(&mut self, input: &[Word]) -> RunResult {
        self.run_traced(input, None)
    }

    /// Run the application on `input`, delivering a full execution trace to `tracer`.
    pub fn run_with_tracer(&mut self, input: &[Word], tracer: &mut dyn Tracer) -> RunResult {
        self.run_traced(input, Some(tracer))
    }

    /// Run the application on `input`, optionally delivering a full execution trace to
    /// `tracer` (the learning configuration).
    pub fn run_traced(&mut self, input: &[Word], mut tracer: Option<&mut dyn Tracer>) -> RunResult {
        let mut machine = match &self.fetch {
            Fetch::Shared { pristine, .. } => Machine::with_cow(
                &self.image,
                pristine.clone(),
                input.to_vec(),
                self.config.monitors.heap_guard,
            ),
            Fetch::Classic(_) => {
                Machine::new(&self.image, input.to_vec(), self.config.monitors.heap_guard)
            }
        };
        let mut shadow = ShadowStack::new();
        let mut observations: Vec<Observation> = Vec::new();
        let mut stats = ExecutionStats {
            runs: 1,
            ..Default::default()
        };
        let (blocks_built_before, blocks_ejected_before) = match &self.fetch {
            Fetch::Classic(cache) => (cache.blocks_built, cache.blocks_ejected),
            Fetch::Shared { .. } => (0, 0),
        };
        // One scratch record reused for every traced instruction: its vectors are
        // cleared and refilled in place, so the tracing path performs no per-event
        // heap allocation once their (≤ 3 element) capacities are warm.
        let mut scratch = ExecEvent {
            addr: 0,
            inst: Inst::Nop,
            reads: Vec::new(),
            addrs: Vec::new(),
            sp: 0,
        };

        let status = loop {
            if stats.instructions >= self.config.max_instructions {
                break RunStatus::Crash(CrashInfo {
                    kind: CrashKind::InstructionBudgetExhausted,
                    location: machine.eip,
                });
            }
            let eip = machine.eip;

            // ---- Fetch ------------------------------------------------------------
            let iwa = if self.image.contains_code_addr(eip) {
                match &mut self.fetch {
                    Fetch::Classic(cache) => match cache.fetch(&self.image, eip) {
                        Ok((iwa, newly_built)) => {
                            if let Some(start) = newly_built {
                                if let Some(tr) = tracer.as_mut() {
                                    tr.on_block_first_execution(start);
                                }
                            }
                            iwa
                        }
                        Err(_) => {
                            break RunStatus::Crash(CrashInfo {
                                kind: CrashKind::InvalidInstruction { addr: eip },
                                location: eip,
                            })
                        }
                    },
                    // The index errs exactly where a fresh cache build would.
                    Fetch::Shared { index, .. } => match index.fetch(eip) {
                        Some(iwa) => iwa,
                        None => {
                            break RunStatus::Crash(CrashInfo {
                                kind: CrashKind::InvalidInstruction { addr: eip },
                                location: eip,
                            })
                        }
                    },
                }
            } else {
                // Executing outside the loaded image (injected code). Only reachable
                // when the Memory Firewall is disabled; decode directly from memory.
                match Self::decode_from_memory(&machine, eip) {
                    Some(iwa) => iwa,
                    None => {
                        break RunStatus::Crash(CrashInfo {
                            kind: CrashKind::InvalidInstruction { addr: eip },
                            location: eip,
                        })
                    }
                }
            };

            stats.instructions += 1;

            // ---- Trace ------------------------------------------------------------
            if let Some(tr) = tracer.as_mut() {
                if tr.wants_addr(eip) {
                    Self::fill_exec_event(&machine, &iwa, &mut scratch);
                    tr.on_inst(&scratch);
                    stats.trace_events += 1;
                }
                // Procedure discovery: report resolved call targets.
                match iwa.inst {
                    Inst::Call { target } => tr.on_call(eip, target),
                    Inst::CallIndirect { target } => {
                        if let Ok(t) = machine.read_operand(&target) {
                            tr.on_call(eip, t);
                        }
                    }
                    _ => {}
                }
            }

            // ---- Hooks (applied patches) -------------------------------------------
            let mut action = HookAction::Continue;
            if let Some(entries) = self.hooks.by_addr.get_mut(&eip) {
                for (id, hook) in entries.iter_mut() {
                    stats.hook_invocations += 1;
                    let mut ctx =
                        HookContext::new(&mut machine, iwa.inst, eip, *id, &mut observations);
                    let a = hook.on_execute(&mut ctx);
                    if !matches!(a, HookAction::Continue) {
                        action = a;
                        break;
                    }
                }
            }

            let end = match action {
                HookAction::SkipInstruction => {
                    machine.eip = iwa.next_addr();
                    StepEnd::Continue
                }
                HookAction::ReturnFromProcedure { sp_adjust } => {
                    let sp = machine.reg(Reg::Esp);
                    machine.set_reg(Reg::Esp, sp.wrapping_add(sp_adjust as u32));
                    Self::do_return(
                        &self.image,
                        &self.config,
                        &mut machine,
                        &mut shadow,
                        &mut stats,
                        eip,
                    )
                }
                HookAction::Continue => {
                    self.execute_instruction(&iwa, &mut machine, &mut shadow, &mut stats)
                }
            };

            match end {
                StepEnd::Continue => {}
                StepEnd::Halt => break RunStatus::Completed,
                StepEnd::Fail(f) => break RunStatus::Failure(f),
                StepEnd::Crash(c) => break RunStatus::Crash(c),
            }
        };

        stats.heap_guard_checks = machine.heap_guard_checks;
        stats.shadow_stack_ops = shadow.ops;
        if let Fetch::Classic(cache) = &self.fetch {
            stats.blocks_built = cache.blocks_built - blocks_built_before;
            stats.blocks_ejected = cache.blocks_ejected - blocks_ejected_before;
        }
        if let Some(tr) = tracer.as_mut() {
            tr.on_run_end();
        }
        self.cumulative.merge(&stats);

        RunResult {
            status,
            rendered: machine.render_output().to_vec(),
            debug: machine.debug_output().to_vec(),
            stats,
            observations,
        }
    }

    /// Fill the per-instruction trace record in place: the values of all operands read
    /// and all addresses computed, plus the stack pointer. Reusing one record across a
    /// run keeps the tracing path free of per-event heap allocation.
    fn fill_exec_event(machine: &Machine, iwa: &InstWithAddr, event: &mut ExecEvent) {
        event.addr = iwa.addr;
        event.inst = iwa.inst;
        event.sp = machine.reg(Reg::Esp);
        event.reads.clear();
        for (slot, op) in iwa.inst.operands_read().into_iter().enumerate() {
            if let Ok(value) = machine.read_operand(&op) {
                event.reads.push(OperandValue {
                    slot: slot as u8,
                    operand: op,
                    value,
                });
            }
        }
        event.addrs.clear();
        for (slot, mem) in iwa.inst.mem_refs().into_iter().enumerate() {
            event.addrs.push(AddrComputation {
                slot: slot as u8,
                mem,
                addr: machine.effective_addr(&mem),
            });
        }
    }

    /// Decode one instruction directly from guest memory (execution of injected code
    /// when the Memory Firewall is disabled).
    fn decode_from_memory(machine: &Machine, eip: Addr) -> Option<InstWithAddr> {
        let mut words = Vec::with_capacity(8);
        for i in 0..8 {
            match machine.read_mem(eip.wrapping_add(i)) {
                Ok(w) => words.push(w),
                Err(_) => break,
            }
        }
        match decode(&words, 0) {
            Ok((inst, len)) => Some(InstWithAddr {
                addr: eip,
                inst,
                len,
            }),
            Err(_) => None,
        }
    }

    /// Validate a control transfer from `location` to `target`.
    ///
    /// With the Memory Firewall enabled, a target outside the loaded code image is an
    /// illegal control transfer failure (detected *before* the transfer happens, so
    /// injected code never executes). Without the firewall, transfers to mapped memory
    /// are allowed (injected code executes) and transfers to unmapped memory crash.
    fn validate_transfer(
        image: &BinaryImage,
        config: &EnvConfig,
        stats: &mut ExecutionStats,
        shadow: &ShadowStack,
        location: Addr,
        target: Addr,
    ) -> Option<StepEnd> {
        if config.monitors.memory_firewall {
            stats.firewall_checks += 1;
            if !image.contains_code_addr(target) {
                return Some(StepEnd::Fail(Failure {
                    kind: FailureKind::IllegalControlTransfer { target },
                    location,
                    call_stack: shadow.frames().to_vec(),
                }));
            }
            None
        } else if image.contains_code_addr(target) || image.layout.is_mapped(target) {
            None
        } else {
            Some(StepEnd::Crash(CrashInfo {
                kind: CrashKind::WildJump { target },
                location,
            }))
        }
    }

    /// Perform `ret` semantics: pop the return address, validate it, update the shadow
    /// stack, and transfer.
    fn do_return(
        image: &BinaryImage,
        config: &EnvConfig,
        machine: &mut Machine,
        shadow: &mut ShadowStack,
        stats: &mut ExecutionStats,
        location: Addr,
    ) -> StepEnd {
        let ra = match machine.pop() {
            Ok(v) => v,
            Err(fault) => return Self::fault_to_end(fault, location, shadow),
        };
        if let Some(end) = Self::validate_transfer(image, config, stats, shadow, location, ra) {
            return end;
        }
        if config.monitors.shadow_stack {
            shadow.pop();
        }
        machine.eip = ra;
        StepEnd::Continue
    }

    fn fault_to_end(fault: MemFault, location: Addr, shadow: &ShadowStack) -> StepEnd {
        match fault {
            MemFault::Crash(kind) => StepEnd::Crash(CrashInfo { kind, location }),
            MemFault::HeapGuardViolation { addr } => StepEnd::Fail(Failure {
                kind: FailureKind::OutOfBoundsWrite { addr },
                location,
                call_stack: shadow.frames().to_vec(),
            }),
        }
    }

    /// Execute one instruction (the hook stage has already run).
    fn execute_instruction(
        &mut self,
        iwa: &InstWithAddr,
        machine: &mut Machine,
        shadow: &mut ShadowStack,
        stats: &mut ExecutionStats,
    ) -> StepEnd {
        let eip = iwa.addr;
        let next = iwa.next_addr();
        match iwa.inst {
            Inst::Halt => StepEnd::Halt,
            Inst::Jmp { target } => {
                if let Some(end) =
                    Self::validate_transfer(&self.image, &self.config, stats, shadow, eip, target)
                {
                    return end;
                }
                machine.eip = target;
                StepEnd::Continue
            }
            Inst::Jcc { cond, target } => {
                if cond.eval(machine.flags) {
                    if let Some(end) = Self::validate_transfer(
                        &self.image,
                        &self.config,
                        stats,
                        shadow,
                        eip,
                        target,
                    ) {
                        return end;
                    }
                    machine.eip = target;
                } else {
                    machine.eip = next;
                }
                StepEnd::Continue
            }
            Inst::JmpIndirect { target } => {
                let tval = match machine.read_operand(&target) {
                    Ok(v) => v,
                    Err(fault) => return Self::fault_to_end(fault, eip, shadow),
                };
                if let Some(end) =
                    Self::validate_transfer(&self.image, &self.config, stats, shadow, eip, tval)
                {
                    return end;
                }
                machine.eip = tval;
                StepEnd::Continue
            }
            Inst::Call { target } => self.do_call(machine, shadow, stats, eip, next, target),
            Inst::CallIndirect { target } => {
                let tval = match machine.read_operand(&target) {
                    Ok(v) => v,
                    Err(fault) => return Self::fault_to_end(fault, eip, shadow),
                };
                self.do_call(machine, shadow, stats, eip, next, tval)
            }
            Inst::Ret => Self::do_return(&self.image, &self.config, machine, shadow, stats, eip),
            _ => match machine.exec_data_inst(&iwa.inst) {
                Ok(()) => {
                    machine.eip = next;
                    StepEnd::Continue
                }
                Err(fault) => Self::fault_to_end(fault, eip, shadow),
            },
        }
    }

    /// Perform call semantics to the already-resolved target `tval`.
    ///
    /// The Memory Firewall validation happens before any state changes so that a blocked
    /// call never pushes a frame and injected code never runs.
    fn do_call(
        &self,
        machine: &mut Machine,
        shadow: &mut ShadowStack,
        stats: &mut ExecutionStats,
        eip: Addr,
        next: Addr,
        tval: Addr,
    ) -> StepEnd {
        if let Some(end) =
            Self::validate_transfer(&self.image, &self.config, stats, shadow, eip, tval)
        {
            return end;
        }
        if let Err(fault) = machine.push(next) {
            return Self::fault_to_end(fault, eip, shadow);
        }
        if self.config.monitors.shadow_stack {
            shadow.push(StackFrame {
                proc_entry: tval,
                call_site: eip,
                return_addr: next,
            });
        }
        machine.eip = tval;
        StepEnd::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::ObservationKind;
    use crate::trace::RecordingTracer;
    use cv_isa::{Cond, MemRef, Operand, Port, ProgramBuilder};

    /// A program that reads a word, doubles it via a helper call, and renders it.
    fn double_program() -> BinaryImage {
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        let double = b.new_label("double");
        b.bind(main);
        b.input(Reg::Eax, Port::Input);
        b.call(double);
        b.output(Reg::Eax, Port::Render);
        b.halt();
        b.bind(double);
        b.add(Reg::Eax, Reg::Eax);
        b.ret();
        b.set_entry(main);
        b.build().unwrap()
    }

    /// A program that makes an indirect call through a register loaded from input.
    fn indirect_call_program() -> (BinaryImage, Addr) {
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        let callee = b.new_label("callee");
        b.bind(main);
        b.input(Reg::Eax, Port::Input);
        let call_site = b.call_indirect(Reg::Eax);
        b.output(1u32, Port::Render);
        b.halt();
        b.bind(callee);
        b.output(2u32, Port::Render);
        b.ret();
        b.set_entry(main);
        let callee_addr = b.label_addr(callee).unwrap();
        let image = b.build().unwrap();
        let _ = call_site;
        (image, callee_addr)
    }

    #[test]
    fn completes_and_renders_output() {
        let mut env = ManagedExecutionEnvironment::new(double_program(), EnvConfig::default());
        let r = env.run(&[21]);
        assert!(r.is_completed());
        assert_eq!(r.rendered, vec![42]);
        assert!(r.stats.instructions >= 6);
    }

    #[test]
    fn legal_indirect_call_is_allowed() {
        let (image, callee) = indirect_call_program();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let r = env.run(&[callee]);
        assert!(r.is_completed());
        assert_eq!(r.rendered, vec![2, 1]);
        assert!(r.stats.firewall_checks > 0);
    }

    #[test]
    fn memory_firewall_blocks_illegal_indirect_call() {
        let (image, _) = indirect_call_program();
        let heap_target = image.layout.heap_base + 5;
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let r = env.run(&[heap_target]);
        let f = r.failure().expect("failure detected");
        assert_eq!(
            f.kind,
            FailureKind::IllegalControlTransfer {
                target: heap_target
            }
        );
        // The injected target never executed: nothing was rendered.
        assert!(r.rendered.is_empty());
    }

    #[test]
    fn without_firewall_wild_jump_to_unmapped_crashes() {
        let (image, _) = indirect_call_program();
        let mut env = ManagedExecutionEnvironment::new(
            image,
            EnvConfig::with_monitors(MonitorConfig::bare()),
        );
        let r = env.run(&[3]); // address 3 is unmapped
        assert!(r.is_crash());
    }

    #[test]
    fn without_firewall_injected_code_executes() {
        // The attacker's "shellcode" is a rendered marker followed by halt, staged in
        // the data segment by the program itself (simulating downloaded content).
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        b.bind(main);
        // Write encoded `out 0xEV1L, Render; halt` into the heap, then call it.
        let payload: Vec<u32> = {
            let mut w = cv_isa::encode(Inst::Out {
                src: Operand::Imm(0xEE11),
                port: Port::Render,
            });
            w.extend(cv_isa::encode(Inst::Halt));
            w
        };
        let payload_addr = b.data_words(&payload);
        b.call_indirect(payload_addr);
        b.halt();
        b.set_entry(main);
        let image = b.build().unwrap();

        // Unprotected: the injected code runs and emits the marker.
        let mut env = ManagedExecutionEnvironment::new(
            image.clone(),
            EnvConfig::with_monitors(MonitorConfig::bare()),
        );
        let r = env.run(&[]);
        assert!(r.is_completed());
        assert_eq!(r.rendered, vec![0xEE11]);

        // Protected: the Memory Firewall terminates the run before the payload runs.
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let r = env.run(&[]);
        assert!(r.failure().is_some());
        assert!(r.rendered.is_empty());
    }

    #[test]
    fn heap_guard_failure_reports_copy_location_and_call_stack() {
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        let writer = b.new_label("writer");
        b.bind(main);
        b.call(writer);
        b.halt();
        b.bind(writer);
        b.alloc(Reg::Ebx, 2u32);
        // Out-of-bounds store two words past the allocation start (onto the canary).
        let store_addr = b.mov(Operand::Mem(MemRef::base_disp(Reg::Ebx, 2)), 7u32);
        b.ret();
        b.set_entry(main);
        let image = b.build().unwrap();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let r = env.run(&[]);
        let f = r.failure().expect("heap guard failure");
        assert!(matches!(f.kind, FailureKind::OutOfBoundsWrite { .. }));
        assert_eq!(f.location, store_addr);
        assert_eq!(f.call_stack.len(), 1, "shadow stack has the caller frame");
    }

    #[test]
    fn shadow_stack_disabled_gives_empty_call_stack() {
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        let writer = b.new_label("writer");
        b.bind(main);
        b.call(writer);
        b.halt();
        b.bind(writer);
        b.alloc(Reg::Ebx, 2u32);
        b.mov(Operand::Mem(MemRef::base_disp(Reg::Ebx, 2)), 7u32);
        b.ret();
        b.set_entry(main);
        let image = b.build().unwrap();
        let mut env = ManagedExecutionEnvironment::new(
            image,
            EnvConfig::with_monitors(MonitorConfig::firewall_and_heap_guard()),
        );
        let r = env.run(&[]);
        let f = r.failure().expect("failure");
        assert!(f.call_stack.is_empty());
    }

    #[test]
    fn tracer_receives_events_and_blocks() {
        let mut env = ManagedExecutionEnvironment::new(double_program(), EnvConfig::default());
        let mut tracer = RecordingTracer::new();
        let r = env.run_with_tracer(&[5], &mut tracer);
        assert!(r.is_completed());
        assert_eq!(r.stats.trace_events, r.stats.instructions);
        assert_eq!(tracer.events.len() as u64, r.stats.trace_events);
        assert!(!tracer.blocks.is_empty());
        assert_eq!(tracer.calls.len(), 1);
        assert_eq!(tracer.runs, 1);
        // The add instruction saw eax = 5 for both of its read slots.
        let add_event = tracer
            .events
            .iter()
            .find(|e| matches!(e.inst, Inst::Add { .. }))
            .expect("add traced");
        assert_eq!(add_event.reads.len(), 2);
        assert!(add_event.reads.iter().all(|r| r.value == 5));
    }

    #[test]
    fn selective_tracing_skips_other_addresses() {
        let image = double_program();
        let entry = image.entry;
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let mut tracer = RecordingTracer::with_filter([entry]);
        let r = env.run_with_tracer(&[5], &mut tracer);
        assert!(r.is_completed());
        assert_eq!(tracer.events.len(), 1);
        assert_eq!(r.stats.trace_events, 1);
    }

    #[test]
    fn hooks_can_observe_and_mutate_state() {
        struct ForceValue {
            observed: u32,
        }
        impl Hook for ForceValue {
            fn on_execute(&mut self, ctx: &mut HookContext<'_>) -> HookAction {
                self.observed = ctx.machine.reg(Reg::Eax);
                ctx.observe(ObservationKind::Violated);
                ctx.machine.set_reg(Reg::Eax, 100);
                HookAction::Continue
            }
        }
        let image = double_program();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        // Hook the `add eax, eax` instruction inside `double`. Find it by scanning.
        let insts = cv_isa::decode_all(&env.image().code, env.image().layout.code_base).unwrap();
        let add_addr = insts
            .iter()
            .find(|i| matches!(i.inst, Inst::Add { .. }))
            .unwrap()
            .addr;
        env.apply_hook(add_addr, Box::new(ForceValue { observed: 0 }));
        let r = env.run(&[5]);
        assert!(r.is_completed());
        assert_eq!(
            r.rendered,
            vec![200],
            "hook forced eax to 100 before doubling"
        );
        assert_eq!(r.observations.len(), 1);
        assert_eq!(r.observations[0].kind, ObservationKind::Violated);
        assert_eq!(r.stats.hook_invocations, 1);
    }

    #[test]
    fn skip_instruction_hook_prevents_execution() {
        struct Skip;
        impl Hook for Skip {
            fn on_execute(&mut self, _ctx: &mut HookContext<'_>) -> HookAction {
                HookAction::SkipInstruction
            }
        }
        let image = double_program();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let insts = cv_isa::decode_all(&env.image().code, env.image().layout.code_base).unwrap();
        let add_addr = insts
            .iter()
            .find(|i| matches!(i.inst, Inst::Add { .. }))
            .unwrap()
            .addr;
        env.apply_hook(add_addr, Box::new(Skip));
        let r = env.run(&[5]);
        assert!(r.is_completed());
        assert_eq!(r.rendered, vec![5], "the doubling add was skipped");
    }

    #[test]
    fn return_from_procedure_hook_unwinds_correctly() {
        struct EarlyReturn;
        impl Hook for EarlyReturn {
            fn on_execute(&mut self, _ctx: &mut HookContext<'_>) -> HookAction {
                // At this point in `double` nothing has been pushed since entry, so the
                // stack pointer already points at the return address.
                HookAction::ReturnFromProcedure { sp_adjust: 0 }
            }
        }
        let image = double_program();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let insts = cv_isa::decode_all(&env.image().code, env.image().layout.code_base).unwrap();
        let add_addr = insts
            .iter()
            .find(|i| matches!(i.inst, Inst::Add { .. }))
            .unwrap()
            .addr;
        env.apply_hook(add_addr, Box::new(EarlyReturn));
        let r = env.run(&[9]);
        assert!(r.is_completed());
        assert_eq!(r.rendered, vec![9], "procedure returned before doubling");
    }

    #[test]
    fn removing_a_hook_restores_behaviour() {
        struct Skip;
        impl Hook for Skip {
            fn on_execute(&mut self, _ctx: &mut HookContext<'_>) -> HookAction {
                HookAction::SkipInstruction
            }
        }
        let image = double_program();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        let insts = cv_isa::decode_all(&env.image().code, env.image().layout.code_base).unwrap();
        let add_addr = insts
            .iter()
            .find(|i| matches!(i.inst, Inst::Add { .. }))
            .unwrap()
            .addr;
        let id = env.apply_hook(add_addr, Box::new(Skip));
        assert_eq!(env.run(&[5]).rendered, vec![5]);
        env.remove_hook(id).unwrap();
        assert_eq!(env.run(&[5]).rendered, vec![10]);
        assert!(env.remove_hook(id).is_err());
        // Patch application and removal ejected cache blocks.
        assert!(env.cumulative_stats().blocks_built >= 2);
    }

    #[test]
    fn instruction_budget_guards_runaway_loops() {
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        b.bind(main);
        let spin = b.new_label("spin");
        b.bind(spin);
        b.jmp(spin);
        b.set_entry(main);
        let image = b.build().unwrap();
        let mut env = ManagedExecutionEnvironment::new(
            image,
            EnvConfig {
                max_instructions: 1000,
                ..Default::default()
            },
        );
        let r = env.run(&[]);
        assert!(matches!(
            r.status,
            RunStatus::Crash(CrashInfo {
                kind: CrashKind::InstructionBudgetExhausted,
                ..
            })
        ));
    }

    #[test]
    fn conditional_branches_follow_flags() {
        let mut b = ProgramBuilder::new();
        let main = b.new_label("main");
        b.bind(main);
        b.input(Reg::Eax, Port::Input);
        b.cmp(Reg::Eax, 10u32);
        let big = b.new_label("big");
        b.jcc(Cond::Ge, big);
        b.output(0u32, Port::Render);
        b.halt();
        b.bind(big);
        b.output(1u32, Port::Render);
        b.halt();
        b.set_entry(main);
        let image = b.build().unwrap();
        let mut env = ManagedExecutionEnvironment::new(image, EnvConfig::default());
        assert_eq!(env.run(&[3]).rendered, vec![0]);
        assert_eq!(env.run(&[10]).rendered, vec![1]);
        assert_eq!(env.run(&[55]).rendered, vec![1]);
    }

    /// A shared-program environment is observationally identical to a classic one:
    /// same statuses, renders, and hook observations, across benign inputs, an
    /// illegal-transfer exploit, and an installed hook.
    #[test]
    fn shared_program_env_matches_classic_env() {
        struct Observe;
        impl Hook for Observe {
            fn on_execute(&mut self, ctx: &mut HookContext<'_>) -> HookAction {
                ctx.observe(ObservationKind::Violated);
                HookAction::Continue
            }
        }
        let (image, callee) = indirect_call_program();
        let program = crate::shared::SharedProgram::new(image.clone());
        let mut classic = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut shared = ManagedExecutionEnvironment::with_shared(&program, EnvConfig::default());
        let hook_addr = image.entry;
        classic.apply_hook(hook_addr, Box::new(Observe));
        shared.apply_hook(hook_addr, Box::new(Observe));

        for input in [vec![callee], vec![image.layout.heap_base + 5], vec![3]] {
            classic.flush_cache();
            shared.flush_cache();
            let a = classic.run(&input);
            let b = shared.run(&input);
            assert_eq!(a.status, b.status);
            assert_eq!(a.rendered, b.rendered);
            assert_eq!(a.debug, b.debug);
            assert_eq!(a.observations, b.observations);
            assert_eq!(a.stats.instructions, b.stats.instructions);
        }
    }

    #[test]
    fn cumulative_stats_accumulate_across_runs() {
        let mut env = ManagedExecutionEnvironment::new(double_program(), EnvConfig::default());
        env.run(&[1]);
        env.run(&[2]);
        let c = env.cumulative_stats();
        assert_eq!(c.runs, 2);
        assert!(c.instructions > 10);
        env.reset_cumulative_stats();
        assert_eq!(env.cumulative_stats().runs, 0);
    }
}
