//! Offline stand-in for `proptest`: the strategy-combinator subset this workspace's
//! property tests use (`proptest!`, `prop_oneof!`, `prop_map`, `any`, ranges, tuples,
//! `prop::sample::select`, `prop::option::of`, `prop::collection::vec`).
//!
//! Values are generated from a deterministic SplitMix64 stream; each `proptest!` test
//! runs its body for `ProptestConfig::cases` generated inputs. There is no shrinking —
//! a failing case panics with the ordinary assertion message.

#![forbid(unsafe_code)]

/// Test-runner types: the deterministic RNG and the per-test configuration.
pub mod test_runner {
    /// Deterministic generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by `proptest!`.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_1234_ABCD_9876,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over `branches` (must be non-empty).
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union(branches)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len());
            self.0[idx].generate(rng)
        }
    }

    /// `any::<T>()` marker; see the `Arbitrary`-ish impls below.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        #[doc(hidden)]
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    macro_rules! impl_any {
        ($($t:ty => $e:expr),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $e;
                    f(rng)
                }
            }
        )*};
    }

    impl_any! {
        bool => |r| r.next_u64() & 1 == 1,
        u8 => |r| r.next_u64() as u8,
        u16 => |r| r.next_u64() as u16,
        u32 => |r| r.next_u64() as u32,
        u64 => |r| r.next_u64(),
        usize => |r| r.next_u64() as usize,
        i8 => |r| r.next_u64() as i8,
        i16 => |r| r.next_u64() as i16,
        i32 => |r| r.next_u64() as i32,
        i64 => |r| r.next_u64() as i64,
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Generate an arbitrary value of a primitive type.
pub fn any<T>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Sub-strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Select one element from a collection.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed set of values.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len())].clone()
            }
        }

        /// Choose uniformly from `values` (must be non-empty).
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select requires a non-empty set");
            Select(values)
        }
    }

    /// Optional values.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy generating `None` or `Some(inner)` with equal probability.
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        /// `prop::option::of`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    /// Collections of generated values.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Strategy generating vectors with lengths drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.len.end - self.len.start;
                let n = self.len.start + if span == 0 { 0 } else { rng.below(span) };
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { elem, len }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property test (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__cfg.cases {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Define property tests: each function body runs for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(x in 1u32..100, y in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(y % 2 == 0 && y < 20);
        }

        #[test]
        fn oneof_selects_and_vec_lengths_hold(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2));
        }

        #[test]
        fn options_cover_both_cases(o in prop::option::of(0u8..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }
}
