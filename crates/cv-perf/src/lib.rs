//! # cv-perf — the performance version system
//!
//! ClearView's deployability argument is quantitative (monitoring overhead,
//! time-to-immunity, wire cost), so this repo treats performance numbers the
//! way Perun treats profiles: as **versioned artifacts attached to commit
//! history**, not console output that scrolls away. The plane has three
//! layers:
//!
//! - **Stats core** ([`stats`]): every bench metric is measured over N rounds
//!   and summarized as median + min/max + MAD/IQR ([`MetricStats`]) — robust
//!   statistics only, because one noisy round must not move the record.
//!   [`MetricStats::from_histogram`] bridges `cv-obs` span histograms into the
//!   same shape.
//! - **History** ([`record`], [`history`]): one schema-versioned [`PerfRecord`]
//!   per commit per bench, serialized as canonical single-line JSON
//!   (encode→decode→re-encode is byte-identical) into the append-only
//!   `perf/history.jsonl`. Records carry the capture configuration (flags,
//!   cores, rounds, warmups) so incomparable runs are never compared.
//! - **Verdict engine** ([`gate`]): the fresh median is judged against the
//!   trailing window of comparable records — a `k·MAD` changepoint band plus
//!   a monotone-drift rule — replacing the one-shot 30% threshold that let
//!   slow regressions compound and real 15% ones pass.
//!
//! The `perf_gate` binary in `cv-bench` drives all three from the
//! `BENCH_*.json` records the bench bins write.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod history;
pub mod json;
pub mod record;
pub mod stats;

pub use gate::{evaluate_key, Direction, GateConfig, KeyVerdict, Outcome};
pub use history::History;
pub use record::{PerfRecord, SCHEMA_VERSION};
pub use stats::{iqr, mad, median, MetricStats, MAD_SCALE};
