//! Candidate repair evaluation (Section 2.6).
//!
//! ClearView evaluates repairs by observing patched executions: a repair's score is
//! `(s - f) + b`, where `s` is its number of successes, `f` its number of failures, and
//! `b` a bonus granted only to repairs that have never failed. At each point ClearView
//! applies the most highly ranked repair; ties are broken by the static ordering
//! produced by repair generation (earlier repairs first, state-only repairs before
//! control-flow changes).

use crate::repairgen::RepairCandidate;
use serde::{Deserialize, Serialize};

/// The evaluation record of one candidate repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairScore {
    /// The candidate being evaluated.
    pub candidate: RepairCandidate,
    /// Number of successful evaluations (runs with no failure or crash).
    pub successes: u64,
    /// Number of failed evaluations (the failure recurred, a new failure appeared, or
    /// the application crashed).
    pub failures: u64,
}

impl RepairScore {
    /// The score `(s - f) + b` of Section 2.6.
    pub fn score(&self, untried_bonus: i64) -> i64 {
        let base = self.successes as i64 - self.failures as i64;
        if self.failures == 0 {
            base + untried_bonus
        } else {
            base
        }
    }

    /// True if the repair has never failed an evaluation.
    pub fn never_failed(&self) -> bool {
        self.failures == 0
    }
}

/// The repair evaluator: holds every candidate's score and selects which repair to
/// apply next.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairEvaluator {
    scores: Vec<RepairScore>,
    untried_bonus: i64,
}

impl RepairEvaluator {
    /// Create an evaluator over an ordered list of candidates (the order is the
    /// tie-breaking order).
    pub fn new(candidates: Vec<RepairCandidate>, untried_bonus: i64) -> Self {
        RepairEvaluator {
            scores: candidates
                .into_iter()
                .map(|candidate| RepairScore {
                    candidate,
                    successes: 0,
                    failures: 0,
                })
                .collect(),
            untried_bonus,
        }
    }

    /// Number of candidates under evaluation.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True if there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The index and candidate that should be applied now: the highest-scoring
    /// candidate, ties broken by candidate order.
    pub fn best(&self) -> Option<(usize, &RepairCandidate)> {
        let mut best: Option<(usize, i64)> = None;
        for (idx, s) in self.scores.iter().enumerate() {
            let score = s.score(self.untried_bonus);
            match best {
                Some((_, best_score)) if best_score >= score => {}
                _ => best = Some((idx, score)),
            }
        }
        best.map(|(idx, _)| (idx, &self.scores[idx].candidate))
    }

    /// Record that the repair at `idx` survived an evaluation period.
    pub fn record_success(&mut self, idx: usize) {
        if let Some(s) = self.scores.get_mut(idx) {
            s.successes += 1;
        }
    }

    /// Record that the repair at `idx` failed an evaluation (failure recurred, new
    /// failure appeared, or the application crashed).
    pub fn record_failure(&mut self, idx: usize) {
        if let Some(s) = self.scores.get_mut(idx) {
            s.failures += 1;
        }
    }

    /// The score records (for reports).
    pub fn scores(&self) -> &[RepairScore] {
        &self.scores
    }

    /// Number of candidates that have failed at least one evaluation.
    pub fn failed_candidates(&self) -> usize {
        self.scores.iter().filter(|s| s.failures > 0).count()
    }

    /// True if every candidate has failed at least once (nothing promising remains).
    pub fn exhausted(&self) -> bool {
        !self.scores.is_empty()
            && self
                .scores
                .iter()
                .all(|s| s.failures > 0 && s.successes == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::Correlation;
    use cv_inference::{Invariant, Variable};
    use cv_isa::{Operand, Reg};
    use cv_patch::{RepairPatch, RepairStrategy};

    fn candidate(addr: u32, strategy: RepairStrategy) -> RepairCandidate {
        RepairCandidate {
            repair: RepairPatch {
                invariant: Invariant::LowerBound {
                    var: Variable::read(addr, 0, Operand::Reg(Reg::Ecx)),
                    min: 1,
                },
                strategy,
            },
            correlation: Correlation::Highly,
            stack_rank: 0,
            check_addr: addr,
        }
    }

    #[test]
    fn untried_repairs_start_with_the_bonus_and_ties_break_by_order() {
        let eval = RepairEvaluator::new(
            vec![
                candidate(0x41000, RepairStrategy::ClampToLowerBound),
                candidate(0x41010, RepairStrategy::ClampToLowerBound),
            ],
            1,
        );
        let (idx, c) = eval.best().unwrap();
        assert_eq!(idx, 0, "tie broken by candidate order");
        assert_eq!(c.check_addr, 0x41000);
    }

    #[test]
    fn failures_demote_a_repair_below_untried_ones() {
        let mut eval = RepairEvaluator::new(
            vec![
                candidate(0x41000, RepairStrategy::ClampToLowerBound),
                candidate(0x41010, RepairStrategy::ClampToLowerBound),
            ],
            1,
        );
        eval.record_failure(0);
        let (idx, _) = eval.best().unwrap();
        assert_eq!(idx, 1, "the failed repair loses its bonus and its rank");
        assert_eq!(eval.failed_candidates(), 1);
        assert!(!eval.exhausted());
        eval.record_failure(1);
        assert!(eval.exhausted());
    }

    #[test]
    fn successes_keep_a_working_repair_on_top() {
        let mut eval = RepairEvaluator::new(
            vec![
                candidate(0x41000, RepairStrategy::ClampToLowerBound),
                candidate(0x41010, RepairStrategy::ClampToLowerBound),
            ],
            1,
        );
        eval.record_success(1);
        eval.record_success(1);
        let (idx, _) = eval.best().unwrap();
        assert_eq!(idx, 1);
        // A later failure of the leader demotes it again.
        eval.record_failure(1);
        eval.record_failure(1);
        eval.record_failure(1);
        let (idx, _) = eval.best().unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn score_formula_matches_the_paper() {
        let mut s = RepairScore {
            candidate: candidate(0x41000, RepairStrategy::ClampToLowerBound),
            successes: 0,
            failures: 0,
        };
        assert_eq!(s.score(1), 1, "never tried: bonus only");
        s.successes = 3;
        assert_eq!(s.score(1), 4, "(3 - 0) + 1");
        s.failures = 1;
        assert_eq!(s.score(1), 2, "(3 - 1), bonus lost");
        assert!(!s.never_failed());
    }

    #[test]
    fn empty_evaluator() {
        let eval = RepairEvaluator::new(vec![], 1);
        assert!(eval.is_empty());
        assert!(eval.best().is_none());
        assert!(!eval.exhausted());
    }
}
