//! The versioned per-commit benchmark record.
//!
//! One [`PerfRecord`] is one bench run on one commit: which bench, which
//! commit, what configuration it was captured under (flags signature, core
//! count, rounds, warmups), and the multi-round [`MetricStats`] for every
//! metric the bench measured. Records serialize to a **canonical single JSON
//! line** — keys sorted, numbers in shortest round-trip form — so
//! `encode(decode(line)) == line` for any line this module wrote, and the
//! append-only history file diffs cleanly commit over commit.

use crate::json::{self, Value};
use crate::stats::MetricStats;
use std::collections::BTreeMap;

/// The record schema version. Bump on any shape change; the reader rejects
/// versions it does not know rather than misreading them.
pub const SCHEMA_VERSION: u32 = 1;

/// One bench run on one commit.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// The bench that produced this record (`"fleet_scale"`, …).
    pub bench: String,
    /// The commit the measured tree was at (short hash, or `"unknown"`).
    pub commit: String,
    /// Canonical configuration signature (sorted `key=value` pairs joined with
    /// `,`): records with different flags are never compared.
    pub flags: String,
    /// CPU cores visible to the run — a 1-core container and a 4-core CI
    /// runner produce incomparable numbers.
    pub cores: u32,
    /// Measurement rounds behind each metric's stats.
    pub rounds: u32,
    /// Untimed warmup rounds run before measuring.
    pub warmups: u32,
    /// Per-metric multi-round statistics, keyed by metric name.
    pub metrics: BTreeMap<String, MetricStats>,
}

impl MetricStats {
    /// Serialize as a canonical JSON object (keys sorted, shortest
    /// round-trip numbers) — the shape used both inside history records and
    /// in the `"spread"` section of the `BENCH_*.json` files the bench bins
    /// write.
    pub fn to_json(&self) -> String {
        let samples: Vec<String> = self.samples.iter().map(|s| json::fmt_f64(*s)).collect();
        format!(
            "{{\"iqr\":{},\"mad\":{},\"max\":{},\"median\":{},\"min\":{},\"samples\":[{}]}}",
            json::fmt_f64(self.iqr),
            json::fmt_f64(self.mad),
            json::fmt_f64(self.max),
            json::fmt_f64(self.median),
            json::fmt_f64(self.min),
            samples.join(",")
        )
    }

    /// Parse the object form produced by [`MetricStats::to_json`]. `key`
    /// names the metric in error messages.
    pub fn from_json(value: &Value, key: &str) -> Result<MetricStats, String> {
        let num = |field: &str| {
            value
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("metric {key:?}: missing numeric {field:?}"))
        };
        let samples = value
            .get("samples")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("metric {key:?}: missing \"samples\" array"))?
            .iter()
            .map(|s| {
                s.as_f64()
                    .ok_or_else(|| format!("metric {key:?}: non-numeric sample"))
            })
            .collect::<Result<Vec<f64>, String>>()?;
        Ok(MetricStats {
            median: num("median")?,
            min: num("min")?,
            max: num("max")?,
            mad: num("mad")?,
            iqr: num("iqr")?,
            samples,
        })
    }
}

impl PerfRecord {
    /// Serialize to the canonical single-line JSON form (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(key, stats)| format!("\"{}\":{}", json::escape(key), stats.to_json()))
            .collect();
        format!(
            "{{\"bench\":\"{}\",\"commit\":\"{}\",\"cores\":{},\"flags\":\"{}\",\"metrics\":{{{}}},\"rounds\":{},\"schema\":{},\"warmups\":{}}}",
            json::escape(&self.bench),
            json::escape(&self.commit),
            self.cores,
            json::escape(&self.flags),
            metrics.join(","),
            self.rounds,
            SCHEMA_VERSION,
            self.warmups,
        )
    }

    /// Parse one history line. Rejects unknown schema versions and malformed
    /// shapes with a description — the history file is a long-lived artifact,
    /// and a misread record is worse than a loud failure.
    pub fn parse(line: &str) -> Result<PerfRecord, String> {
        let value = json::parse(line).map_err(|e| format!("bad record JSON: {e}"))?;
        let schema = value
            .get("schema")
            .and_then(Value::as_f64)
            .ok_or("record has no \"schema\" field")? as u32;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unknown schema version {schema} (this reader understands {SCHEMA_VERSION})"
            ));
        }
        let text = |field: &str| {
            value
                .get(field)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record has no string {field:?}"))
        };
        let int = |field: &str| {
            value
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("record has no numeric {field:?}"))
                .map(|n| n as u32)
        };
        let metrics_obj = value
            .get("metrics")
            .and_then(Value::as_obj)
            .ok_or("record has no \"metrics\" object")?;
        let mut metrics = BTreeMap::new();
        for (key, stats_value) in metrics_obj {
            metrics.insert(key.clone(), MetricStats::from_json(stats_value, key)?);
        }
        Ok(PerfRecord {
            bench: text("bench")?,
            commit: text("commit")?,
            flags: text("flags")?,
            cores: int("cores")?,
            rounds: int("rounds")?,
            warmups: int("warmups")?,
            metrics,
        })
    }

    /// Whether `other` was captured under a comparable configuration: same
    /// bench, same flags signature, same core count. Rounds and warmups may
    /// differ (medians of different round counts are still comparable); flags
    /// or cores differing makes the numbers incommensurable, and the gate
    /// skips such records with a warning instead of raising a false alarm.
    pub fn comparable_with(&self, other: &PerfRecord) -> bool {
        self.bench == other.bench && self.flags == other.flags && self.cores == other.cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> PerfRecord {
        let mut metrics = BTreeMap::new();
        metrics.insert(
            "pages_per_second".to_string(),
            MetricStats::from_samples(&[512737.8, 513709.1, 509000.25]),
        );
        metrics.insert(
            "events_per_second".to_string(),
            MetricStats::from_samples(&[12103565.0]),
        );
        PerfRecord {
            bench: "fleet_scale".to_string(),
            commit: "d978f92".to_string(),
            flags: "epochs=2,nodes=64,workers=2".to_string(),
            cores: 1,
            rounds: 3,
            warmups: 1,
            metrics,
        }
    }

    #[test]
    fn encode_decode_reencode_is_byte_identical() {
        let line = record().to_json_line();
        assert!(!line.contains('\n'), "one record = one line");
        let parsed = PerfRecord::parse(&line).unwrap();
        assert_eq!(parsed, record());
        assert_eq!(parsed.to_json_line(), line);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let line = record()
            .to_json_line()
            .replace("\"schema\":1", "\"schema\":99");
        let err = PerfRecord::parse(&line).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn malformed_records_are_rejected_with_detail() {
        assert!(PerfRecord::parse("not json").is_err());
        assert!(PerfRecord::parse("{}").is_err());
        let no_metrics =
            r#"{"bench":"b","commit":"c","cores":1,"flags":"","rounds":1,"schema":1,"warmups":0}"#;
        assert!(PerfRecord::parse(no_metrics)
            .unwrap_err()
            .contains("metrics"));
    }

    #[test]
    fn comparability_requires_flags_and_cores() {
        let a = record();
        let mut b = record();
        assert!(a.comparable_with(&b));
        b.rounds = 5; // rounds may differ
        assert!(a.comparable_with(&b));
        b.cores = 4;
        assert!(!a.comparable_with(&b));
        b = record();
        b.flags = "epochs=4,nodes=64,workers=2".to_string();
        assert!(!a.comparable_with(&b));
    }
}
