//! Fleet-wide operational metrics.
//!
//! The paper evaluates ClearView per machine (overhead, patch-generation time). At
//! community scale the interesting quantities are aggregates: how many pages per
//! second the fleet sustains, how long an exploit takes from first detection to
//! community-wide immunity, how quickly a patch push reaches every member, and how
//! well the sharded manager plane parallelizes (per-shard busy time and the
//! manager-parallel speedup). [`FleetMetrics`] collects all of them; the
//! `fleet_scale` binary and `EXPERIMENTS.md` record captured runs.

use cv_isa::Addr;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// The immunity timeline for one failure location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmunityRecord {
    /// Epoch in which the failure was first reported.
    pub first_failure_epoch: u64,
    /// Epoch in which a repair survived evaluation fleet-wide, if one has.
    pub protected_epoch: Option<u64>,
}

impl ImmunityRecord {
    /// Epochs from first detection to fleet-wide immunity.
    pub fn epochs_to_immunity(&self) -> Option<u64> {
        self.protected_epoch
            .map(|p| p.saturating_sub(self.first_failure_epoch))
    }
}

/// Aggregate metrics for one fleet.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    /// Epochs executed.
    pub epochs: u64,
    /// Page presentations processed across all members.
    pub pages_processed: u64,
    /// Wall-clock time spent executing member runs (the parallel section).
    pub execution_time: Duration,
    /// Wall-clock time spent in the manager plane overall (routing, responder
    /// shards, plan merge).
    pub manager_time: Duration,
    /// Wall-clock time of the shard fan-out section of the manager (the part that
    /// runs in parallel).
    pub manager_fanout_time: Duration,
    /// Per-manager-shard busy time (accumulated across epochs).
    manager_shard_busy: Vec<Duration>,
    /// Shard busy time accumulated in epochs whose fan-out actually ran on multiple
    /// threads.
    manager_parallel_busy: Duration,
    /// Fan-out wall time of those same epochs.
    manager_parallel_wall: Duration,
    /// Wall-clock time spent distributing patches to members.
    pub patch_propagation_time: Duration,
    /// Patch pushes distributed (one push reaches every member).
    pub patch_pushes: u64,
    /// Per-member patch applications performed (pushes × members reached).
    pub patch_applications: u64,
    /// Learning pages traced during distributed learning.
    pub learning_pages: u64,
    /// Checkpoints taken by the coordinator.
    pub snapshots_taken: u64,
    /// Encoded size of the most recent checkpoint, in bytes.
    pub snapshot_bytes_last: u64,
    /// Encoded bytes across all checkpoints taken.
    pub snapshot_bytes_total: u64,
    /// Members bootstrapped from a full snapshot (warm joins + full resyncs).
    pub bootstraps: u64,
    /// Snapshot bytes shipped by bootstraps.
    pub bootstrap_bytes_total: u64,
    /// Members advanced by a shard-keyed delta instead of a full snapshot.
    pub delta_syncs: u64,
    /// Delta bytes actually shipped.
    pub delta_bytes_total: u64,
    /// Full-snapshot bytes the deltas stood in for.
    pub delta_full_bytes_total: u64,
    /// Deltas cut by the coordinator (incremental or diff-based).
    pub delta_cuts: u64,
    /// Deltas cut incrementally from the dirty-epoch plane (no base snapshot
    /// materialized, O(changed) instead of O(database)).
    pub incremental_delta_cuts: u64,
    /// Wall-clock time spent cutting deltas.
    pub delta_cut_time: Duration,
    /// Dirty store shards carried by the most recent delta cut.
    pub dirty_shards_last: u64,
    /// Dirty store shards summed across all delta cuts.
    pub dirty_shards_total: u64,
    /// Shards touched by patch-plan application since the most recent
    /// incremental cut's base — the configuration-change footprint the plan
    /// stamps record (0 when the cut took the diff fallback: no tracker there).
    pub plan_dirty_shards_last: u64,
    /// Members that crashed with state loss.
    pub crashes: u64,
    /// Members that rejoined after a crash.
    pub rejoins: u64,
    /// Members that joined mid-run with no state transfer.
    pub cold_joins: u64,
    /// Members that joined mid-run from the coordinator's snapshot.
    pub warm_joins: u64,
    /// Epochs from each (re)joining member's sync to its first completed
    /// presentation — the late-joiner time-to-immunity samples.
    joiner_immunity_epochs: Vec<u64>,
    /// Immunity timelines per failure location.
    immunity: BTreeMap<Addr, ImmunityRecord>,
}

impl FleetMetrics {
    /// Metrics for a fleet whose manager plane has `manager_shard_count` shards.
    pub(crate) fn with_manager_shards(manager_shard_count: usize) -> Self {
        FleetMetrics {
            manager_shard_busy: vec![Duration::ZERO; manager_shard_count.max(1)],
            ..Default::default()
        }
    }

    /// Record that `pages` presentations were executed this epoch.
    pub(crate) fn record_epoch(&mut self, pages: u64, execution: Duration, manager: Duration) {
        self.epochs += 1;
        self.pages_processed += pages;
        self.execution_time += execution;
        self.manager_time += manager;
    }

    /// Record one epoch's manager fan-out: each shard's busy time, the wall time of
    /// the fan-out section, and whether the fan-out actually ran on multiple
    /// threads.
    pub(crate) fn record_manager_fanout(
        &mut self,
        shard_busy: &[Duration],
        fanout: Duration,
        ran_parallel: bool,
    ) {
        if self.manager_shard_busy.len() < shard_busy.len() {
            self.manager_shard_busy
                .resize(shard_busy.len(), Duration::ZERO);
        }
        for (total, busy) in self.manager_shard_busy.iter_mut().zip(shard_busy) {
            *total += *busy;
        }
        self.manager_fanout_time += fanout;
        if ran_parallel {
            self.manager_parallel_busy += shard_busy.iter().sum::<Duration>();
            self.manager_parallel_wall += fanout;
        }
    }

    /// Record one patch-push round reaching `members` members.
    pub(crate) fn record_patch_push(&mut self, pushes: u64, members: u64, elapsed: Duration) {
        self.patch_pushes += pushes;
        self.patch_applications += pushes * members;
        self.patch_propagation_time += elapsed;
    }

    /// Record the first failure ever reported at `location`.
    pub(crate) fn record_first_failure(&mut self, location: Addr, epoch: u64) {
        self.immunity.entry(location).or_insert(ImmunityRecord {
            first_failure_epoch: epoch,
            protected_epoch: None,
        });
    }

    /// Record that `location` became protected at `epoch`.
    pub(crate) fn record_protected(&mut self, location: Addr, epoch: u64) {
        if let Some(record) = self.immunity.get_mut(&location) {
            record.protected_epoch.get_or_insert(epoch);
        }
    }

    /// Record one coordinator checkpoint of `bytes` encoded bytes.
    pub(crate) fn record_snapshot(&mut self, bytes: u64) {
        self.snapshots_taken += 1;
        self.snapshot_bytes_last = bytes;
        self.snapshot_bytes_total += bytes;
    }

    /// Record one member bootstrapped from a `bytes`-byte full snapshot.
    pub(crate) fn record_bootstrap(&mut self, bytes: u64) {
        self.bootstraps += 1;
        self.bootstrap_bytes_total += bytes;
    }

    /// Record one member delta-synced: `delta_bytes` shipped instead of
    /// `full_bytes`.
    pub(crate) fn record_delta_sync(&mut self, delta_bytes: u64, full_bytes: u64) {
        self.delta_syncs += 1;
        self.delta_bytes_total += delta_bytes;
        self.delta_full_bytes_total += full_bytes;
    }

    /// Record one delta cut carrying `dirty_shards` dirty shards (and, for
    /// incremental cuts, `plan_shards` plan-stamped shards since the base),
    /// taking `elapsed`, via the incremental dirty-epoch path or the
    /// materialized diff.
    pub(crate) fn record_delta_cut(
        &mut self,
        dirty_shards: u64,
        plan_shards: u64,
        elapsed: Duration,
        incremental: bool,
    ) {
        self.delta_cuts += 1;
        if incremental {
            self.incremental_delta_cuts += 1;
        }
        self.delta_cut_time += elapsed;
        self.dirty_shards_last = dirty_shards;
        self.dirty_shards_total += dirty_shards;
        self.plan_dirty_shards_last = plan_shards;
    }

    /// Mean wall-clock time per delta cut, in microseconds.
    pub fn mean_delta_cut_micros(&self) -> f64 {
        if self.delta_cuts == 0 {
            0.0
        } else {
            self.delta_cut_time.as_secs_f64() * 1e6 / self.delta_cuts as f64
        }
    }

    /// Record one joiner reaching its first completed presentation `epochs` epochs
    /// after syncing.
    pub(crate) fn record_joiner_immunity(&mut self, epochs: u64) {
        self.joiner_immunity_epochs.push(epochs);
    }

    /// The late-joiner time-to-immunity samples (epochs from sync to first
    /// completed presentation), in sync order.
    pub fn joiner_immunity_epochs(&self) -> &[u64] {
        &self.joiner_immunity_epochs
    }

    /// The worst late-joiner time-to-immunity observed, in epochs.
    pub fn max_joiner_immunity_epochs(&self) -> Option<u64> {
        self.joiner_immunity_epochs.iter().copied().max()
    }

    /// How many times smaller the shipped deltas were than the full snapshots they
    /// replaced (1.0 when no delta sync has happened).
    pub fn delta_savings(&self) -> f64 {
        if self.delta_bytes_total == 0 || self.delta_full_bytes_total == 0 {
            1.0
        } else {
            self.delta_full_bytes_total as f64 / self.delta_bytes_total as f64
        }
    }

    /// The immunity timeline for `location`, if a failure was ever reported there.
    pub fn immunity(&self, location: Addr) -> Option<ImmunityRecord> {
        self.immunity.get(&location).copied()
    }

    /// All immunity timelines.
    pub fn immunity_records(&self) -> impl Iterator<Item = (Addr, ImmunityRecord)> + '_ {
        self.immunity.iter().map(|(a, r)| (*a, *r))
    }

    /// Sustained throughput of the execution phase, in pages per second.
    pub fn pages_per_second(&self) -> f64 {
        let secs = self.execution_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.pages_processed as f64 / secs
        }
    }

    /// Mean wall-clock patch-propagation latency per push (time to reach the whole
    /// fleet).
    pub fn mean_push_latency(&self) -> Option<Duration> {
        if self.patch_pushes == 0 {
            None
        } else {
            Some(self.patch_propagation_time / self.patch_pushes as u32)
        }
    }

    /// Per-manager-shard busy time accumulated across epochs.
    pub fn manager_shard_times(&self) -> &[Duration] {
        &self.manager_shard_busy
    }

    /// Mean manager-plane time per epoch, in milliseconds.
    pub fn manager_ms_per_epoch(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.manager_time.as_secs_f64() * 1e3 / self.epochs as f64
        }
    }

    /// The manager-parallel speedup: total shard busy time divided by fan-out wall
    /// time, over the epochs whose fan-out actually ran on multiple threads.
    ///
    /// Exactly 1.0 when every fan-out ran inline (single worker, single core, or no
    /// manager work at all — running shards back-to-back *is* the baseline);
    /// approaches the shard count when busy time spreads evenly across parallel
    /// workers.
    pub fn manager_parallel_speedup(&self) -> f64 {
        let busy = self.manager_parallel_busy.as_secs_f64();
        let wall = self.manager_parallel_wall.as_secs_f64();
        if busy == 0.0 || wall == 0.0 {
            1.0
        } else {
            busy / wall
        }
    }
}

impl fmt::Display for FleetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet metrics: {} epochs, {} pages ({:.0} pages/sec execution)",
            self.epochs,
            self.pages_processed,
            self.pages_per_second()
        )?;
        writeln!(
            f,
            "  time: execution {:?}, manager {:?}, patch propagation {:?}",
            self.execution_time, self.manager_time, self.patch_propagation_time
        )?;
        writeln!(
            f,
            "  manager plane: {:.3} ms/epoch, {} shard(s), parallel speedup {:.2}x",
            self.manager_ms_per_epoch(),
            self.manager_shard_busy.len(),
            self.manager_parallel_speedup()
        )?;
        if self.manager_shard_busy.iter().any(|d| !d.is_zero()) {
            let per_shard: Vec<String> = self
                .manager_shard_busy
                .iter()
                .map(|d| format!("{:.3}ms", d.as_secs_f64() * 1e3))
                .collect();
            writeln!(f, "  manager shard busy: [{}]", per_shard.join(", "))?;
        }
        writeln!(
            f,
            "  patches: {} pushes, {} member applications{}",
            self.patch_pushes,
            self.patch_applications,
            match self.mean_push_latency() {
                Some(lat) => format!(", mean push latency {lat:?}"),
                None => String::new(),
            }
        )?;
        if self.snapshots_taken > 0 || self.bootstraps > 0 || self.delta_syncs > 0 {
            writeln!(
                f,
                "  durability: {} checkpoint(s) (last {} bytes), {} bootstrap(s) ({} bytes), \
                 {} delta sync(s) ({} vs {} full bytes, {:.1}x saved)",
                self.snapshots_taken,
                self.snapshot_bytes_last,
                self.bootstraps,
                self.bootstrap_bytes_total,
                self.delta_syncs,
                self.delta_bytes_total,
                self.delta_full_bytes_total,
                self.delta_savings()
            )?;
        }
        if self.delta_cuts > 0 {
            writeln!(
                f,
                "  delta cuts: {} ({} incremental), mean {:.1}µs, last touched {} dirty shard(s) \
                 ({} plan-stamped)",
                self.delta_cuts,
                self.incremental_delta_cuts,
                self.mean_delta_cut_micros(),
                self.dirty_shards_last,
                self.plan_dirty_shards_last
            )?;
        }
        if self.crashes > 0 || self.cold_joins > 0 || self.warm_joins > 0 {
            writeln!(
                f,
                "  churn: {} crash(es), {} rejoin(s), {} warm join(s), {} cold join(s){}",
                self.crashes,
                self.rejoins,
                self.warm_joins,
                self.cold_joins,
                match self.max_joiner_immunity_epochs() {
                    Some(max) => format!(", joiner time-to-immunity <= {max} epoch(s)"),
                    None => String::new(),
                }
            )?;
        }
        for (addr, record) in &self.immunity {
            match record.epochs_to_immunity() {
                Some(epochs) => writeln!(
                    f,
                    "  failure 0x{addr:x}: immune after {epochs} epoch(s) (first seen epoch {})",
                    record.first_failure_epoch
                )?,
                None => writeln!(
                    f,
                    "  failure 0x{addr:x}: not yet immune (first seen epoch {})",
                    record.first_failure_epoch
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immunity_timeline_tracks_first_failure_and_protection() {
        let mut m = FleetMetrics::default();
        m.record_first_failure(0x40, 3);
        m.record_first_failure(0x40, 5); // later reports don't move the origin
        assert_eq!(m.immunity(0x40).unwrap().first_failure_epoch, 3);
        assert_eq!(m.immunity(0x40).unwrap().epochs_to_immunity(), None);
        m.record_protected(0x40, 7);
        m.record_protected(0x40, 9); // protection epoch is sticky
        assert_eq!(m.immunity(0x40).unwrap().epochs_to_immunity(), Some(4));
        assert!(m.immunity(0x99).is_none());
    }

    #[test]
    fn throughput_and_latency_aggregate() {
        let mut m = FleetMetrics::default();
        m.record_epoch(500, Duration::from_millis(250), Duration::from_millis(10));
        m.record_epoch(500, Duration::from_millis(250), Duration::from_millis(10));
        assert_eq!(m.pages_processed, 1000);
        assert!((m.pages_per_second() - 2000.0).abs() < 1.0);
        m.record_patch_push(2, 1000, Duration::from_millis(8));
        assert_eq!(m.patch_applications, 2000);
        assert_eq!(m.mean_push_latency(), Some(Duration::from_millis(4)));
    }
}
