//! The guest machine: registers, flags, memory, heap, and I/O ports.
//!
//! The machine executes *data* instructions (moves, arithmetic, allocation, copies,
//! I/O). Control-flow instructions are executed by the
//! [`crate::env::ManagedExecutionEnvironment`], which needs to interpose the Memory
//! Firewall and the Shadow Stack on every transfer.

use crate::error::CrashKind;
use crate::heap::{HeapAllocator, CANARY};
use crate::memory::Memory;
use cv_isa::{Addr, BinaryImage, Flags, Inst, MemRef, MemoryLayout, Operand, Port, Reg, Word};

/// A fault raised by a memory access or data instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// The guest crashed (unmapped access, code write, stack fault, ...).
    Crash(CrashKind),
    /// Heap Guard detected an out-of-bounds heap write at `addr`.
    HeapGuardViolation {
        /// The heap address whose canary was about to be overwritten.
        addr: Addr,
    },
}

impl From<CrashKind> for MemFault {
    fn from(c: CrashKind) -> Self {
        MemFault::Crash(c)
    }
}

/// The result of executing a `copy` intrinsic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyOutcome {
    /// Words actually copied.
    pub copied: u64,
    /// True if the copy stopped early because it reached unwritable memory. This models
    /// the fault boundary that ends a runaway `memcpy` in the real system; execution
    /// continues afterwards, typically with corrupted state that a monitor catches at
    /// the next control transfer.
    pub clamped: bool,
}

/// The guest CPU, memory, heap, and I/O state for one run.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [Word; 8],
    /// Condition flags.
    pub flags: Flags,
    /// The instruction pointer.
    pub eip: Addr,
    mem: Memory,
    heap: HeapAllocator,
    heap_guard_enabled: bool,
    input: Vec<Word>,
    input_pos: usize,
    render_output: Vec<Word>,
    debug_output: Vec<Word>,
    /// Number of Heap Guard canary comparisons performed (cost model).
    pub heap_guard_checks: u64,
}

impl Machine {
    /// Create a machine with `image` loaded, the given input stream, and Heap Guard
    /// enabled or not.
    pub fn new(image: &BinaryImage, input: Vec<Word>, heap_guard_enabled: bool) -> Machine {
        Self::with_memory(image, Memory::load(image), input, heap_guard_enabled)
    }

    /// Create a machine whose address space is a copy-on-write overlay over a shared
    /// pristine base (see [`Memory::cow`]) — behaviourally identical to
    /// [`Machine::new`] without the per-machine address-space copy.
    pub fn with_cow(
        image: &BinaryImage,
        base: std::sync::Arc<[Word]>,
        input: Vec<Word>,
        heap_guard_enabled: bool,
    ) -> Machine {
        Self::with_memory(
            image,
            Memory::cow(image.layout, base),
            input,
            heap_guard_enabled,
        )
    }

    fn with_memory(
        image: &BinaryImage,
        mem: Memory,
        input: Vec<Word>,
        heap_guard_enabled: bool,
    ) -> Machine {
        let layout = image.layout;
        let mut regs = [0u32; 8];
        regs[Reg::Esp.index()] = layout.initial_sp();
        Machine {
            regs,
            flags: Flags::default(),
            eip: image.entry,
            mem,
            heap: HeapAllocator::new(layout),
            heap_guard_enabled,
            input,
            input_pos: 0,
            render_output: Vec::new(),
            debug_output: Vec::new(),
            heap_guard_checks: 0,
        }
    }

    /// The guest address-space layout.
    pub fn layout(&self) -> MemoryLayout {
        self.mem.layout()
    }

    /// Whether Heap Guard write checks are active.
    pub fn heap_guard_enabled(&self) -> bool {
        self.heap_guard_enabled
    }

    /// Read a register.
    pub fn reg(&self, r: Reg) -> Word {
        self.regs[r.index()]
    }

    /// Write a register.
    pub fn set_reg(&mut self, r: Reg, v: Word) {
        self.regs[r.index()] = v;
    }

    /// The words rendered to the output port so far.
    pub fn render_output(&self) -> &[Word] {
        &self.render_output
    }

    /// The words written to the debug port so far.
    pub fn debug_output(&self) -> &[Word] {
        &self.debug_output
    }

    /// Number of live heap allocations (diagnostics).
    pub fn live_allocations(&self) -> usize {
        self.heap.live_count()
    }

    /// Compute the effective address of a memory reference.
    pub fn effective_addr(&self, m: &MemRef) -> Addr {
        let mut addr = m.disp as u32;
        if let Some(b) = m.base {
            addr = addr.wrapping_add(self.reg(b));
        }
        if let Some(i) = m.index {
            addr = addr.wrapping_add(self.reg(i).wrapping_mul(m.scale.max(1) as u32));
        }
        addr
    }

    /// Read a word of guest memory.
    pub fn read_mem(&self, addr: Addr) -> Result<Word, MemFault> {
        self.mem.read(addr).map_err(MemFault::from)
    }

    /// Write a word of guest memory, applying the Heap Guard check when enabled.
    pub fn write_mem(&mut self, addr: Addr, value: Word) -> Result<(), MemFault> {
        if self.heap_guard_enabled && self.mem.layout().segment_of(addr) == cv_isa::Segment::Heap {
            self.heap_guard_checks += 1;
            // Heap Guard: a write that would overwrite a canary word is out of bounds
            // unless the address is inside some live allocation (the application may
            // legitimately have written the canary value itself).
            if self.mem.read_raw(addr) == CANARY && !self.heap.is_within_live_allocation(addr) {
                return Err(MemFault::HeapGuardViolation { addr });
            }
        }
        self.mem.write(addr, value).map_err(MemFault::from)
    }

    /// Read the value of an operand. Immediate and register reads cannot fault.
    pub fn read_operand(&self, op: &Operand) -> Result<Word, MemFault> {
        match op {
            Operand::Reg(r) => Ok(self.reg(*r)),
            Operand::Imm(v) => Ok(*v),
            Operand::Mem(m) => self.read_mem(self.effective_addr(m)),
        }
    }

    /// Write the value of a writable operand.
    ///
    /// Writing an immediate operand is a host-side bug; it is reported as an invalid
    /// instruction crash at the current `eip` rather than panicking.
    pub fn write_operand(&mut self, op: &Operand, value: Word) -> Result<(), MemFault> {
        match op {
            Operand::Reg(r) => {
                self.set_reg(*r, value);
                Ok(())
            }
            Operand::Imm(_) => Err(MemFault::Crash(CrashKind::InvalidInstruction {
                addr: self.eip,
            })),
            Operand::Mem(m) => self.write_mem(self.effective_addr(m), value),
        }
    }

    /// Push a word onto the guest stack.
    pub fn push(&mut self, value: Word) -> Result<(), MemFault> {
        let sp = self.reg(Reg::Esp).wrapping_sub(1);
        if self.mem.layout().segment_of(sp) != cv_isa::Segment::Stack {
            return Err(MemFault::Crash(CrashKind::StackFault { sp }));
        }
        self.set_reg(Reg::Esp, sp);
        // Stack writes are never heap writes, but go through write_mem for uniformity.
        self.write_mem(sp, value)
    }

    /// Pop a word off the guest stack.
    pub fn pop(&mut self) -> Result<Word, MemFault> {
        let sp = self.reg(Reg::Esp);
        if self.mem.layout().segment_of(sp) != cv_isa::Segment::Stack {
            return Err(MemFault::Crash(CrashKind::StackFault { sp }));
        }
        let v = self.read_mem(sp)?;
        self.set_reg(Reg::Esp, sp.wrapping_add(1));
        Ok(v)
    }

    /// Allocate guest heap memory. Returns the user address.
    pub fn heap_alloc(&mut self, size: u32) -> Result<Addr, MemFault> {
        self.heap.alloc(&mut self.mem, size).map_err(MemFault::from)
    }

    /// Free guest heap memory.
    pub fn heap_free(&mut self, addr: Addr) -> Result<(), MemFault> {
        self.heap.free(addr).map_err(MemFault::from)
    }

    /// Read the next input word (0 when the input stream is exhausted).
    pub fn port_in(&mut self, port: Port) -> Word {
        match port {
            Port::Input => {
                let v = self.input.get(self.input_pos).copied().unwrap_or(0);
                self.input_pos += 1;
                v
            }
            // Reading from output ports yields 0; kept total for robustness.
            Port::Render | Port::Debug => 0,
        }
    }

    /// Write a word to an output port.
    pub fn port_out(&mut self, port: Port, value: Word) {
        match port {
            Port::Render => self.render_output.push(value),
            Port::Debug => self.debug_output.push(value),
            Port::Input => {}
        }
    }

    /// Words of input remaining.
    pub fn input_remaining(&self) -> usize {
        self.input.len().saturating_sub(self.input_pos)
    }

    /// Execute the `copy` intrinsic: copy up to `len` words from `src` to `dst`.
    ///
    /// The copy stops early (without crashing) when it reaches memory that cannot be
    /// written (unmapped space or the code segment) or read; this models the fault
    /// boundary that terminates a runaway `memcpy` in the real system. Heap Guard
    /// violations abort the copy and are reported to the caller.
    pub fn copy_words(&mut self, dst: Addr, src: Addr, len: u64) -> Result<CopyOutcome, MemFault> {
        let mut copied = 0u64;
        while copied < len {
            let s = src.wrapping_add(copied as u32);
            let d = dst.wrapping_add(copied as u32);
            let value = match self.read_mem(s) {
                Ok(v) => v,
                Err(MemFault::Crash(_)) => {
                    return Ok(CopyOutcome {
                        copied,
                        clamped: true,
                    })
                }
                Err(e) => return Err(e),
            };
            match self.write_mem(d, value) {
                Ok(()) => {}
                Err(MemFault::Crash(CrashKind::UnmappedAccess { .. }))
                | Err(MemFault::Crash(CrashKind::CodeWrite { .. })) => {
                    return Ok(CopyOutcome {
                        copied,
                        clamped: true,
                    })
                }
                Err(e) => return Err(e),
            }
            copied += 1;
        }
        Ok(CopyOutcome {
            copied,
            clamped: false,
        })
    }

    /// Execute a non-control-flow instruction.
    ///
    /// # Panics
    ///
    /// Never panics; control-flow instructions passed here are reported as invalid
    /// instruction crashes (they are the environment's responsibility).
    pub fn exec_data_inst(&mut self, inst: &Inst) -> Result<(), MemFault> {
        match *inst {
            Inst::Mov { dst, src } => {
                let v = self.read_operand(&src)?;
                self.write_operand(&dst, v)
            }
            Inst::Lea { dst, mem } => {
                let addr = self.effective_addr(&mem);
                self.set_reg(dst, addr);
                Ok(())
            }
            Inst::Add { dst, src } => self.binop(dst, src, |a, b| {
                let (r, c) = a.overflowing_add(b);
                let (_, o) = (a as i32).overflowing_add(b as i32);
                (r, c, o)
            }),
            Inst::Sub { dst, src } => self.binop(dst, src, |a, b| {
                let (r, c) = a.overflowing_sub(b);
                let (_, o) = (a as i32).overflowing_sub(b as i32);
                (r, c, o)
            }),
            Inst::Mul { dst, src } => {
                let a = self.reg(dst);
                let b = self.read_operand(&src)?;
                let (r, o) = (a as i32).overflowing_mul(b as i32);
                self.set_reg(dst, r as u32);
                self.flags = Flags::from_result(r as u32, o, o);
                Ok(())
            }
            Inst::And { dst, src } => self.binop(dst, src, |a, b| (a & b, false, false)),
            Inst::Or { dst, src } => self.binop(dst, src, |a, b| (a | b, false, false)),
            Inst::Xor { dst, src } => self.binop(dst, src, |a, b| (a ^ b, false, false)),
            Inst::Shl { dst, src } => {
                self.binop(dst, src, |a, b| (a.wrapping_shl(b & 31), false, false))
            }
            Inst::Shr { dst, src } => {
                self.binop(dst, src, |a, b| (a.wrapping_shr(b & 31), false, false))
            }
            Inst::Cmp { a, b } => {
                let av = self.read_operand(&a)?;
                let bv = self.read_operand(&b)?;
                self.flags = Flags::from_cmp(av, bv);
                Ok(())
            }
            Inst::Test { a, b } => {
                let av = self.read_operand(&a)?;
                let bv = self.read_operand(&b)?;
                self.flags = Flags::from_result(av & bv, false, false);
                Ok(())
            }
            Inst::Push { src } => {
                let v = self.read_operand(&src)?;
                self.push(v)
            }
            Inst::Pop { dst } => {
                let v = self.pop()?;
                self.write_operand(&dst, v)
            }
            Inst::Alloc { size, dst } => {
                let sz = self.read_operand(&size)?;
                let addr = self.heap_alloc(sz)?;
                self.set_reg(dst, addr);
                Ok(())
            }
            Inst::Free { ptr } => {
                let p = self.read_operand(&ptr)?;
                self.heap_free(p)
            }
            Inst::Copy { dst, src, len } => {
                let d = self.read_operand(&dst)?;
                let s = self.read_operand(&src)?;
                let l = self.read_operand(&len)?;
                // memcpy semantics: the length is unsigned.
                self.copy_words(d, s, l as u64).map(|_| ())
            }
            Inst::In { dst, port } => {
                let v = self.port_in(port);
                self.set_reg(dst, v);
                Ok(())
            }
            Inst::Out { src, port } => {
                let v = self.read_operand(&src)?;
                self.port_out(port, v);
                Ok(())
            }
            Inst::Nop => Ok(()),
            // Control flow and halt are the environment's responsibility.
            Inst::Jmp { .. }
            | Inst::JmpIndirect { .. }
            | Inst::Jcc { .. }
            | Inst::Call { .. }
            | Inst::CallIndirect { .. }
            | Inst::Ret
            | Inst::Halt => Err(MemFault::Crash(CrashKind::InvalidInstruction {
                addr: self.eip,
            })),
        }
    }

    fn binop(
        &mut self,
        dst: Operand,
        src: Operand,
        f: impl Fn(u32, u32) -> (u32, bool, bool),
    ) -> Result<(), MemFault> {
        let a = self.read_operand(&dst)?;
        let b = self.read_operand(&src)?;
        let (r, carry, overflow) = f(a, b);
        self.flags = Flags::from_result(r, carry, overflow);
        self.write_operand(&dst, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::ProgramBuilder;

    fn image() -> BinaryImage {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.halt();
        b.set_entry(main);
        b.build().unwrap()
    }

    fn machine() -> Machine {
        Machine::new(&image(), vec![10, 20, 30], true)
    }

    #[test]
    fn initial_state() {
        let m = machine();
        assert_eq!(m.reg(Reg::Esp), m.layout().initial_sp());
        assert_eq!(m.eip, image().entry);
        assert_eq!(m.reg(Reg::Eax), 0);
    }

    #[test]
    fn mov_and_arithmetic() {
        let mut m = machine();
        m.exec_data_inst(&Inst::Mov {
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Imm(5),
        })
        .unwrap();
        m.exec_data_inst(&Inst::Add {
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Imm(7),
        })
        .unwrap();
        assert_eq!(m.reg(Reg::Eax), 12);
        m.exec_data_inst(&Inst::Sub {
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Imm(12),
        })
        .unwrap();
        assert_eq!(m.reg(Reg::Eax), 0);
        assert!(m.flags.zero);
    }

    #[test]
    fn push_pop_round_trip() {
        let mut m = machine();
        m.push(111).unwrap();
        m.push(222).unwrap();
        assert_eq!(m.pop().unwrap(), 222);
        assert_eq!(m.pop().unwrap(), 111);
        assert_eq!(m.reg(Reg::Esp), m.layout().initial_sp());
    }

    #[test]
    fn pop_from_empty_stack_is_a_stack_fault() {
        let mut m = machine();
        assert!(matches!(
            m.pop(),
            Err(MemFault::Crash(CrashKind::StackFault { .. }))
        ));
    }

    #[test]
    fn lea_computes_address_without_access() {
        let mut m = machine();
        m.set_reg(Reg::Ebx, 100);
        m.set_reg(Reg::Ecx, 3);
        m.exec_data_inst(&Inst::Lea {
            dst: Reg::Esi,
            mem: MemRef::indexed(Reg::Ebx, Reg::Ecx, 4, 2),
        })
        .unwrap();
        assert_eq!(m.reg(Reg::Esi), 100 + 3 * 4 + 2);
    }

    #[test]
    fn heap_alloc_and_heap_guard_violation() {
        let mut m = machine();
        let p = m.heap_alloc(4).unwrap();
        // In-bounds writes are fine.
        m.write_mem(p, 1).unwrap();
        m.write_mem(p + 3, 2).unwrap();
        // Overwriting the trailing canary is an out-of-bounds write.
        let err = m.write_mem(p + 4, 0x41).unwrap_err();
        assert_eq!(err, MemFault::HeapGuardViolation { addr: p + 4 });
        assert!(m.heap_guard_checks > 0);
    }

    #[test]
    fn heap_guard_disabled_allows_overflow() {
        let mut m = Machine::new(&image(), vec![], false);
        let p = m.heap_alloc(4).unwrap();
        // Without Heap Guard the canary is silently clobbered.
        m.write_mem(p + 4, 0x41).unwrap();
        assert_eq!(m.read_mem(p + 4).unwrap(), 0x41);
    }

    #[test]
    fn legitimate_canary_value_inside_allocation_is_allowed() {
        let mut m = machine();
        let p = m.heap_alloc(4).unwrap();
        // The application writes the canary value itself, inside bounds...
        m.write_mem(p + 1, CANARY).unwrap();
        // ...and then overwrites it again: allocation map check passes.
        m.write_mem(p + 1, 7).unwrap();
        assert_eq!(m.read_mem(p + 1).unwrap(), 7);
    }

    #[test]
    fn copy_clamps_at_unwritable_memory() {
        let mut m = Machine::new(&image(), vec![], false);
        let layout = m.layout();
        let src = m.heap_alloc(8).unwrap();
        for i in 0..8 {
            m.write_mem(src + i, 0x41 + i).unwrap();
        }
        // Destination near the very top of the stack: a huge length clamps at the end
        // of the stack segment instead of crashing.
        let dst = layout.stack_end() - 4;
        let out = m.copy_words(dst, src, u32::MAX as u64).unwrap();
        assert!(out.clamped);
        assert_eq!(out.copied, 4);
        assert_eq!(m.read_mem(dst).unwrap(), 0x41);
    }

    #[test]
    fn copy_reports_heap_guard_violation() {
        let mut m = machine();
        let dst = m.heap_alloc(2).unwrap();
        let src = m.heap_alloc(8).unwrap();
        for i in 0..8 {
            m.write_mem(src + i, i).unwrap();
        }
        let err = m.copy_words(dst, src, 8).unwrap_err();
        assert!(matches!(err, MemFault::HeapGuardViolation { .. }));
    }

    #[test]
    fn input_port_reads_sequentially_and_pads_with_zero() {
        let mut m = machine();
        assert_eq!(m.port_in(Port::Input), 10);
        assert_eq!(m.port_in(Port::Input), 20);
        assert_eq!(m.port_in(Port::Input), 30);
        assert_eq!(m.port_in(Port::Input), 0);
        assert_eq!(m.input_remaining(), 0);
    }

    #[test]
    fn output_ports_accumulate() {
        let mut m = machine();
        m.port_out(Port::Render, 1);
        m.port_out(Port::Render, 2);
        m.port_out(Port::Debug, 9);
        assert_eq!(m.render_output(), &[1, 2]);
        assert_eq!(m.debug_output(), &[9]);
    }

    #[test]
    fn control_flow_in_exec_data_inst_is_rejected() {
        let mut m = machine();
        assert!(m.exec_data_inst(&Inst::Ret).is_err());
        assert!(m.exec_data_inst(&Inst::Halt).is_err());
    }

    #[test]
    fn write_to_immediate_is_reported_not_panicked() {
        let mut m = machine();
        assert!(m.write_operand(&Operand::Imm(3), 5).is_err());
    }
}
