//! The delivery-independence property behind the whole chaos plane: applying a
//! fleet envelope stream in **any permutation, with any duplicates** yields the
//! same merged [`InvariantDatabase`] and the same net [`PatchPlan`] as
//! in-order exactly-once delivery.
//!
//! [`SequencedApplier`] is the executable model of the coordinator's apply
//! discipline — deduplicate by `(from, epoch, seq)`, stash state-bearing
//! payloads by sequence key, fold in key order — and the live `Fleet` applies
//! uploads and patch pushes the same way. Proving the model delivery-order
//! independent is what licenses the transport to drop, duplicate, reorder, and
//! retransmit freely.

use cv_core::{Directive, PatchPlan};
use cv_fleet::{Envelope, EnvelopePayload, SequencedApplier, COORDINATOR};
use cv_inference::{Invariant, InvariantDatabase, Variable};
use cv_isa::Operand;
use cv_patch::{CheckPatch, RepairPatch, RepairStrategy};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use std::sync::Arc;

fn invariant_strategy() -> BoxedStrategy<Invariant> {
    prop_oneof![
        (
            0x4_0000u32..0x4_1000,
            prop::collection::vec(any::<u32>(), 1..4)
        )
            .prop_map(|(addr, values)| Invariant::OneOf {
                var: Variable::read(addr, 0, Operand::Imm(0)),
                values: values.into_iter().collect(),
            }),
        (0x4_0000u32..0x4_1000, any::<i32>()).prop_map(|(addr, min)| Invariant::LowerBound {
            var: Variable::read(addr, 1, Operand::Imm(1)),
            min,
        }),
    ]
    .boxed()
}

fn database_strategy() -> BoxedStrategy<InvariantDatabase> {
    prop::collection::vec(invariant_strategy(), 1..5)
        .prop_map(|invs| {
            let mut db = InvariantDatabase::new();
            for inv in invs {
                db.insert(inv);
            }
            db.recount();
            db
        })
        .boxed()
}

fn plan_strategy() -> BoxedStrategy<PatchPlan> {
    let directive = prop_oneof![
        invariant_strategy().prop_map(|inv| Directive::InstallChecks(vec![CheckPatch::new(inv)])),
        Just(Directive::RemoveChecks),
        (invariant_strategy(), any::<u32>()).prop_map(|(invariant, value)| {
            Directive::InstallRepair(RepairPatch {
                invariant,
                strategy: RepairStrategy::SetValue { value },
            })
        }),
        Just(Directive::RemoveRepair),
    ];
    prop::collection::vec((0x4_0000u32..0x4_1000, directive), 0..4)
        .prop_map(|ops| {
            let mut plan = PatchPlan::new();
            for (loc, dir) in ops {
                plan.push(loc, dir);
            }
            plan
        })
        .boxed()
}

/// One raw stream element before sequencing: which member it is from and what
/// it carries.
#[derive(Debug, Clone)]
enum Element {
    Upload(u32, InvariantDatabase),
    Push(u32, PatchPlan),
    Page(u32),
}

fn element_strategy() -> BoxedStrategy<Element> {
    prop_oneof![
        (0u32..16, database_strategy()).prop_map(|(node, db)| Element::Upload(node, db)),
        (0u32..16, plan_strategy()).prop_map(|(node, plan)| Element::Push(node, plan)),
        (0u32..16).prop_map(Element::Page),
    ]
    .boxed()
}

/// Assign epoch-grouped, strictly increasing sequence numbers — the shape the
/// fleet's single coordinator counter produces.
fn sequence(elements: Vec<Element>, epochs: u64) -> Vec<Envelope> {
    let per_epoch = elements.len().div_ceil(epochs.max(1) as usize).max(1);
    elements
        .into_iter()
        .enumerate()
        .map(|(i, element)| {
            let epoch = 1 + (i / per_epoch) as u64;
            let seq = i as u64;
            match element {
                Element::Upload(node, db) => Envelope {
                    from: node,
                    to: COORDINATOR,
                    epoch,
                    seq,
                    payload: EnvelopePayload::Upload {
                        invariants: Arc::new(db),
                        procs: Arc::new(Vec::new()),
                    },
                },
                Element::Push(node, plan) => Envelope {
                    from: COORDINATOR,
                    to: node,
                    epoch,
                    seq,
                    payload: EnvelopePayload::PatchPush(Arc::new(plan)),
                },
                Element::Page(node) => Envelope {
                    from: COORDINATOR,
                    to: node,
                    epoch,
                    seq,
                    payload: EnvelopePayload::Page(vec![seq as u32]),
                },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any permutation-with-duplicates of the stream applies identically to
    /// in-order exactly-once delivery.
    #[test]
    fn any_permutation_with_duplicates_applies_identically(
        elements in prop::collection::vec(element_strategy(), 1..24),
        epochs in 1u64..4,
        order in prop::collection::vec(any::<usize>(), 0..64),
        dup_picks in prop::collection::vec(any::<usize>(), 0..24),
    ) {
        let stream = sequence(elements, epochs);

        // Reference: in order, exactly once.
        let mut reference = SequencedApplier::new(4);
        for env in &stream {
            prop_assert!(reference.offer(env), "first delivery must be fresh");
        }

        // Adversarial delivery: a permutation of the stream (drawn without
        // replacement via the order indices) with extra duplicate deliveries
        // spliced in (drawn with replacement).
        let mut remaining: Vec<&Envelope> = stream.iter().collect();
        let mut delivery: Vec<&Envelope> = Vec::with_capacity(stream.len() + dup_picks.len());
        for &idx in &order {
            if remaining.is_empty() {
                break;
            }
            delivery.push(remaining.swap_remove(idx % remaining.len()));
        }
        // Whatever the order vector did not consume arrives last, in order.
        delivery.extend(remaining);
        for &idx in &dup_picks {
            let pos = idx % delivery.len();
            let env = delivery[pos];
            delivery.insert(pos, env);
        }

        let mut chaotic = SequencedApplier::new(4);
        let mut fresh = 0usize;
        for env in &delivery {
            if chaotic.offer(env) {
                fresh += 1;
            }
        }
        prop_assert_eq!(fresh, stream.len(), "every envelope fresh exactly once");
        prop_assert_eq!(chaotic.suppressed(), dup_picks.len() as u64);

        prop_assert_eq!(reference.database(), chaotic.database());
        prop_assert_eq!(
            format!("{:?}", reference.net_plan()),
            format!("{:?}", chaotic.net_plan()),
        );
    }
}
