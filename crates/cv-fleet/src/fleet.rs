//! The fleet engine: the sharded ClearView manager for a large application community.
//!
//! A [`Fleet`] owns the member-execution engine (the event-driven
//! [`EventEngine`] by default, the classic [`EpochScheduler`] as the parity
//! baseline — see [`EngineKind`]), the
//! sharded community invariant store, the *sharded manager plane* (a
//! [`ResponderShard`] per slice of failure locations, fed by a pure
//! [`DigestRouter`]), the batched console log, and the fleet metrics. Execution is
//! epoch-batched: the caller schedules a batch of presentations, workers run them in
//! parallel, the manager routes the resulting digests into per-shard buckets, the
//! shards drive their responders in parallel across the same worker pool, and the
//! per-shard patch plans merge — deterministically, by failure location — into one
//! fleet-wide [`PatchPlan`] pushed to every member at the epoch boundary.
//!
//! **Batching semantics.** Within an epoch every member executes under the patch
//! configuration established at the previous boundary. The manager therefore feeds a
//! responder only digests consistent with that configuration: once a responder emits
//! directives mid-batch (its expected configuration changed), the remaining digests of
//! the same epoch for that location are dropped — they were produced under the old
//! patches. With one presentation per epoch this degenerates to exactly the seed
//! `cv-community` protocol, which is how the small-N facade preserves the paper's
//! presentation counts (e.g. four presentations to a patch).
//!
//! **Determinism.** Every shard processes its bucket in batch order and shares no
//! state with any other shard, and [`PatchPlan::merge`] imposes a canonical op order.
//! A fleet therefore writes a byte-identical [`BatchLog`] whether its manager runs on
//! one thread or many, with one shard or many — `tests/manager_parity.rs` proves it.

use crate::engine::EventEngine;
use crate::metrics::{FleetMetrics, MetricEvent};
use crate::protocol::{BatchLog, FleetMessage, NodeId, Presentation};
use crate::scheduler::{EpochScheduler, RunRecord};
use crate::shard::ShardedInvariantStore;
use crate::sync::{MembershipOp, SyncOutcome, SyncPayload, SyncSource, TierSyncPlane};
use crate::transport::{
    is_coordinator_side, ChaosConfig, ChaosControls, DedupeWindow, PeerId, Transport,
    TransportKind, TransportStats, COORDINATOR,
};
use cv_core::{
    ClearViewConfig, DigestRouter, FailureEvent, FailureResponder, ManagerTree, NetPatchState,
    PatchPlan, Phase, RepairReport, ResponderShard, RoutedDigest, ShardBucket, ShardOutcome,
};
use cv_inference::{InvariantDatabase, LearnedModel, ProcedureDatabase};
use cv_isa::{Addr, BinaryImage, Word};
use cv_obs::recorder;
use cv_runtime::{MonitorConfig, RunStatus};
use cv_store::{DeltaBuilder, DeltaSnapshot, Envelope, EnvelopePayload, Snapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Rounds of ack-driven retransmit before the fleet gives up on the unacked
/// peers for this phase. Partitioned members are rolled back and re-synced by
/// the background resync pass instead of stalling the epoch forever; with the
/// per-round exponential backoff below, twelve rounds outlast any fault mix
/// the chaos plane generates short of a partition.
const MAX_RETRANSMIT_ROUNDS: u32 = 12;

/// Cap of the exponential backoff between retransmit rounds, in transport ticks.
const MAX_BACKOFF_TICKS: u32 = 16;

/// Which member-execution engine a [`Fleet`] runs on. Both engines produce
/// byte-identical [`BatchLog`]s for the same inputs (`tests/engine_parity.rs`);
/// they differ only in memory footprint and scalability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The event-driven engine: one shared read-only image and discovered-code
    /// index per fleet, copy-on-write run state, and compact per-member slots
    /// (a config handle + sparse aux cells) — tens of bytes per idle member.
    #[default]
    Event,
    /// The classic scheduler: one full execution environment per member. Kept
    /// as the parity baseline; memory scales with members × image size.
    Legacy,
}

/// Construction knobs for a [`Fleet`].
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of community members.
    pub node_count: usize,
    /// Worker threads executing members (0 = one per available core).
    pub worker_count: usize,
    /// Shards of the community invariant store.
    pub shard_count: usize,
    /// Shards of the manager plane (responder state partitioned by failure
    /// location). 1 reproduces the seed's central manager exactly.
    pub manager_shard_count: usize,
    /// Monitor configuration for every member.
    pub monitors: MonitorConfig,
    /// Run workers on real threads (`false` = single partition on the calling
    /// thread; the sequential baseline for benchmarks).
    pub parallel: bool,
    /// The member-execution engine.
    pub engine: EngineKind,
    /// Fan-out of the hierarchical manager tree (0 or 1 = flat merge and push,
    /// the seed's single coordinator). With a fan-out of `F`, per-shard plans
    /// merge in groups of `F` per tier and the push is accounted tier by tier —
    /// the merged plan itself is byte-identical either way.
    pub tree_fanout: usize,
    /// The transport every coordinator↔member exchange crosses (in-process
    /// queues by default; a loopback socket or the seeded chaos wrapper).
    pub transport: TransportKind,
}

impl FleetConfig {
    /// Defaults for `node_count` members: auto worker count, 8 store shards, 8
    /// manager shards, full monitors, parallel execution.
    pub fn new(node_count: usize) -> Self {
        FleetConfig {
            node_count,
            worker_count: 0,
            shard_count: 8,
            manager_shard_count: 8,
            monitors: MonitorConfig::full(),
            parallel: true,
            engine: EngineKind::default(),
            tree_fanout: 0,
            transport: TransportKind::default(),
        }
    }

    /// Override the worker count.
    pub fn with_workers(mut self, worker_count: usize) -> Self {
        self.worker_count = worker_count;
        self
    }

    /// Override the invariant-store shard count.
    pub fn with_shards(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count.max(1);
        self
    }

    /// Override the manager-plane shard count.
    pub fn with_manager_shards(mut self, manager_shard_count: usize) -> Self {
        self.manager_shard_count = manager_shard_count.max(1);
        self
    }

    /// Override the monitor configuration.
    pub fn with_monitors(mut self, monitors: MonitorConfig) -> Self {
        self.monitors = monitors;
        self
    }

    /// Force sequential execution: one worker partition, no threads, no worker-pool
    /// setup. The manager shards are likewise driven inline on the calling thread.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self.worker_count = 1;
        self
    }

    /// Override the member-execution engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Run on the classic per-member-environment scheduler (the parity baseline).
    pub fn legacy_engine(self) -> Self {
        self.with_engine(EngineKind::Legacy)
    }

    /// Merge and push patch plans through a hierarchical manager tree with the
    /// given fan-out (0 or 1 = flat, the default).
    pub fn with_tree_fanout(mut self, tree_fanout: usize) -> Self {
        self.tree_fanout = tree_fanout;
        self
    }

    /// Route all coordinator↔member traffic through the given transport.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Route traffic through the chaos transport with the ISSUE's standard
    /// fault mix (drop 10%, duplicate 5%, reorder within 3 ticks), seeded.
    pub fn with_chaos(self, seed: u64) -> Self {
        self.with_transport(TransportKind::Chaos(ChaosConfig::standard(seed)))
    }
}

/// The outcome of one presentation within an epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberOutcome {
    /// The member that processed the page.
    pub node: NodeId,
    /// How the run ended.
    pub status: RunStatus,
    /// What the member rendered.
    pub rendered: Vec<Word>,
    /// True if a monitor blocked the page.
    pub blocked: bool,
}

/// The outcome of one epoch.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The epoch number (1-based).
    pub epoch: u64,
    /// One outcome per presentation, in batch order.
    pub outcomes: Vec<MemberOutcome>,
}

impl EpochOutcome {
    /// Number of presentations a monitor blocked.
    pub fn blocked(&self) -> usize {
        self.outcomes.iter().filter(|o| o.blocked).count()
    }

    /// Number of presentations that completed normally.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, RunStatus::Completed))
            .count()
    }
}

/// The member-execution engine behind a [`Fleet`]: either the classic
/// per-member-environment scheduler or the event-driven engine. Every call
/// forwards; the two implementations agree byte-for-byte on every output
/// (`tests/engine_parity.rs`), so the rest of the fleet never branches on which
/// one is running.
enum Engine {
    Legacy(EpochScheduler),
    Event(EventEngine),
}

impl Engine {
    fn node_count(&self) -> usize {
        match self {
            Engine::Legacy(s) => s.node_count(),
            Engine::Event(e) => e.node_count(),
        }
    }

    fn alive_count(&self) -> usize {
        match self {
            Engine::Legacy(s) => s.alive_count(),
            Engine::Event(e) => e.alive_count(),
        }
    }

    fn is_alive(&self, node: NodeId) -> bool {
        match self {
            Engine::Legacy(s) => s.is_alive(node),
            Engine::Event(e) => e.is_alive(node),
        }
    }

    fn worker_count(&self) -> usize {
        match self {
            Engine::Legacy(s) => s.worker_count(),
            Engine::Event(e) => e.worker_count(),
        }
    }

    fn crash(&mut self, node: NodeId) {
        match self {
            Engine::Legacy(s) => s.crash(node),
            Engine::Event(e) => e.crash(node),
        }
    }

    fn rejoin(&mut self, node: NodeId) {
        match self {
            Engine::Legacy(s) => s.rejoin(node),
            Engine::Event(e) => e.rejoin(node),
        }
    }

    fn join(&mut self) -> NodeId {
        match self {
            Engine::Legacy(s) => s.join(),
            Engine::Event(e) => e.join(),
        }
    }

    fn reset_and_apply(&mut self, node: NodeId, plan: &PatchPlan) {
        match self {
            Engine::Legacy(s) => s.reset_and_apply(node, plan),
            Engine::Event(e) => e.reset_and_apply(node, plan),
        }
    }

    fn run_epoch(&mut self, presentations: &[Presentation], active: &[Addr]) -> Vec<RunRecord> {
        match self {
            Engine::Legacy(s) => s.run_epoch(presentations, active),
            Engine::Event(e) => e.run_epoch(presentations, active),
        }
    }

    fn apply_plan(&mut self, plan: &PatchPlan) {
        match self {
            Engine::Legacy(s) => s.apply_plan(plan),
            Engine::Event(e) => e.apply_plan(plan),
        }
    }

    /// Run distributed learning. The classic scheduler returns one local model
    /// per alive member (a pageless member's is empty); the event engine only
    /// returns members that actually traced pages — the fleet reconstructs the
    /// dense upload report itself, so the logs agree.
    fn learn(&mut self, image: &BinaryImage, pages: &[Vec<Word>]) -> Vec<(NodeId, LearnedModel)> {
        match self {
            Engine::Legacy(s) => s.learn(image, pages),
            Engine::Event(e) => e.learn(image, pages),
        }
    }

    /// Bytes of member-proportional state. The event engine measures its slots
    /// and sparse aux cells; the classic scheduler's members each own a full
    /// environment (a flat copy of the image plus machine bookkeeping), which
    /// is estimated from the image dimensions rather than walked.
    fn resident_state_bytes(&self, image: &BinaryImage) -> u64 {
        match self {
            Engine::Legacy(s) => {
                let image_bytes =
                    (image.code.len() + image.data.len()) * std::mem::size_of::<Word>();
                s.node_count() as u64 * (image_bytes as u64 + 256)
            }
            Engine::Event(e) => e.resident_state_bytes(),
        }
    }

    /// Bytes shared across all members (zero for the classic scheduler — it
    /// shares nothing).
    fn shared_state_bytes(&self) -> u64 {
        match self {
            Engine::Legacy(_) => 0,
            Engine::Event(e) => e.shared_state_bytes(),
        }
    }
}

/// A sharded, parallel application community under ClearView protection.
pub struct Fleet {
    image: BinaryImage,
    config: ClearViewConfig,
    monitors: MonitorConfig,
    engine: Engine,
    store: ShardedInvariantStore,
    model: LearnedModel,
    router: DigestRouter,
    manager_shards: Vec<ResponderShard>,
    parallel: bool,
    /// Threads the manager fan-out may use: the worker count capped at the machine's
    /// available parallelism (oversubscribing a latency-sensitive fan-out only adds
    /// spawn overhead, unlike the members' simulation pool).
    manager_threads: usize,
    /// Fan-out of the hierarchical manager tree (0 or 1 = flat merge and push).
    tree_fanout: usize,
    log: BatchLog,
    /// The accounting event stream — the source of truth the [`FleetMetrics`]
    /// aggregate is a fold of (see `metrics.rs`).
    metric_log: Vec<MetricEvent>,
    /// The incrementally-folded aggregate of `metric_log`, cached for cheap reads.
    metrics: FleetMetrics,
    /// This fleet's id in the process-wide trace stream (the `"fleet"` argument
    /// on every span/instant/counter this fleet records).
    obs_id: u64,
    epoch: u64,
    /// The net patch configuration every synced member holds (all pushed plans,
    /// folded) — the durable state a checkpoint captures.
    net: NetPatchState,
    /// Per-member sync flags. A member is *synced* when its patch configuration is
    /// the fleet's current net configuration; digests from unsynced members (cold
    /// joiners, members that missed pushes) are dropped before routing — they ran
    /// under a stale configuration, the membership-level analogue of the mid-batch
    /// reconfiguration rule.
    synced: Vec<bool>,
    /// Members whose sync epoch is awaiting their first completed presentation
    /// (the late-joiner time-to-immunity measurement).
    joiners: BTreeMap<NodeId, u64>,
    /// The coordinator's current snapshot, encoded bytes included, memoized per
    /// epoch (cut once, served to every joiner, delta, and resync of the epoch).
    snapshot_cache: Option<CachedSnapshot>,
    /// The most recent delta's encoded size, keyed by (base epoch, target epoch)
    /// — a churn wave rejoins many members against one checkpoint.
    delta_cache: Option<CachedDelta>,
    /// The wire boundary every coordinator↔member exchange crosses.
    transport: Box<dyn Transport>,
    /// True when the backend can lose or delay envelopes (the chaos wrapper):
    /// gates the rollback/resync bookkeeping lossless runs never need.
    lossy: bool,
    /// Live handle into the chaos backend's partition plane, when one is
    /// configured.
    chaos: Option<ChaosControls>,
    /// The receiver-side `(to, from, epoch, seq)` idempotence window.
    dedupe: DedupeWindow,
    /// One monotonic counter for every envelope the fleet originates, so
    /// `(from, epoch, seq)` is globally unique and sorting by seq reconstructs
    /// send order exactly.
    seq: u64,
    /// Retransmits performed since the last `Transport` metric event.
    retransmits_pending: u64,
    /// `dedupe.suppressed()` at the last `Transport` metric event.
    suppressed_mark: u64,
    /// Backend counters at the last `Transport` metric event.
    stats_mark: TransportStats,
    /// Members rolled back after missing a patch push (lossy transports only);
    /// the end-of-epoch resync pass brings them back once reachable.
    transport_desynced: BTreeSet<NodeId>,
    /// Per member, the epoch of the newest retained checkpoint whose state the
    /// member holds (lossy transports only; indexes `retained`).
    member_base: Vec<u64>,
    /// Retained per-epoch checkpoints serving delta resyncs (lossy transports
    /// only; pruned to the oldest base a desynced member still references).
    retained: BTreeMap<u64, Snapshot>,
    /// The tier-sync plane: per-tier coordinator mirrors serving member sync
    /// from the tree's leaf tier instead of the root (`None` when no manager
    /// tree is configured). Rows are seeded lazily once the fleet outgrows the
    /// fan-out; inside a fleet method the plane is taken out of this `Option`
    /// and put back, never left `None` across a call.
    tier_sync: Option<TierSyncPlane>,
    /// Bumped whenever the fleet's state changes outside the epoch counter
    /// (model replacement, wholesale learning, snapshot restore) so the tier
    /// plane's `(epoch, state_version)` refresh marker catches same-epoch
    /// state swaps.
    state_version: u64,
}

struct CachedSnapshot {
    epoch: u64,
    snapshot: Snapshot,
    encoded: Arc<Vec<u8>>,
}

impl CachedSnapshot {
    fn encoded_bytes(&self) -> u64 {
        self.encoded.len() as u64
    }
}

struct CachedDelta {
    base_epoch: u64,
    target_epoch: u64,
    encoded_bytes: u64,
}

/// What one reliable exchange produced.
struct ExchangeOutcome {
    /// Seqs whose envelope was acked by its receiver.
    acked: BTreeSet<u64>,
    /// Fresh data envelopes delivered to the coordinator, in seq order.
    received: Vec<Envelope>,
}

/// Process-wide fleet id allocator: every [`Fleet`] gets a distinct id to stamp
/// its trace events with, so one process running several fleets back to back
/// (as `fleet_scale` does) still yields per-fleet traces and summaries.
static NEXT_FLEET_OBS_ID: AtomicU64 = AtomicU64::new(1);

impl Fleet {
    /// Create a fleet of `fleet_config.node_count` members running `image`, with an
    /// empty model.
    pub fn new(image: BinaryImage, config: ClearViewConfig, fleet_config: FleetConfig) -> Self {
        let engine = match fleet_config.engine {
            EngineKind::Legacy => Engine::Legacy(EpochScheduler::new(
                &image,
                fleet_config.monitors,
                fleet_config.node_count,
                fleet_config.worker_count,
                fleet_config.parallel,
            )),
            EngineKind::Event => Engine::Event(EventEngine::new(
                &image,
                fleet_config.monitors,
                fleet_config.node_count,
                fleet_config.worker_count,
                fleet_config.parallel,
            )),
        };
        let manager_shard_count = fleet_config.manager_shard_count.max(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let manager_threads = if fleet_config.parallel {
            engine.worker_count().min(cores)
        } else {
            1
        };
        let (transport, chaos) = fleet_config.transport.build();
        let lossy = transport.is_lossy();
        Fleet {
            model: LearnedModel {
                invariants: InvariantDatabase::new(),
                procedures: ProcedureDatabase::new(image.clone()),
            },
            store: ShardedInvariantStore::new(fleet_config.shard_count),
            monitors: fleet_config.monitors,
            image,
            config,
            engine,
            router: DigestRouter::new(manager_shard_count),
            manager_shards: (0..manager_shard_count)
                .map(|_| ResponderShard::new())
                .collect(),
            parallel: fleet_config.parallel,
            manager_threads,
            tree_fanout: fleet_config.tree_fanout,
            log: BatchLog::new(),
            metric_log: Vec::new(),
            metrics: FleetMetrics::with_manager_shards(manager_shard_count),
            obs_id: NEXT_FLEET_OBS_ID.fetch_add(1, Ordering::Relaxed),
            epoch: 0,
            net: NetPatchState::new(),
            synced: vec![true; fleet_config.node_count.max(1)],
            joiners: BTreeMap::new(),
            snapshot_cache: None,
            delta_cache: None,
            transport,
            lossy,
            chaos,
            dedupe: DedupeWindow::new(),
            seq: 0,
            retransmits_pending: 0,
            suppressed_mark: 0,
            stats_mark: TransportStats::default(),
            transport_desynced: BTreeSet::new(),
            member_base: vec![0; fleet_config.node_count.max(1)],
            retained: BTreeMap::new(),
            tier_sync: (fleet_config.tree_fanout >= 2).then(TierSyncPlane::new),
            state_version: 0,
        }
    }

    /// Warm-start a whole fleet from a checkpoint: the learned model is restored
    /// from the snapshot (invariants verbatim, procedure CFGs re-discovered from
    /// the image), every member is bootstrapped with the snapshot's validated
    /// repairs, and a Protected responder is adopted per repaired location — zero
    /// learning-mode replay, zero re-checking. In-flight checking state is
    /// dropped; the next failure report at such a location restarts that response.
    pub fn from_snapshot(
        image: BinaryImage,
        config: ClearViewConfig,
        fleet_config: FleetConfig,
        snapshot: &Snapshot,
    ) -> Self {
        let mut fleet = Fleet::new(image.clone(), config, fleet_config);
        fleet.model = snapshot.restore_model(image);
        fleet.store = ShardedInvariantStore::from_database(
            fleet.model.invariants.clone(),
            fleet.store.shard_count(),
        );
        // The restored state is *a* checkpoint labelled `snapshot.epoch` — but a
        // base carrying the same label is not necessarily this one: learning can
        // land mid-epoch, so two different checkpoints can share an epoch, and
        // the restore has no mutation history to tell them apart (the live
        // coordinator's inclusive dirty_since(B) rule handles exactly this; a
        // restore cannot). Coverage therefore starts at the *next* epoch — same
        // reasoning as set_model below — and bases at or before the restore
        // label fall back to the materialized diff.
        fleet.store.reset_dirty(snapshot.epoch + 1);
        fleet.state_version += 1;
        let bootstrap = snapshot.bootstrap_plan();
        fleet.engine.apply_plan(&bootstrap);
        for op in bootstrap.ops() {
            if let cv_core::Directive::InstallRepair(repair) = &op.directive {
                let shard = fleet.router.shard_of(op.location);
                fleet.manager_shards[shard].adopt(
                    op.location,
                    FailureResponder::restored(op.location, repair.clone(), config),
                    std::iter::empty(),
                );
            }
        }
        fleet.net.apply(&bootstrap);
        fleet.epoch = snapshot.epoch;
        let snapshot_bytes = snapshot.encode().len() as u64;
        fleet.record(MetricEvent::Bootstrap {
            bytes: snapshot_bytes,
        });
        recorder().instant(
            "churn.bootstrap",
            "churn",
            &[
                ("fleet", fleet.obs_id),
                ("epoch", snapshot.epoch),
                ("members", fleet.node_count() as u64),
                ("bytes", snapshot_bytes),
            ],
        );
        fleet.log.push(FleetMessage::Bootstrap {
            epoch: snapshot.epoch,
            members: fleet.node_count(),
            snapshot_bytes,
            plan_ops: bootstrap.len(),
        });
        fleet
    }

    /// Number of community members.
    pub fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.engine.worker_count()
    }

    /// Number of shards in the community invariant store.
    pub fn shard_count(&self) -> usize {
        self.store.shard_count()
    }

    /// Number of shards in the manager plane.
    pub fn manager_shard_count(&self) -> usize {
        self.manager_shards.len()
    }

    /// The batched console log.
    pub fn log(&self) -> &BatchLog {
        &self.log
    }

    /// The fleet metrics collected so far (the fold of [`Fleet::metric_log`]).
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// The accounting event stream the metrics are derived from, in order.
    /// `FleetMetrics::from_events(self.manager_shard_count(), log)` reproduces
    /// [`Fleet::metrics`] exactly.
    pub fn metric_log(&self) -> &[MetricEvent] {
        &self.metric_log
    }

    /// This fleet's id in the process-wide trace stream (the `"fleet"` argument
    /// stamped on its spans, instants, and counters).
    pub fn obs_id(&self) -> u64 {
        self.obs_id
    }

    /// Append one accounting event: the log is the source of truth, the cached
    /// aggregate folds it immediately.
    fn record(&mut self, event: MetricEvent) {
        self.metrics.apply(&event);
        self.metric_log.push(event);
    }

    /// The merged, community-wide learned model (the fused shard snapshot).
    pub fn model(&self) -> &LearnedModel {
        &self.model
    }

    /// The monitor configuration members run under.
    pub fn monitors(&self) -> MonitorConfig {
        self.monitors
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Members currently up (node ids are never reused, so this can be less than
    /// [`Fleet::node_count`] under churn).
    pub fn alive_count(&self) -> usize {
        self.engine.alive_count()
    }

    /// True if `node` is up.
    pub fn is_member_alive(&self, node: NodeId) -> bool {
        self.engine.is_alive(node)
    }

    /// True if `node`'s patch configuration is the fleet's current net
    /// configuration (digests from unsynced members are dropped before routing).
    pub fn is_member_synced(&self, node: NodeId) -> bool {
        self.synced[node]
    }

    /// The net patch configuration every synced member holds.
    pub fn net_state(&self) -> &NetPatchState {
        &self.net
    }

    /// The transport backend's name (`"inprocess"`, `"socket"`, `"chaos"`).
    pub fn transport_name(&self) -> &'static str {
        self.transport.name()
    }

    /// Cumulative delivery accounting from the transport backend.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// True when the transport can lose or delay envelopes (the chaos
    /// wrapper): the fleet then runs the rollback/resync bookkeeping.
    pub fn transport_is_lossy(&self) -> bool {
        self.lossy
    }

    /// Members the transport has desynced (rolled back after missing a patch
    /// push) and not yet re-synced, in node order.
    pub fn transport_desynced(&self) -> Vec<NodeId> {
        self.transport_desynced.iter().copied().collect()
    }

    /// Cut `nodes` off: every envelope to or from them is dropped until
    /// [`Fleet::heal_partition`]. Panics unless the fleet runs on the chaos
    /// transport — only it has a partition plane.
    pub fn partition_members(&mut self, nodes: &[NodeId]) {
        let controls = self
            .chaos
            .as_ref()
            .expect("partitioning requires the chaos transport");
        let peers: Vec<PeerId> = nodes.iter().map(|&node| node as PeerId).collect();
        controls.partition(&peers);
        recorder().instant(
            "chaos.partition",
            "transport",
            &[
                ("fleet", self.obs_id),
                ("epoch", self.epoch),
                ("members", nodes.len() as u64),
            ],
        );
    }

    /// Reconnect every partitioned member (they stay desynced until the next
    /// epoch's resync pass reaches them).
    pub fn heal_partition(&mut self) {
        let controls = self
            .chaos
            .as_ref()
            .expect("partitioning requires the chaos transport");
        let healed = controls.partitioned_count() as u64;
        controls.heal();
        recorder().instant(
            "chaos.heal",
            "transport",
            &[
                ("fleet", self.obs_id),
                ("epoch", self.epoch),
                ("members", healed),
            ],
        );
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Drain every inbox involved in an exchange once: acks retire their
    /// pending envelope; data envelopes are acked (fresh and duplicate alike —
    /// the earlier ack may have been lost) and, when addressed to the
    /// coordinator and fresh, collected for the caller. Envelopes from other
    /// epochs are stale stragglers and are dropped silently.
    fn pump_protocol(
        &mut self,
        epoch: u64,
        pending: &mut BTreeMap<u64, Envelope>,
        acked: &mut BTreeSet<u64>,
        received: &mut Vec<Envelope>,
        peers: &BTreeSet<PeerId>,
    ) {
        for env in self.transport.recv(COORDINATOR) {
            if env.epoch != epoch {
                continue;
            }
            match env.payload {
                EnvelopePayload::Ack => {
                    if pending.remove(&env.seq).is_some() {
                        acked.insert(env.seq);
                    }
                }
                _ => {
                    let fresh = self.dedupe.accept(&env);
                    self.transport.send(env.ack());
                    if fresh {
                        received.push(env);
                    }
                }
            }
        }
        for &peer in peers {
            for env in self.transport.recv(peer) {
                if env.epoch != epoch {
                    continue;
                }
                match env.payload {
                    EnvelopePayload::Ack => {
                        if pending.remove(&env.seq).is_some() {
                            acked.insert(env.seq);
                        }
                    }
                    _ => {
                        self.dedupe.accept(&env);
                        self.transport.send(env.ack());
                    }
                }
            }
        }
    }

    /// Deliver every envelope in `pending` reliably: send, collect acks,
    /// retransmit the unacked with capped exponential backoff. Gives up after
    /// [`MAX_RETRANSMIT_ROUNDS`] — unreachable (partitioned) receivers simply
    /// stay unacked and the caller decides what that means.
    fn exchange(&mut self, epoch: u64, mut pending: BTreeMap<u64, Envelope>) -> ExchangeOutcome {
        // Every non-root endpoint an envelope touches needs its inbox pumped:
        // the member end of each pending envelope, plus any tier-coordinator
        // origin (members ack back to the tier peer that served them, so the
        // tier peer's inbox is where those acks land).
        let mut peers: BTreeSet<PeerId> = BTreeSet::new();
        for env in pending.values() {
            peers.insert(if is_coordinator_side(env.to) {
                env.from
            } else {
                env.to
            });
            if is_coordinator_side(env.from) && env.from != COORDINATOR {
                peers.insert(env.from);
            }
        }
        let mut acked = BTreeSet::new();
        let mut received = Vec::new();
        let flush = self.transport.flush_ticks().max(1);
        let mut backoff = 1u32;
        let mut round = 0u32;
        loop {
            self.pump_protocol(epoch, &mut pending, &mut acked, &mut received, &peers);
            if pending.is_empty() || round >= MAX_RETRANSMIT_ROUNDS {
                break;
            }
            if round > 0 {
                self.retransmits_pending += pending.len() as u64;
            }
            for env in pending.values() {
                self.transport.send(env.clone());
            }
            for _ in 0..flush.max(backoff) {
                self.transport.tick();
                self.pump_protocol(epoch, &mut pending, &mut acked, &mut received, &peers);
            }
            backoff = (backoff * 2).min(MAX_BACKOFF_TICKS);
            round += 1;
        }
        received.sort_by_key(|env| env.seq);
        ExchangeOutcome { acked, received }
    }

    /// Send the epoch's presentations through the transport and reconstruct,
    /// in send order, those that actually arrived. Pages are fire-and-forget:
    /// a page lost to chaos is a presentation that member never saw this epoch
    /// (the community converges through the others); acked delivery is
    /// reserved for state-bearing traffic.
    fn deliver_presentations(
        &mut self,
        epoch: u64,
        presentations: &[Presentation],
    ) -> Vec<Presentation> {
        if presentations.is_empty() {
            return Vec::new();
        }
        let targets: BTreeSet<PeerId> = presentations.iter().map(|p| p.node as PeerId).collect();
        for presentation in presentations {
            let seq = self.next_seq();
            self.transport.send(Envelope {
                from: COORDINATOR,
                to: presentation.node as PeerId,
                epoch,
                seq,
                payload: EnvelopePayload::Page(presentation.page.clone()),
            });
        }
        for _ in 0..self.transport.flush_ticks() {
            self.transport.tick();
        }
        let mut arrived: Vec<(u64, Presentation)> = Vec::with_capacity(presentations.len());
        for &peer in &targets {
            for env in self.transport.recv(peer) {
                if env.epoch != epoch || !self.dedupe.accept(&env) {
                    continue; // stale straggler or chaos duplicate
                }
                if let EnvelopePayload::Page(page) = env.payload {
                    arrived.push((env.seq, Presentation::new(env.to as NodeId, page)));
                }
            }
        }
        arrived.sort_by_key(|&(seq, _)| seq);
        arrived.into_iter().map(|(_, p)| p).collect()
    }

    /// Push `plan` to every alive member as acked, idempotent envelopes.
    /// Returns the members that acknowledged, in node order — everyone, on a
    /// lossless transport. An empty plan sends nothing (there is no state to
    /// miss) and counts everyone as reached.
    fn push_plan_over_transport(&mut self, epoch: u64, plan: &PatchPlan) -> Vec<NodeId> {
        let alive: Vec<NodeId> = (0..self.node_count())
            .filter(|&node| self.engine.is_alive(node))
            .collect();
        if plan.is_empty() || alive.is_empty() {
            return alive;
        }
        let shared = Arc::new(plan.clone());
        let mut pending: BTreeMap<u64, Envelope> = BTreeMap::new();
        let mut node_of: BTreeMap<u64, NodeId> = BTreeMap::new();
        for &node in &alive {
            let seq = self.next_seq();
            node_of.insert(seq, node);
            pending.insert(
                seq,
                Envelope {
                    from: COORDINATOR,
                    to: node as PeerId,
                    epoch,
                    seq,
                    payload: EnvelopePayload::PatchPush(Arc::clone(&shared)),
                },
            );
        }
        let outcome = self.exchange(epoch, pending);
        outcome
            .acked
            .iter()
            .filter_map(|seq| node_of.get(seq).copied())
            .collect()
    }

    /// Re-sync members the transport desynced, over the transport itself: a
    /// shard-keyed delta when a retained checkpoint covers the member's base,
    /// the full snapshot otherwise. Members still unreachable (partitioned)
    /// stay desynced and are retried next epoch. No-op on lossless transports
    /// — nothing ever desyncs there.
    fn transport_resync_pass(&mut self, epoch: u64) {
        if self.transport_desynced.is_empty() {
            return;
        }
        // State moves from the sync source: the manager tree's leaf tier when
        // the tier plane is active (partition healing is served by a member's
        // parent coordinator, never the root), the root otherwise.
        let (payload, src_peer, src_tier) = self.sync_source_payload();
        let (full_bytes, full_encoded) = (payload.bytes(), Arc::clone(&payload.encoded));
        let net_plan = payload.plan;
        // One delta per distinct covered base epoch — a partition wave shares
        // its base, so the cut and its encode are amortized across members.
        let members: Vec<NodeId> = self.transport_desynced.iter().copied().collect();
        let mut delta_encoded: BTreeMap<u64, Arc<Vec<u8>>> = BTreeMap::new();
        for &node in &members {
            let base_epoch = self.member_base[node];
            if base_epoch >= epoch || delta_encoded.contains_key(&base_epoch) {
                continue;
            }
            // Tier cuts and root cuts are byte-identical for the same base —
            // `DeltaBuilder` output is canonical in the base and the state.
            let delta = if src_tier > 0 {
                self.tier_sync
                    .as_mut()
                    .and_then(|p| p.leaf_row_mut())
                    .and_then(|row| {
                        row.retained_base(base_epoch)
                            .cloned()
                            .map(|base| row.delta_since(&base))
                    })
            } else {
                self.retained
                    .get(&base_epoch)
                    .cloned()
                    .map(|base| self.delta_since(&base))
            };
            if let Some(delta) = delta {
                delta_encoded.insert(base_epoch, Arc::new(delta.encode()));
            }
        }
        let mut pending: BTreeMap<u64, Envelope> = BTreeMap::new();
        let mut sync_of: BTreeMap<u64, (NodeId, Option<(u64, u64)>)> = BTreeMap::new();
        for &node in &members {
            let base_epoch = self.member_base[node];
            let seq = self.next_seq();
            let (payload, delta_info) = match delta_encoded.get(&base_epoch) {
                Some(bytes) => (
                    EnvelopePayload::Delta {
                        base_epoch,
                        bytes: Arc::clone(bytes),
                    },
                    Some((base_epoch, bytes.len() as u64)),
                ),
                None => (EnvelopePayload::Snapshot(Arc::clone(&full_encoded)), None),
            };
            sync_of.insert(seq, (node, delta_info));
            pending.insert(
                seq,
                Envelope {
                    from: src_peer,
                    to: node as PeerId,
                    epoch,
                    seq,
                    payload,
                },
            );
        }
        let outcome = self.exchange(epoch, pending);
        for seq in outcome.acked {
            let (node, delta_info) = sync_of[&seq];
            self.engine.reset_and_apply(node, &net_plan);
            self.synced[node] = true;
            self.transport_desynced.remove(&node);
            self.member_base[node] = epoch;
            self.joiners.insert(node, epoch);
            match delta_info {
                Some((base_epoch, delta_bytes)) => {
                    self.record_tier_ship(src_tier, delta_bytes, true, node);
                    self.record(MetricEvent::DeltaSync {
                        delta_bytes,
                        full_bytes,
                    });
                    self.record(MetricEvent::TransportResync { delta: true });
                    self.log.push(FleetMessage::DeltaSync {
                        epoch,
                        members: 1,
                        base_epoch,
                        delta_bytes,
                        full_bytes,
                    });
                }
                None => {
                    self.record_tier_ship(src_tier, full_bytes, false, node);
                    self.record(MetricEvent::Bootstrap { bytes: full_bytes });
                    self.record(MetricEvent::TransportResync { delta: false });
                    self.log.push(FleetMessage::Bootstrap {
                        epoch,
                        members: 1,
                        snapshot_bytes: full_bytes,
                        plan_ops: net_plan.len(),
                    });
                }
            }
            recorder().instant(
                "transport.resync",
                "transport",
                &[
                    ("fleet", self.obs_id),
                    ("epoch", epoch),
                    ("node", node as u64),
                    ("delta", delta_info.is_some() as u64),
                    ("source_tier", src_tier as u64),
                ],
            );
        }
    }

    /// Lossy transports retain the end-of-epoch checkpoint so a member that
    /// desyncs later can be advanced by a delta from the last epoch it held
    /// instead of a full snapshot. Checkpoints older than every desynced
    /// member's base are pruned.
    fn retain_checkpoint(&mut self, epoch: u64) {
        if !self.lossy {
            return;
        }
        self.refresh_snapshot_cache();
        let snapshot = self
            .snapshot_cache
            .as_ref()
            .expect("cache just refreshed")
            .snapshot
            .clone();
        self.retained.insert(epoch, snapshot);
        for node in 0..self.node_count() {
            if self.engine.is_alive(node) && self.synced[node] {
                self.member_base[node] = epoch;
            }
        }
        let floor = self
            .transport_desynced
            .iter()
            .map(|&node| self.member_base[node])
            .min()
            .unwrap_or(epoch);
        self.retained.retain(|&e, _| e >= floor);
        // The tier rows retain the same checkpoints under the same pruning
        // floor, so partition healing can cut the same deltas from a parent
        // coordinator that the root would have cut.
        if self.tier_sync_active() {
            self.tier_refresh();
            if let Some(plane) = self.tier_sync.as_mut() {
                plane.retain_checkpoints(floor);
            }
        }
    }

    /// Fold the transport activity since the last `Transport` metric event
    /// into the metric stream (as deltas, so replaying the stream reproduces
    /// the cumulative counters).
    fn record_transport_event(&mut self) {
        let stats = self.transport.stats();
        let delta = stats.since(&self.stats_mark);
        let suppressed = self.dedupe.suppressed() - self.suppressed_mark;
        let retransmits = self.retransmits_pending;
        if delta.is_zero() && suppressed == 0 && retransmits == 0 {
            return;
        }
        self.stats_mark = stats;
        self.suppressed_mark = self.dedupe.suppressed();
        self.retransmits_pending = 0;
        self.record(MetricEvent::Transport {
            sent: delta.sent,
            delivered: delta.delivered,
            dropped: delta.dropped,
            duplicated: delta.duplicated,
            retransmits,
            duplicates_suppressed: suppressed,
            partition_dropped: delta.partition_dropped,
        });
    }

    /// Memoize the coordinator's current snapshot for this epoch.
    fn refresh_snapshot_cache(&mut self) {
        if self.snapshot_cache.as_ref().map(|c| c.epoch) != Some(self.epoch) {
            let snapshot = Snapshot::capture(
                self.epoch,
                self.store.shard_count() as u32,
                &self.model,
                &self.net,
            );
            let encoded = Arc::new(snapshot.encode());
            self.snapshot_cache = Some(CachedSnapshot {
                epoch: self.epoch,
                snapshot,
                encoded,
            });
        }
    }

    /// Checkpoint the full protection state: the community invariant database, the
    /// procedure-discovery state, and the net patch plan, as an encodable
    /// [`Snapshot`]. The snapshot is cut once per epoch and memoized — every
    /// joiner and delta of the same epoch shares it.
    pub fn checkpoint(&mut self) -> Snapshot {
        let span = recorder().span("fleet.checkpoint", "fleet");
        self.refresh_snapshot_cache();
        let cache = self.snapshot_cache.as_ref().expect("cache just refreshed");
        let bytes = cache.encoded_bytes();
        let snapshot = cache.snapshot.clone();
        span.arg("fleet", self.obs_id)
            .arg("epoch", self.epoch)
            .arg("bytes", bytes)
            .finish();
        self.record(MetricEvent::Snapshot { bytes });
        snapshot
    }

    /// The shard-keyed delta advancing `base` (a member's last checkpoint) to the
    /// coordinator's current state — strictly smaller than a full snapshot when
    /// little has changed.
    ///
    /// When the dirty-epoch plane covers the base (its epoch is at or after the
    /// tracker's floor — always, for a coordinator that has run since its last
    /// wholesale state install), the delta is cut **incrementally** in
    /// O(changed): only the addresses stamped dirty since the base are
    /// re-compared, and no target snapshot is materialized. Bases older than the
    /// floor fall back to the materialized [`DeltaSnapshot::diff`]. Both paths
    /// produce byte-identical deltas (`tests/delta_incremental.rs`).
    pub fn delta_since(&mut self, base: &Snapshot) -> DeltaSnapshot {
        assert_eq!(
            base.shard_count as usize,
            self.store.shard_count(),
            "base checkpoint and store must share one shard routing"
        );
        let span = recorder().timed_span("fleet.delta_cut", "fleet");
        let (delta, plan_shards, incremental) = match self.store.dirty_since(base.epoch) {
            Some(dirty) => {
                let delta = DeltaBuilder::new(base, &dirty).cut(
                    self.epoch,
                    &self.model.invariants,
                    self.net.to_plan(),
                );
                (delta, dirty.plan_shards.len() as u64, true)
            }
            None => {
                self.refresh_snapshot_cache();
                let cache = self.snapshot_cache.as_ref().expect("cache just refreshed");
                (DeltaSnapshot::diff(base, &cache.snapshot), 0, false)
            }
        };
        let dirty_shards = delta.dirty_shard_count() as u64;
        // One measurement feeds both planes: the span the trace shows and the
        // elapsed time the metrics fold are the same clock reading.
        let elapsed = span
            .arg("fleet", self.obs_id)
            .arg("epoch", self.epoch)
            .arg("base_epoch", base.epoch)
            .arg("dirty_shards", dirty_shards)
            .arg("incremental", incremental as u64)
            .finish();
        self.record(MetricEvent::DeltaCut {
            dirty_shards,
            plan_shards,
            elapsed,
            incremental,
        });
        delta
    }

    /// Encoded size of the delta from `base` to the current state, memoized like
    /// the snapshot itself: a churn wave rejoins many members against the *same*
    /// checkpoint, and the delta is identical for all of them — diffing and
    /// re-encoding it per member would be O(members × database) for byte-identical
    /// results. Coordinator checkpoints are identified by their epoch (one cut per
    /// epoch, see [`Fleet::refresh_snapshot_cache`]), so (base epoch, current
    /// epoch) keys the memo.
    fn delta_bytes_since(&mut self, base: &Snapshot) -> u64 {
        let target_epoch = self.epoch;
        if let Some(cached) = &self.delta_cache {
            if cached.base_epoch == base.epoch && cached.target_epoch == target_epoch {
                return cached.encoded_bytes;
            }
        }
        let delta = self.delta_since(base);
        let encoded_bytes = delta.encode().len() as u64;
        #[cfg(debug_assertions)]
        {
            // The incremental cut must land members on exactly the coordinator's
            // state — materialize it (debug builds only) and prove it.
            self.refresh_snapshot_cache();
            let mut advanced = base.clone();
            assert!(
                advanced.apply_delta(&delta).is_ok()
                    && Some(&advanced) == self.snapshot_cache.as_ref().map(|c| &c.snapshot),
                "base + delta must reproduce the coordinator's state"
            );
        }
        self.delta_cache = Some(CachedDelta {
            base_epoch: base.epoch,
            target_epoch,
            encoded_bytes,
        });
        encoded_bytes
    }

    /// True when member sync is served from the manager tree's leaf tier
    /// instead of the root: a tree is configured and the fleet has outgrown
    /// the root's own fan-out (equivalently, `ManagerTree::coordinator_rows`
    /// is non-empty — intermediate coordinators actually exist).
    fn tier_sync_active(&self) -> bool {
        self.tier_sync.is_some() && self.node_count() > self.tree_fanout
    }

    /// Bring the tier-coordinator mirrors up to the root's current state: cut
    /// **one** delta at the root and relay it down every row. Rows are seeded
    /// lazily the first time the fleet is large enough to need them, resized
    /// when membership growth adds tiers, and dropped when the fleet shrinks
    /// back under the fan-out. Idempotent per `(epoch, state_version)` — a
    /// sync wave refreshes once, not per member.
    ///
    /// The refresh is local mirror maintenance, not transport traffic: the
    /// relay is accounted (a [`MetricEvent::TierSync`] per row, multiplied by
    /// the row's coordinator count) but never crosses the chaos plane, so a
    /// tiered fleet draws exactly the same fault sequence as a flat one.
    fn tier_refresh(&mut self) {
        let Some(mut plane) = self.tier_sync.take() else {
            return;
        };
        let specs = ManagerTree::new(self.tree_fanout).coordinator_rows(self.node_count());
        if specs.is_empty() {
            plane.clear();
            self.tier_sync = Some(plane);
            return;
        }
        let marker = (self.epoch, self.state_version);
        if plane.synced_marker() == Some(marker) && plane.matches(&specs) {
            self.tier_sync = Some(plane);
            return;
        }
        self.refresh_snapshot_cache();
        let root_state = self
            .snapshot_cache
            .as_ref()
            .expect("cache just refreshed")
            .snapshot
            .clone();
        // A wholesale shard-routing change (a model swap with a different
        // shard count) makes deltas impossible — reseed the rows outright.
        if plane
            .rows()
            .first()
            .is_some_and(|row| row.state().shard_count != root_state.shard_count)
        {
            plane.clear();
        }
        let reseeded = plane.is_empty();
        plane.resize(&specs, &root_state);
        if reseeded {
            // Seeding ships the full snapshot down the tree, once per row.
            let bytes = self
                .snapshot_cache
                .as_ref()
                .expect("cache just refreshed")
                .encoded_bytes();
            for (tier, receivers) in plane
                .rows()
                .iter()
                .map(|row| (row.tier() as u64, row.width() as u64))
                .collect::<Vec<_>>()
            {
                self.record(MetricEvent::TierSync {
                    tier,
                    bytes,
                    receivers,
                    delta: false,
                });
            }
        } else {
            let base = plane
                .rows()
                .last()
                .expect("specs are non-empty")
                .state()
                .clone();
            let delta = self.delta_since(&base);
            let bytes = delta.encode().len() as u64;
            for (tier, receivers) in plane
                .rows()
                .iter()
                .map(|row| (row.tier() as u64, row.width() as u64))
                .collect::<Vec<_>>()
            {
                self.record(MetricEvent::TierSync {
                    tier,
                    bytes,
                    receivers,
                    delta: true,
                });
            }
            plane
                .apply_relayed_all(&delta)
                .expect("a refresh delta cut against the rows' shared base must apply");
        }
        recorder().instant(
            "tier.refresh",
            "tier",
            &[
                ("fleet", self.obs_id),
                ("epoch", self.epoch),
                ("rows", plane.rows().len() as u64),
                ("reseeded", reseeded as u64),
            ],
        );
        plane.mark_synced(marker);
        self.tier_sync = Some(plane);
    }

    /// Record that the root served a sync directly. While the tier plane is
    /// active this is the bottleneck the tree exists to remove, so it books a
    /// [`MetricEvent::RootSyncBypass`] — structurally unreachable today, held
    /// at zero by the tree-sync tests.
    fn root_sync_serves(&mut self) {
        if self.tier_sync_active() {
            self.record(MetricEvent::RootSyncBypass);
        }
    }

    /// The full-state payload for the next sync, served through a
    /// [`SyncSource`]: the manager tree's leaf tier when the tier plane is
    /// active, the root itself otherwise. Returns the payload plus the
    /// serving `(peer, tier)` (tier 0 = the root). Accounting-free — the
    /// caller books what actually ships.
    fn sync_source_payload(&mut self) -> (SyncPayload, PeerId, u32) {
        if self.tier_sync_active() {
            self.tier_refresh();
            if let Some(row) = self.tier_sync.as_mut().and_then(|p| p.leaf_row_mut()) {
                let (peer, tier) = (row.peer(), row.tier());
                return (row.snapshot_for(), peer, tier);
            }
        }
        self.root_sync_serves();
        (SyncSource::snapshot_for(self), COORDINATOR, 0)
    }

    /// Encoded size of the delta advancing `base` to the current state, from
    /// the same source that served the sync payload (`tier` as returned by
    /// [`Fleet::sync_source_payload`]). Tier cuts are byte-identical to root
    /// cuts — `DeltaBuilder` output is canonical in the base and the state.
    fn sync_delta_bytes_from(&mut self, tier: u32, base: &Snapshot) -> u64 {
        if tier > 0 {
            if let Some(row) = self.tier_sync.as_mut().and_then(|p| p.leaf_row_mut()) {
                return row.delta_bytes_since(base);
            }
        }
        self.delta_bytes_since(base)
    }

    /// Book one payload shipped across a tier link to a member: a
    /// [`MetricEvent::TierSync`] with a single receiver plus a `tier.sync`
    /// trace instant. No-op for root-direct sync (tier 0).
    fn record_tier_ship(&mut self, tier: u32, bytes: u64, delta: bool, node: NodeId) {
        if tier == 0 {
            return;
        }
        self.record(MetricEvent::TierSync {
            tier: tier as u64,
            bytes,
            receivers: 1,
            delta,
        });
        recorder().instant(
            "tier.sync",
            "tier",
            &[
                ("fleet", self.obs_id),
                ("epoch", self.epoch),
                ("tier", tier as u64),
                ("node", node as u64),
                ("bytes", bytes),
                ("delta", delta as u64),
            ],
        );
    }

    /// The real crash body behind [`MembershipOp::Crash`]: total state loss;
    /// the member misses every push until it rejoins and re-syncs.
    fn crash_one(&mut self, node: NodeId) {
        self.engine.crash(node);
        self.synced[node] = false;
        self.joiners.remove(&node);
        self.transport_desynced.remove(&node);
        self.record(MetricEvent::Crash);
        recorder().instant(
            "churn.crash",
            "churn",
            &[
                ("fleet", self.obs_id),
                ("epoch", self.epoch),
                ("node", node as u64),
            ],
        );
    }

    /// Apply one membership/sync operation — the single entry point every
    /// membership change and state sync routes through (the legacy per-op
    /// methods are deprecated wrappers over this). Any state that moves is
    /// served through a [`SyncSource`]: the manager tree's leaf tier when the
    /// tier plane is active, the root otherwise — one code path, one
    /// accounting story, for root-direct and tiered sync alike.
    pub fn apply_membership(&mut self, op: MembershipOp<'_>) -> SyncOutcome {
        match op {
            MembershipOp::Crash(nodes) => {
                for &node in nodes {
                    self.crash_one(node);
                }
                SyncOutcome {
                    nodes: nodes.to_vec(),
                    ..SyncOutcome::default()
                }
            }
            MembershipOp::JoinCold => {
                let node = self.engine.join();
                self.synced.push(false);
                self.member_base.push(self.epoch);
                self.record(MetricEvent::ColdJoin);
                recorder().instant(
                    "churn.join_cold",
                    "churn",
                    &[
                        ("fleet", self.obs_id),
                        ("epoch", self.epoch),
                        ("node", node as u64),
                    ],
                );
                SyncOutcome {
                    nodes: vec![node],
                    ..SyncOutcome::default()
                }
            }
            MembershipOp::JoinWarm => {
                let (payload, peer, tier) = self.sync_source_payload();
                let snapshot_bytes = payload.bytes();
                let node = self.engine.join();
                self.synced.push(true);
                self.member_base.push(self.epoch);
                self.engine.reset_and_apply(node, &payload.plan);
                self.record_tier_ship(tier, snapshot_bytes, false, node);
                self.record(MetricEvent::WarmJoin);
                self.record(MetricEvent::Bootstrap {
                    bytes: snapshot_bytes,
                });
                recorder().instant(
                    "churn.join_warm",
                    "churn",
                    &[
                        ("fleet", self.obs_id),
                        ("epoch", self.epoch),
                        ("node", node as u64),
                        ("bytes", snapshot_bytes),
                    ],
                );
                self.joiners.insert(node, self.epoch);
                self.log.push(FleetMessage::Bootstrap {
                    epoch: self.epoch,
                    members: 1,
                    snapshot_bytes,
                    plan_ops: payload.plan.len(),
                });
                SyncOutcome {
                    nodes: vec![node],
                    source_peer: Some(peer),
                    source_tier: Some(tier),
                    delta: false,
                    bytes: snapshot_bytes,
                }
            }
            MembershipOp::Rejoin { node, checkpoint } => {
                let (payload, peer, tier) = self.sync_source_payload();
                self.engine.rejoin(node);
                let full_bytes = payload.bytes();
                let (delta, bytes) = match checkpoint {
                    Some(base) => {
                        let delta_bytes = self.sync_delta_bytes_from(tier, base);
                        self.engine.reset_and_apply(node, &payload.plan);
                        self.record_tier_ship(tier, delta_bytes, true, node);
                        self.record(MetricEvent::DeltaSync {
                            delta_bytes,
                            full_bytes,
                        });
                        self.log.push(FleetMessage::DeltaSync {
                            epoch: self.epoch,
                            members: 1,
                            base_epoch: base.epoch,
                            delta_bytes,
                            full_bytes,
                        });
                        (true, delta_bytes)
                    }
                    None => {
                        self.engine.reset_and_apply(node, &payload.plan);
                        self.record_tier_ship(tier, full_bytes, false, node);
                        self.record(MetricEvent::Bootstrap { bytes: full_bytes });
                        self.log.push(FleetMessage::Bootstrap {
                            epoch: self.epoch,
                            members: 1,
                            snapshot_bytes: full_bytes,
                            plan_ops: payload.plan.len(),
                        });
                        (false, full_bytes)
                    }
                };
                self.record(MetricEvent::Rejoin);
                recorder().instant(
                    "churn.rejoin",
                    "churn",
                    &[
                        ("fleet", self.obs_id),
                        ("epoch", self.epoch),
                        ("node", node as u64),
                        ("delta", delta as u64),
                    ],
                );
                self.synced[node] = true;
                self.member_base[node] = self.epoch;
                self.joiners.insert(node, self.epoch);
                SyncOutcome {
                    nodes: vec![node],
                    source_peer: Some(peer),
                    source_tier: Some(tier),
                    delta,
                    bytes,
                }
            }
            MembershipOp::Resync(node) => {
                let (payload, peer, tier) = self.sync_source_payload();
                let snapshot_bytes = payload.bytes();
                self.engine.reset_and_apply(node, &payload.plan);
                self.synced[node] = true;
                self.member_base[node] = self.epoch;
                self.transport_desynced.remove(&node);
                self.record_tier_ship(tier, snapshot_bytes, false, node);
                self.record(MetricEvent::Bootstrap {
                    bytes: snapshot_bytes,
                });
                recorder().instant(
                    "churn.resync",
                    "churn",
                    &[
                        ("fleet", self.obs_id),
                        ("epoch", self.epoch),
                        ("node", node as u64),
                        ("bytes", snapshot_bytes),
                    ],
                );
                self.joiners.insert(node, self.epoch);
                self.log.push(FleetMessage::Bootstrap {
                    epoch: self.epoch,
                    members: 1,
                    snapshot_bytes,
                    plan_ops: payload.plan.len(),
                });
                SyncOutcome {
                    nodes: vec![node],
                    source_peer: Some(peer),
                    source_tier: Some(tier),
                    delta: false,
                    bytes: snapshot_bytes,
                }
            }
        }
    }

    /// A brand-new member joins with **no** state transfer: it is alive but
    /// unsynced (its digests are dropped, it holds no patches) until a resync
    /// bootstraps it. This is the no-durability baseline the cold-vs-warm
    /// experiments measure.
    #[deprecated(note = "use `apply_membership(MembershipOp::JoinCold)`")]
    pub fn join_member_cold(&mut self) -> NodeId {
        self.apply_membership(MembershipOp::JoinCold).nodes[0]
    }

    /// A brand-new member warm-starts from the sync source's snapshot: it decodes
    /// the current checkpoint, installs its net plan, and participates fully from
    /// its first epoch.
    #[deprecated(note = "use `apply_membership(MembershipOp::JoinWarm)`")]
    pub fn join_member_warm(&mut self) -> NodeId {
        self.apply_membership(MembershipOp::JoinWarm).nodes[0]
    }

    /// Take `node` down with total state loss (environment, patches — everything).
    /// The member misses every push until it rejoins and re-syncs.
    #[deprecated(note = "use `apply_membership(MembershipOp::Crash(&[node]))`")]
    pub fn crash_member(&mut self, node: NodeId) {
        self.apply_membership(MembershipOp::Crash(&[node]));
    }

    /// Take several members down with total state loss.
    #[deprecated(note = "use `apply_membership(MembershipOp::Crash(nodes))`")]
    pub fn crash_members(&mut self, nodes: &[NodeId]) {
        self.apply_membership(MembershipOp::Crash(nodes));
    }

    /// Bring a crashed member back up. With `last_checkpoint`, the member is
    /// advanced by a shard-keyed delta (it already holds the base state); without,
    /// it re-downloads the full snapshot. Either way it rejoins fully synced.
    #[deprecated(note = "use `apply_membership(MembershipOp::Rejoin { node, checkpoint })`")]
    pub fn rejoin_member(&mut self, node: NodeId, last_checkpoint: Option<&Snapshot>) {
        self.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: last_checkpoint,
        });
    }

    /// Bootstrap an alive but unsynced member (a cold joiner, typically) to the
    /// current net configuration from the sync source's full snapshot.
    #[deprecated(note = "use `apply_membership(MembershipOp::Resync(node))`")]
    pub fn resync_member(&mut self, node: NodeId) {
        self.apply_membership(MembershipOp::Resync(node));
    }

    /// Maintainer-facing reports for every failure the fleet has responded to, in
    /// ascending failure-location order (regardless of which shard owns each).
    pub fn reports(&self) -> Vec<RepairReport> {
        let mut reports: Vec<RepairReport> = self
            .manager_shards
            .iter()
            .flat_map(|s| s.responders().map(|(_, r)| r.report()))
            .collect();
        reports.sort_by_key(|r| r.failure_location);
        reports
    }

    /// The responder for `location`, if the fleet has one (on whichever manager
    /// shard owns the location).
    fn responder(&self, location: Addr) -> Option<&cv_core::FailureResponder> {
        self.manager_shards[self.router.shard_of(location)].get(location)
    }

    /// True if a successful repair is distributed for the failure at `location`.
    pub fn is_protected_against(&self, location: Addr) -> bool {
        self.responder(location)
            .map(|r| r.is_protected())
            .unwrap_or(false)
    }

    /// The response phase for the failure at `location`.
    pub fn phase_of(&self, location: Addr) -> Option<Phase> {
        self.responder(location).map(|r| r.phase())
    }

    /// Replace the community model wholesale (centralized learning / experiments
    /// needing the exact single-machine model). Resets the sharded store to match.
    pub fn set_model(&mut self, model: LearnedModel) {
        self.store = ShardedInvariantStore::from_database(
            model.invariants.clone(),
            self.store.shard_count(),
        );
        // No checkpoint equals the new state — not even one cut at the current
        // epoch before the swap — so incremental answers begin at the *next*
        // epoch; bases at or before this one fall back to materialized diffs.
        self.store.reset_dirty(self.epoch + 1);
        self.model = model;
        self.snapshot_cache = None;
        self.delta_cache = None;
        // A same-epoch state swap: bump the version so the tier plane refreshes.
        self.state_version += 1;
    }

    /// Amortized parallel learning (Section 3.1): the learning pages are divided among
    /// the members round-robin; each member traces only its share and uploads its
    /// locally inferred invariants; shard workers merge the uploads in parallel; the
    /// fused snapshot becomes the community model. Erroneous runs never contribute.
    pub fn distributed_learning(&mut self, pages: &[Vec<Word>]) {
        let span = recorder()
            .span("fleet.learning", "fleet")
            .arg("fleet", self.obs_id)
            .arg("epoch", self.epoch)
            .arg("pages", pages.len() as u64);
        // Stamp this round's mutations into the current epoch's dirty buckets
        // (dirty_since is inclusive of the base epoch precisely because learning
        // can land while an epoch — and a checkpoint cut in it — is still open).
        self.store.begin_epoch(self.epoch);
        let locals = self.engine.learn(&self.image, pages);
        // Each member's locally inferred model crosses the transport as one
        // acked Upload envelope; the coordinator merges whatever arrives, in
        // sequence order — which is exactly the engines' return order, so a
        // lossless run merges byte-identically to the pre-transport fleet.
        let epoch = self.epoch;
        let mut pending: BTreeMap<u64, Envelope> = BTreeMap::new();
        for (node, local) in locals {
            let procs: Vec<Addr> = local.procedures.procedures().map(|p| p.entry).collect();
            let seq = self.next_seq();
            pending.insert(
                seq,
                Envelope {
                    from: node as PeerId,
                    to: COORDINATOR,
                    epoch,
                    seq,
                    payload: EnvelopePayload::Upload {
                        invariants: Arc::new(local.invariants),
                        procs: Arc::new(procs),
                    },
                },
            );
        }
        let uploads_in = self.exchange(epoch, pending).received;
        let mut databases = Vec::with_capacity(uploads_in.len());
        let mut upload_lens: BTreeMap<NodeId, usize> = BTreeMap::new();
        for env in uploads_in {
            if let EnvelopePayload::Upload { invariants, procs } = env.payload {
                upload_lens.insert(env.from as NodeId, invariants.len());
                // The central manager re-discovers the procedure CFGs the
                // members saw (rebuilt from the image, not uploaded — as in
                // the seed).
                for &entry in procs.iter() {
                    if let Some(entry) = self.model.procedures.observe_block(entry) {
                        self.store.mark_proc(entry);
                    }
                }
                databases.push(Arc::try_unwrap(invariants).unwrap_or_else(|arc| (*arc).clone()));
            }
        }
        // Every alive member reports, even one whose round-robin share was empty
        // (its upload is zero invariants). The classic scheduler returns those
        // members with empty models; the event engine skips them — either way
        // the console log lists the whole alive fleet, in node order.
        let mut uploads = Vec::with_capacity(self.alive_count());
        for node in 0..self.node_count() {
            if self.engine.is_alive(node) {
                uploads.push((node, upload_lens.remove(&node).unwrap_or(0)));
            }
        }
        self.store.merge_uploads(&databases);
        self.model.invariants = self.store.snapshot();
        self.log.push(FleetMessage::InvariantUploads {
            epoch: self.epoch,
            uploads,
        });
        self.record(MetricEvent::LearningPages {
            pages: pages.len() as u64,
        });
        self.record_transport_event();
        span.finish();
        self.snapshot_cache = None;
        self.delta_cache = None;
        // Learning mutates state without advancing the epoch: bump the version
        // so the tier plane refreshes before the next sync.
        self.state_version += 1;
    }

    /// Execute one epoch: run `presentations` across the fleet in parallel, route
    /// the digests into per-shard manager buckets, drive the responder shards in
    /// parallel, merge their patch plans, and push the merged plan to every member.
    pub fn run_epoch(&mut self, presentations: &[Presentation]) -> EpochOutcome {
        self.run_epoch_churn(presentations, &[])
    }

    /// [`Fleet::run_epoch`] with mid-epoch churn: the members in `kills` execute
    /// their presentations, then crash with total state loss *before* the epoch
    /// boundary — so they miss this epoch's patch push and rejoin desynced. This is
    /// the failure mode the delta-sync plane exists to repair.
    pub fn run_epoch_churn(
        &mut self,
        presentations: &[Presentation],
        kills: &[NodeId],
    ) -> EpochOutcome {
        self.epoch += 1;
        let epoch = self.epoch;
        self.store.begin_epoch(epoch);
        let active: Vec<Addr> = self
            .manager_shards
            .iter()
            .flat_map(|s| s.locations())
            .collect();

        // Every presentation crosses the transport; what the members actually
        // received (everything, on a lossless backend) is what runs.
        let presentations = self.deliver_presentations(epoch, presentations);

        let execution_span = recorder()
            .timed_span("fleet.execution", "fleet")
            .arg("fleet", self.obs_id)
            .arg("epoch", epoch)
            .arg("presentations", presentations.len() as u64)
            .arg("members", self.alive_count() as u64);
        let mut records = self.engine.run_epoch(&presentations, &active);
        let execution = execution_span.finish();

        // Mid-epoch churn: these members ran, reported, and then died — the
        // boundary push below will not reach them.
        for &node in kills {
            self.crash_one(node);
        }

        let manager_span = recorder()
            .timed_span("fleet.manager", "fleet")
            .arg("fleet", self.obs_id)
            .arg("epoch", epoch);

        // Pure routing: flatten the batch into routed digests and failure events (in
        // batch order), then partition them by failure location.
        let routing_span = recorder().span("fleet.routing", "fleet");
        let mut digests: Vec<RoutedDigest> = Vec::new();
        let mut failure_events: Vec<FailureEvent> = Vec::new();
        let mut failures: Vec<(NodeId, Addr)> = Vec::new();
        for record in &mut records {
            if matches!(record.status, RunStatus::Completed) {
                if let Some(sync_epoch) = self.joiners.remove(&record.node) {
                    self.record(MetricEvent::JoinerImmunity {
                        epochs: epoch.saturating_sub(sync_epoch),
                    });
                }
            }
            if !self.synced[record.node] {
                // The member ran under a stale patch configuration (cold joiner or
                // missed pushes): its digests are not evidence about the current
                // patches — the membership-level mid-batch reconfiguration rule.
                record.digests.clear();
            }
            for (location, digest) in record.digests.drain(..) {
                digests.push(RoutedDigest {
                    source: record.node,
                    location,
                    digest,
                });
            }
            if let Some(failure) = &record.failure {
                failures.push((record.node, failure.location));
                if self.metrics.immunity(failure.location).is_none() {
                    // First report ever at this location: the repair timeline for
                    // it starts here.
                    recorder().instant(
                        "timeline.detected",
                        "timeline",
                        &[
                            ("fleet", self.obs_id),
                            ("epoch", epoch),
                            ("location", u64::from(failure.location)),
                        ],
                    );
                }
                self.record(MetricEvent::FirstFailure {
                    location: failure.location,
                    epoch,
                });
                failure_events.push(FailureEvent {
                    source: record.node,
                    failure: failure.clone(),
                });
            }
        }
        let digest_count = digests.len() as u64;
        let buckets = self.router.route(digests, failure_events);
        routing_span
            .arg("fleet", self.obs_id)
            .arg("epoch", epoch)
            .arg("digests", digest_count)
            .arg("failures", failures.len() as u64)
            .finish();

        // Fan the buckets across the worker pool: each worker drives a disjoint
        // slice of responder shards. Shards share nothing, so this is embarrassingly
        // parallel; per-shard busy time is measured inside the worker.
        let fanout_span = recorder()
            .timed_span("fleet.manager_fanout", "fleet")
            .arg("fleet", self.obs_id)
            .arg("epoch", epoch)
            .arg("shards", self.manager_shards.len() as u64);
        let (outcomes, ran_parallel) = drive_shards(
            &mut self.manager_shards,
            buckets,
            &self.model,
            &self.config,
            self.parallel,
            self.manager_threads,
            self.obs_id,
            epoch,
        );
        let fanout = fanout_span.arg("parallel", ran_parallel as u64).finish();

        // Deterministic merge: per-shard plans collapse into one canonically ordered
        // fleet-wide plan; observation reports merge by (disjoint) location.
        let merge_span = recorder().span("fleet.plan_merge", "fleet");
        let mut shard_busy = vec![Duration::ZERO; self.manager_shards.len()];
        let mut plans: Vec<PatchPlan> = Vec::with_capacity(outcomes.len());
        let mut observation_batches: BTreeMap<Addr, Vec<(NodeId, usize)>> = BTreeMap::new();
        for (index, (outcome, busy)) in outcomes.into_iter().enumerate() {
            shard_busy[index] = busy;
            let ShardOutcome {
                plan,
                observations,
                started: _,
            } = outcome;
            plans.push(plan);
            for (location, reports) in observations {
                observation_batches.insert(location, reports);
            }
        }
        // With a manager tree configured, per-shard plans merge in groups of
        // `tree_fanout` per tier (coordinators-of-coordinators); the stable
        // location sort makes the result byte-identical to the flat merge, so
        // only the accounting differs.
        let plan = if self.tree_fanout >= 2 && plans.len() > 1 {
            let tree = ManagerTree::new(self.tree_fanout);
            let (plan, tiers) = tree.merge_plans(plans);
            if !plan.is_empty() {
                for t in &tiers {
                    self.record(MetricEvent::TierMerge {
                        tier: t.tier as u64,
                        groups: t.groups as u64,
                        plans_in: t.plans_in as u64,
                    });
                    recorder().instant(
                        "fleet.tier_merge",
                        "fleet",
                        &[
                            ("fleet", self.obs_id),
                            ("epoch", epoch),
                            ("tier", t.tier as u64),
                            ("groups", t.groups as u64),
                            ("plans_in", t.plans_in as u64),
                        ],
                    );
                }
            }
            plan
        } else {
            PatchPlan::merge(plans)
        };
        // On a lossy transport the push below may not reach everyone: keep the
        // pre-push net configuration so an unreachable member can be rolled
        // back to exactly the state it actually still holds.
        let net_before = if self.lossy && !plan.is_empty() {
            Some(self.net.to_plan())
        } else {
            None
        };
        self.net.apply(&plan);
        if !plan.is_empty() {
            // Plan application changes the configuration side of the next
            // checkpoint: stamp the store shards it touched (the shared router —
            // the same keying deltas and the live store use) into the dirty plane.
            let router = cv_inference::ShardRouter::new(self.store.shard_count());
            self.store.mark_plan_shards(&plan.shards_touched(&router));
        }
        merge_span
            .arg("fleet", self.obs_id)
            .arg("epoch", epoch)
            .arg("plan_ops", plan.len() as u64)
            .finish();
        let manager = manager_span.finish();

        // Batch order mirrors the seed's within-browse order as far as batching
        // allows: observation reports first, then failure notifications, then the
        // patch plan (the seed interleaves pushes per location; a batch cannot).
        for (location, reports) in observation_batches {
            self.log.push(FleetMessage::Observations {
                epoch,
                location,
                reports,
            });
        }
        self.log.push(FleetMessage::Failures { epoch, failures });

        let push_span = recorder()
            .timed_span("fleet.patch_push", "fleet")
            .arg("fleet", self.obs_id)
            .arg("epoch", epoch)
            .arg("plan_ops", plan.len() as u64)
            .arg("members", self.alive_count() as u64);
        // The plan reaches members as acked, idempotent envelopes; the engine
        // then applies it once, fleet-wide. The engines share patch state
        // across members, so per-member application is expressed as this
        // global apply plus a rollback of whoever provably missed the push.
        let acked = self.push_plan_over_transport(epoch, &plan);
        self.engine.apply_plan(&plan);
        let push_elapsed = push_span.finish();
        if let Some(net_before) = net_before {
            let acked_set: BTreeSet<NodeId> = acked.iter().copied().collect();
            let mut missed = 0u64;
            for node in 0..self.node_count() {
                if !self.engine.is_alive(node) || acked_set.contains(&node) {
                    continue;
                }
                if self.synced[node] {
                    // A synced member that never acked still runs the pre-push
                    // configuration: undo the optimistic apply and park it for
                    // the resync pass.
                    self.engine.reset_and_apply(node, &net_before);
                    self.synced[node] = false;
                    self.joiners.remove(&node);
                    self.transport_desynced.insert(node);
                    missed += 1;
                    recorder().instant(
                        "transport.desync",
                        "transport",
                        &[
                            ("fleet", self.obs_id),
                            ("epoch", epoch),
                            ("node", node as u64),
                        ],
                    );
                }
                // Already-unsynced members (cold joiners) keep the optimistic
                // apply: their state is untrusted either way, and the resync
                // that brings them in reinstalls the whole configuration.
            }
            if missed > 0 {
                self.record(MetricEvent::TransportDesync { members: missed });
            }
        }
        if !plan.is_empty() {
            for op in plan.ops() {
                recorder().instant(
                    "timeline.plan_push",
                    "timeline",
                    &[
                        ("fleet", self.obs_id),
                        ("epoch", epoch),
                        ("location", u64::from(op.location)),
                        ("members", self.alive_count() as u64),
                    ],
                );
            }
            self.record(MetricEvent::PatchPush {
                pushes: plan.len() as u64,
                members: acked.len() as u64,
                elapsed: push_elapsed,
            });
            if self.tree_fanout >= 2 {
                // Account the push tier by tier down the manager tree: the root
                // contacts its children, each contacts theirs — no coordinator
                // talks to more than `tree_fanout` nodes.
                let members = self.alive_count();
                for t in ManagerTree::new(self.tree_fanout).push_tiers(members) {
                    self.record(MetricEvent::TierPush {
                        tier: t.tier as u64,
                        groups: t.groups as u64,
                        members: members as u64,
                    });
                    recorder().instant(
                        "fleet.tier_push",
                        "fleet",
                        &[
                            ("fleet", self.obs_id),
                            ("epoch", epoch),
                            ("tier", t.tier as u64),
                            ("groups", t.groups as u64),
                        ],
                    );
                }
            }
        }
        self.log.push(FleetMessage::PatchPushes {
            epoch,
            members: acked.len(),
            plan,
        });

        // Bring back whoever the transport desynced (a no-op when lossless),
        // retain this epoch's checkpoint for future delta resyncs, and retire
        // idempotence keys nobody can retransmit anymore.
        self.transport_resync_pass(epoch);
        self.retain_checkpoint(epoch);
        self.dedupe.retire_below(epoch);

        let newly_protected: Vec<Addr> = self
            .manager_shards
            .iter()
            .flat_map(|shard| shard.responders())
            .filter(|(loc, responder)| {
                responder.is_protected()
                    && self
                        .metrics
                        .immunity(*loc)
                        .is_some_and(|r| r.protected_epoch.is_none())
            })
            .map(|(loc, _)| loc)
            .collect();
        for loc in newly_protected {
            // The repair survived evaluation fleet-wide: the timeline for this
            // location ends here.
            recorder().instant(
                "timeline.protected",
                "timeline",
                &[
                    ("fleet", self.obs_id),
                    ("epoch", epoch),
                    ("location", u64::from(loc)),
                    ("members", self.alive_count() as u64),
                ],
            );
            self.record(MetricEvent::Protected {
                location: loc,
                epoch,
            });
        }
        self.record(MetricEvent::Epoch {
            pages: records.len() as u64,
            execution,
            manager,
        });
        self.record(MetricEvent::ManagerFanout {
            shard_busy,
            fanout,
            ran_parallel,
        });
        self.record(MetricEvent::MemberResidency {
            resident_bytes: self.engine.resident_state_bytes(&self.image),
            shared_bytes: self.engine.shared_state_bytes(),
            members: self.node_count() as u64,
        });
        self.record_transport_event();
        let rec = recorder();
        if rec.is_enabled() {
            rec.counter(
                "fleet.pages_processed",
                self.metrics.pages_processed,
                &[("fleet", self.obs_id)],
            );
            rec.counter(
                "fleet.alive_members",
                self.alive_count() as u64,
                &[("fleet", self.obs_id)],
            );
            rec.counter(
                "fleet.patch_applications",
                self.metrics.patch_applications,
                &[("fleet", self.obs_id)],
            );
            rec.counter(
                "transport.envelopes_sent",
                self.metrics.envelopes_sent,
                &[("fleet", self.obs_id)],
            );
            rec.counter(
                "transport.retransmits",
                self.metrics.retransmits,
                &[("fleet", self.obs_id)],
            );
        }

        EpochOutcome {
            epoch,
            outcomes: records
                .into_iter()
                .map(|r| MemberOutcome {
                    node: r.node,
                    blocked: matches!(r.status, RunStatus::Failure(_)),
                    status: r.status,
                    rendered: r.rendered,
                })
                .collect(),
        }
    }

    /// Convenience single-presentation epoch (the facade path): present `page` to
    /// `node` and return its outcome.
    pub fn present(&mut self, node: NodeId, page: &[Word]) -> MemberOutcome {
        assert!(node < self.node_count(), "unknown node {node}");
        let mut outcome = self.run_epoch(&[Presentation::new(node, page)]);
        outcome.outcomes.remove(0)
    }
}

/// The root coordinator is itself a [`SyncSource`] — the same contract the tier
/// rows implement, so `apply_membership` serves state through one interface
/// whether the fleet is flat or tiered.
impl SyncSource for Fleet {
    fn checkpoint(&mut self) -> Snapshot {
        Fleet::checkpoint(self)
    }

    fn delta_since(&mut self, base: &Snapshot) -> DeltaSnapshot {
        Fleet::delta_since(self, base)
    }

    fn snapshot_for(&mut self) -> SyncPayload {
        self.refresh_snapshot_cache();
        let cache = self.snapshot_cache.as_ref().expect("cache just refreshed");
        SyncPayload {
            epoch: cache.epoch,
            plan: cache.snapshot.plan.clone(),
            encoded: Arc::clone(&cache.encoded),
        }
    }

    fn covered_floor(&self) -> u64 {
        self.retained.keys().next().copied().unwrap_or(self.epoch)
    }
}

/// Minimum routed events in an epoch before the manager fan-out spawns threads.
/// Below this, per-shard work is microseconds and thread spawns would dominate the
/// very latency the fan-out exists to cut — small epochs run inline.
const MIN_PARALLEL_MANAGER_EVENTS: usize = 512;

/// Drive every responder shard over its bucket, returning each shard's outcome and
/// busy time (in shard-index order) plus whether the fan-out actually ran on
/// multiple threads.
///
/// Shards are distributed in contiguous chunks across at most `manager_threads`
/// threads when `parallel` is set, more than one bucket carries work, and the batch
/// is large enough to amortize the spawns; otherwise they run inline on the calling
/// thread. Either way the result is identical — shards are mutually independent and
/// individually deterministic.
#[allow(clippy::too_many_arguments)]
fn drive_shards(
    shards: &mut [ResponderShard],
    buckets: Vec<ShardBucket>,
    model: &LearnedModel,
    config: &ClearViewConfig,
    parallel: bool,
    manager_threads: usize,
    obs_id: u64,
    epoch: u64,
) -> (Vec<(ShardOutcome, Duration)>, bool) {
    debug_assert_eq!(shards.len(), buckets.len());
    let workers = manager_threads.min(shards.len()).max(1);
    let occupied = buckets.iter().filter(|b| !b.is_empty()).count();
    let events: usize = buckets
        .iter()
        .map(|b| b.digests.len() + b.failures.len())
        .sum();
    if parallel && workers > 1 && occupied > 1 && events >= MIN_PARALLEL_MANAGER_EVENTS {
        let mut slots: Vec<Option<(ShardOutcome, Duration)>> = Vec::new();
        slots.resize_with(shards.len(), || None);
        std::thread::scope(|scope| {
            // Chunk shards (and their buckets and output slots) into contiguous
            // per-worker slices; each worker drives its slice in order.
            let chunk = shards.len().div_ceil(workers);
            let shard_chunks = shards.chunks_mut(chunk);
            let slot_chunks = slots.chunks_mut(chunk);
            let mut buckets = buckets;
            // Draining from the front keeps bucket i with shard i.
            let mut rest = buckets.drain(..);
            let mut chunk_start = 0u64;
            for (shard_chunk, slot_chunk) in shard_chunks.zip(slot_chunks) {
                let chunk_buckets: Vec<ShardBucket> =
                    rest.by_ref().take(shard_chunk.len()).collect();
                let first_shard = chunk_start;
                chunk_start += shard_chunk.len() as u64;
                scope.spawn(move || {
                    for (offset, ((shard, bucket), slot)) in shard_chunk
                        .iter_mut()
                        .zip(chunk_buckets)
                        .zip(slot_chunk.iter_mut())
                        .enumerate()
                    {
                        *slot = Some(process_timed(
                            shard,
                            bucket,
                            model,
                            config,
                            obs_id,
                            epoch,
                            first_shard + offset as u64,
                        ));
                    }
                });
            }
        });
        (
            slots
                .into_iter()
                .map(|s| s.expect("every shard processed"))
                .collect(),
            true,
        )
    } else {
        (
            shards
                .iter_mut()
                .zip(buckets)
                .enumerate()
                .map(|(index, (shard, bucket))| {
                    process_timed(shard, bucket, model, config, obs_id, epoch, index as u64)
                })
                .collect(),
            false,
        )
    }
}

/// Process one bucket on one shard, measuring the shard's busy time. The busy
/// time the metrics fold and the `fleet.manager_shard` span the trace shows are
/// one measurement.
fn process_timed(
    shard: &mut ResponderShard,
    bucket: ShardBucket,
    model: &LearnedModel,
    config: &ClearViewConfig,
    obs_id: u64,
    epoch: u64,
    shard_index: u64,
) -> (ShardOutcome, Duration) {
    let events = (bucket.digests.len() + bucket.failures.len()) as u64;
    let span = recorder()
        .timed_span("fleet.manager_shard", "fleet")
        .arg("fleet", obs_id)
        .arg("epoch", epoch)
        .arg("shard", shard_index)
        .arg("events", events);
    let outcome = shard.process(bucket, model, config);
    (outcome, span.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::MemoryLayout;

    fn tiny_image() -> BinaryImage {
        let layout = MemoryLayout::default();
        BinaryImage {
            layout,
            code: vec![0],
            data: vec![],
            entry: layout.code_base,
        }
    }

    #[test]
    fn sequential_config_skips_the_worker_pool() {
        let fleet = Fleet::new(
            tiny_image(),
            ClearViewConfig::default(),
            FleetConfig::new(64).sequential(),
        );
        assert_eq!(
            fleet.worker_count(),
            1,
            "sequential fleets must not build a worker pool"
        );
        // sequential() after other overrides still collapses to one worker.
        let fleet = Fleet::new(
            tiny_image(),
            ClearViewConfig::default(),
            FleetConfig::new(64).with_workers(8).sequential(),
        );
        assert_eq!(fleet.worker_count(), 1);
    }

    #[test]
    fn manager_shard_count_is_configurable_and_at_least_one() {
        let fleet = Fleet::new(
            tiny_image(),
            ClearViewConfig::default(),
            FleetConfig::new(4).with_manager_shards(3),
        );
        assert_eq!(fleet.manager_shard_count(), 3);
        let fleet = Fleet::new(
            tiny_image(),
            ClearViewConfig::default(),
            FleetConfig::new(4).with_manager_shards(0),
        );
        assert_eq!(fleet.manager_shard_count(), 1);
    }
}
