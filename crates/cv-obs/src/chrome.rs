//! Chrome `trace_event` export.
//!
//! The exported JSON loads in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev). Mapping:
//!
//! * a fleet-stamped event (`"fleet"` argument) renders under **pid = fleet id**,
//!   so each fleet in a multi-fleet run (`fleet_scale` runs several back to
//!   back) gets its own process track; unstamped events (the cv-store codecs)
//!   render under pid 0;
//! * spans are complete (`"ph":"X"`) events with microsecond `ts`/`dur`
//!   (fractional, so sub-microsecond spans stay visible);
//! * instants are `"ph":"i"` thread-scoped markers;
//! * counters are `"ph":"C"` samples, graphed by Perfetto as time series.

use crate::recorder::{EventKind, TraceEvent};
use std::fmt::Write;

fn micros(nanos: u64) -> f64 {
    nanos as f64 / 1_000.0
}

/// Escape a string for a JSON string literal. Event names are static Rust
/// identifiers today, but the exporter stays correct if that ever changes.
fn escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_args(out: &mut String, event: &TraceEvent) {
    out.push('{');
    let mut first = true;
    if let EventKind::Counter { value } = event.kind {
        out.push_str("\"value\":");
        let _ = write!(out, "{value}");
        first = false;
    }
    for (key, value) in &event.args {
        if !first {
            out.push(',');
        }
        out.push('"');
        escape(out, key);
        let _ = write!(out, "\":{value}");
        first = false;
    }
    out.push('}');
}

/// Render a recorded stream as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 120 + 64);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;

    // Name each fleet's process track; pid 0 carries unattributed events.
    let mut pids: Vec<u64> = events.iter().map(pid_of).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let name = if *pid == 0 {
            "unattributed (store codecs, shared)".to_string()
        } else {
            format!("fleet {pid}")
        };
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
        );
    }

    for event in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("{\"name\":\"");
        escape(&mut out, event.name);
        out.push_str("\",\"cat\":\"");
        escape(&mut out, event.cat);
        out.push_str("\",");
        match event.kind {
            EventKind::Span { dur_nanos } => {
                let _ = write!(
                    out,
                    "\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},",
                    micros(event.ts_nanos),
                    micros(dur_nanos)
                );
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},",
                    micros(event.ts_nanos)
                );
            }
            EventKind::Counter { .. } => {
                let _ = write!(out, "\"ph\":\"C\",\"ts\":{:.3},", micros(event.ts_nanos));
            }
        }
        let _ = write!(
            out,
            "\"pid\":{},\"tid\":{},\"args\":",
            pid_of(event),
            event.tid
        );
        write_args(&mut out, event);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// The process track an event renders under: its fleet id, or 0 if unstamped.
fn pid_of(event: &TraceEvent) -> u64 {
    event.arg("fleet").unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    /// A minimal structural JSON check: balanced braces/brackets outside string
    /// literals, and no trailing comma before a closer. Not a full parser, but
    /// catches every way this hand-rolled writer could go wrong.
    fn assert_structurally_valid_json(s: &str) {
        let mut depth: Vec<char> = Vec::new();
        let mut in_string = false;
        let mut escaped = false;
        let mut last_significant = ' ';
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                    last_significant = '"';
                }
                continue;
            }
            match c {
                '"' => {
                    in_string = true;
                }
                '{' => depth.push('}'),
                '[' => depth.push(']'),
                '}' | ']' => {
                    assert_ne!(last_significant, ',', "trailing comma before {c}");
                    assert_eq!(depth.pop(), Some(c), "mismatched closer {c}");
                }
                _ => {}
            }
            if !c.is_whitespace() {
                last_significant = c;
            }
        }
        assert!(!in_string, "unterminated string");
        assert!(depth.is_empty(), "unbalanced: {depth:?}");
    }

    #[test]
    fn export_contains_spans_instants_counters_and_is_balanced() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        rec.span("fleet.execution", "fleet")
            .arg("fleet", 2)
            .arg("epoch", 1)
            .finish();
        rec.instant(
            "timeline.protected",
            "timeline",
            &[("fleet", 2), ("location", 64)],
        );
        rec.counter("fleet.pages", 400, &[("fleet", 2)]);
        rec.span("store.snapshot_encode", "store").finish();
        let json = chrome_trace_json(&rec.events());
        assert_structurally_valid_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":400"));
        // The fleet-stamped events render under pid 2; the store span under 0.
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"name\":\"fleet 2\""));
    }

    #[test]
    fn empty_stream_is_still_valid() {
        let json = chrome_trace_json(&[]);
        assert_structurally_valid_json(&json);
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let mut out = String::new();
        escape(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "a\\\"b\\\\c\\u000ad");
    }
}
