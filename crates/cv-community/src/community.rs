//! The application community: many machines running the same application, cooperating
//! to learn, detect, and repair (Section 3 of the paper).
//!
//! The [`Community`] owns one [`ManagedExecutionEnvironment`] per member node plus the
//! central ClearView manager state: the merged invariant database, one
//! [`FailureResponder`] per failure location, and the patch directory. Learning is
//! amortized across members (each member traces a share of the learning workload and
//! uploads only its inferred invariants); failures reported by any member drive a single
//! community-wide response; and successful patches are distributed to every member —
//! including members that have never been exposed to the attack.

use crate::messages::{Message, NodeId};
use cv_core::{ClearViewConfig, DigestStatus, Directive, FailureResponder, Phase, RepairReport, RunDigest};
use cv_inference::{InvariantDatabase, Invariant, LearnedModel, LearningFrontend, ProcedureDatabase};
use cv_isa::{Addr, BinaryImage, Word};
use cv_patch::{install_hooks, uninstall, PatchHandle};
use cv_runtime::{EnvConfig, HookId, ManagedExecutionEnvironment, MonitorConfig, ObservationKind, RunResult, RunStatus};
use std::collections::BTreeMap;

/// Patches currently installed on one node for one failure.
#[derive(Default)]
struct NodePatchState {
    checks: Vec<(Invariant, PatchHandle, HookId)>,
    repair: Option<PatchHandle>,
}

/// The community-wide response to one failure location.
struct ResponseState {
    responder: FailureResponder,
    /// Patch bookkeeping per node.
    per_node: BTreeMap<NodeId, NodePatchState>,
}

/// The outcome of presenting a page to one community member.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityOutcome {
    /// The node that processed the page.
    pub node: NodeId,
    /// How the run ended.
    pub status: RunStatus,
    /// What the node rendered.
    pub rendered: Vec<Word>,
    /// True if a monitor blocked the page.
    pub blocked: bool,
}

/// An application community protected by ClearView.
pub struct Community {
    image: BinaryImage,
    config: ClearViewConfig,
    monitors: MonitorConfig,
    nodes: Vec<ManagedExecutionEnvironment>,
    model: LearnedModel,
    responses: BTreeMap<Addr, ResponseState>,
    log: Vec<Message>,
}

impl Community {
    /// Create a community of `node_count` members running `image` with an empty model.
    pub fn new(image: BinaryImage, config: ClearViewConfig, node_count: usize) -> Self {
        Self::with_monitors(image, config, node_count, MonitorConfig::full())
    }

    /// Create a community with an explicit monitor configuration.
    pub fn with_monitors(
        image: BinaryImage,
        config: ClearViewConfig,
        node_count: usize,
        monitors: MonitorConfig,
    ) -> Self {
        let nodes = (0..node_count.max(1))
            .map(|_| ManagedExecutionEnvironment::new(image.clone(), EnvConfig::with_monitors(monitors)))
            .collect();
        Community {
            model: LearnedModel {
                invariants: InvariantDatabase::new(),
                procedures: ProcedureDatabase::new(image.clone()),
            },
            image,
            config,
            monitors,
            nodes,
            responses: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// Number of community members.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The message log (failure notifications, patch distributions, ...).
    pub fn log(&self) -> &[Message] {
        &self.log
    }

    /// The merged, community-wide learned model.
    pub fn model(&self) -> &LearnedModel {
        &self.model
    }

    /// Maintainer-facing reports for every failure the community has responded to.
    pub fn reports(&self) -> Vec<RepairReport> {
        self.responses.values().map(|r| r.responder.report()).collect()
    }

    /// True if a successful repair is distributed for the failure at `location`.
    pub fn is_protected_against(&self, location: Addr) -> bool {
        self.responses
            .get(&location)
            .map(|r| r.responder.is_protected())
            .unwrap_or(false)
    }

    /// The response phase for the failure at `location`.
    pub fn phase_of(&self, location: Addr) -> Option<Phase> {
        self.responses.get(&location).map(|r| r.responder.phase())
    }

    /// Amortized parallel learning (Section 3.1): the learning pages are divided among
    /// the members round-robin; each member traces only its share, infers invariants
    /// locally, and uploads them; the central manager merges the uploads into the
    /// community-wide invariant database.
    ///
    /// Runs that fail or crash are discarded, so erroneous executions never contribute
    /// invariants.
    pub fn distributed_learning(&mut self, pages: &[Vec<Word>]) {
        let node_count = self.nodes.len();
        let mut frontends: Vec<LearningFrontend> = (0..node_count)
            .map(|_| LearningFrontend::new(self.image.clone()))
            .collect();
        for (i, page) in pages.iter().enumerate() {
            let node = i % node_count;
            let result = self.nodes[node].run_with_tracer(page, &mut frontends[node]);
            if result.is_completed() {
                frontends[node].commit_run();
            } else {
                frontends[node].discard_run();
            }
        }
        for (node, frontend) in frontends.into_iter().enumerate() {
            let local = frontend.into_model();
            self.log.push(Message::InvariantUpload {
                node,
                invariants: local.invariants.len(),
            });
            self.model.invariants.merge(&local.invariants);
            // The central manager also accumulates the procedure CFGs (these are
            // rebuilt from the image, not uploaded; merging here models the manager
            // performing the same discovery).
            for proc in local.procedures.procedures() {
                self.model.procedures.observe_block(proc.entry);
            }
        }
    }

    /// Centralized learning on a single member (used by experiments that need the exact
    /// single-machine model).
    pub fn centralized_learning(&mut self, pages: &[Vec<Word>]) {
        let (model, _) = cv_core::learn_model(&self.image, pages, self.monitors);
        self.model = model;
    }

    /// A member loads a page. Failures are reported to the central manager, which
    /// drives the response and distributes patches to every member.
    pub fn browse(&mut self, node: NodeId, page: &[Word]) -> CommunityOutcome {
        assert!(node < self.nodes.len(), "unknown node {node}");
        self.nodes[node].flush_cache();
        let result = self.nodes[node].run(page);
        let status = match &result.status {
            RunStatus::Completed => DigestStatus::Completed,
            RunStatus::Failure(f) => DigestStatus::FailureAt(f.location),
            RunStatus::Crash(_) => DigestStatus::Crashed,
        };

        // Route the outcome through every active response (the reporting node's
        // observations are the ones that matter for invariant checking).
        let locations: Vec<Addr> = self.responses.keys().copied().collect();
        for loc in locations {
            let directives = {
                let state = self.responses.get_mut(&loc).expect("response exists");
                let digest = Self::build_digest(state, node, &result, status);
                if !digest.observations.is_empty() {
                    self.log.push(Message::ObservationReport {
                        node,
                        location: loc,
                        observations: digest.observations.values().map(|v| v.len()).sum(),
                    });
                }
                state.responder.on_run(&digest, &self.model)
            };
            self.apply_directives(loc, directives);
        }

        // A failure at a new location starts a new community-wide response.
        if let RunStatus::Failure(failure) = &result.status {
            self.log.push(Message::FailureNotification {
                node,
                location: failure.location,
            });
            if !self.responses.contains_key(&failure.location) {
                let (responder, directives) =
                    FailureResponder::new(failure, &self.model, self.config);
                self.responses.insert(
                    failure.location,
                    ResponseState {
                        responder,
                        per_node: BTreeMap::new(),
                    },
                );
                self.apply_directives(failure.location, directives);
            }
        }

        CommunityOutcome {
            node,
            blocked: matches!(result.status, RunStatus::Failure(_)),
            status: result.status,
            rendered: result.rendered,
        }
    }

    fn build_digest(
        state: &ResponseState,
        node: NodeId,
        result: &RunResult,
        status: DigestStatus,
    ) -> RunDigest {
        let mut digest = RunDigest::with_status(status);
        if let Some(node_state) = state.per_node.get(&node) {
            for (inv, _, check_hook) in &node_state.checks {
                let seq: Vec<bool> = result
                    .observations
                    .iter()
                    .filter(|o| o.hook == *check_hook)
                    .map(|o| o.kind == ObservationKind::Satisfied)
                    .collect();
                if !seq.is_empty() {
                    digest.observations.insert(inv.clone(), seq);
                }
            }
        }
        digest
    }

    /// Apply the responder's directives to *every* member of the community: this is the
    /// patch distribution step that gives unexposed members immunity.
    fn apply_directives(&mut self, loc: Addr, directives: Vec<Directive>) {
        for directive in directives {
            match directive {
                Directive::InstallChecks(checks) => {
                    self.log.push(Message::ChecksDistributed {
                        location: loc,
                        invariants: checks.len(),
                    });
                    for node in 0..self.nodes.len() {
                        let mut installed = Vec::new();
                        for check in &checks {
                            let handle = install_hooks(&mut self.nodes[node], check.build_hooks());
                            let hook = *handle.hook_ids().last().expect("check hook");
                            installed.push((check.invariant.clone(), handle, hook));
                        }
                        let state = self.responses.get_mut(&loc).expect("response exists");
                        state.per_node.entry(node).or_default().checks = installed;
                    }
                }
                Directive::RemoveChecks => {
                    self.log.push(Message::ChecksRemoved { location: loc });
                    for node in 0..self.nodes.len() {
                        let state = self.responses.get_mut(&loc).expect("response exists");
                        let checks = state
                            .per_node
                            .entry(node)
                            .or_default()
                            .checks
                            .drain(..)
                            .collect::<Vec<_>>();
                        for (_, handle, _) in checks {
                            let _ = uninstall(&mut self.nodes[node], &handle);
                        }
                    }
                }
                Directive::InstallRepair(repair) => {
                    self.log.push(Message::RepairDistributed {
                        location: loc,
                        description: repair.description(),
                    });
                    for node in 0..self.nodes.len() {
                        let handle = install_hooks(&mut self.nodes[node], repair.build_hooks());
                        let state = self.responses.get_mut(&loc).expect("response exists");
                        state.per_node.entry(node).or_default().repair = Some(handle);
                    }
                }
                Directive::RemoveRepair => {
                    self.log.push(Message::RepairRemoved { location: loc });
                    for node in 0..self.nodes.len() {
                        let state = self.responses.get_mut(&loc).expect("response exists");
                        let repair = state.per_node.entry(node).or_default().repair.take();
                        if let Some(handle) = repair {
                            let _ = uninstall(&mut self.nodes[node], &handle);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_apps::{learning_suite, red_team_exploits, Browser};

    fn protected_community(nodes: usize) -> (Community, Browser) {
        let browser = Browser::build();
        let mut community = Community::new(browser.image.clone(), ClearViewConfig::default(), nodes);
        community.distributed_learning(&learning_suite());
        (community, browser)
    }

    #[test]
    fn distributed_learning_merges_member_uploads() {
        let (community, _) = protected_community(3);
        assert!(community.model().invariants.len() > 50);
        let uploads = community
            .log()
            .iter()
            .filter(|m| matches!(m, Message::InvariantUpload { .. }))
            .count();
        assert_eq!(uploads, 3, "every member uploads its local invariants");
    }

    #[test]
    fn community_gains_immunity_without_exposure() {
        let (mut community, browser) = protected_community(3);
        let exploit = red_team_exploits(&browser)
            .into_iter()
            .find(|e| e.bugzilla == 290162)
            .unwrap();
        // Only node 0 is ever attacked.
        let mut survived_at = None;
        for i in 1..=10 {
            let out = community.browse(0, exploit.page());
            if matches!(out.status, RunStatus::Completed) {
                survived_at = Some(i);
                break;
            }
        }
        assert!(survived_at.is_some(), "the attacked member eventually survives");
        // Node 2 has never seen the attack, but the distributed patch protects it.
        let out = community.browse(2, exploit.page());
        assert!(
            matches!(out.status, RunStatus::Completed),
            "an unexposed member survives its first exposure: {:?}",
            out.status
        );
        // The patch-distribution messages are in the log.
        assert!(community
            .log()
            .iter()
            .any(|m| matches!(m, Message::RepairDistributed { .. })));
    }

    #[test]
    fn simultaneous_exploits_are_handled_independently() {
        let (mut community, browser) = protected_community(2);
        let exploits = red_team_exploits(&browser);
        let a = exploits.iter().find(|e| e.bugzilla == 290162).unwrap();
        let b = exploits.iter().find(|e| e.bugzilla == 296134).unwrap();
        // Interleave two different exploits on two different members.
        for _ in 0..8 {
            community.browse(0, a.page());
            community.browse(1, b.page());
        }
        let a_loc = browser.sym("vuln_290162_call");
        let b_loc = browser.sym("vuln_296134_ret");
        assert!(community.is_protected_against(a_loc), "{:?}", community.phase_of(a_loc));
        assert!(community.is_protected_against(b_loc), "{:?}", community.phase_of(b_loc));
        // Both members now survive both attacks.
        for node in 0..2 {
            assert!(matches!(community.browse(node, a.page()).status, RunStatus::Completed));
            assert!(matches!(community.browse(node, b.page()).status, RunStatus::Completed));
        }
        assert_eq!(community.reports().len(), 2);
    }

    #[test]
    fn benign_browsing_never_triggers_a_response() {
        let (mut community, _) = protected_community(2);
        for (i, page) in learning_suite().iter().enumerate() {
            let out = community.browse(i % 2, page);
            assert!(matches!(out.status, RunStatus::Completed));
        }
        assert!(community.reports().is_empty());
        assert!(!community
            .log()
            .iter()
            .any(|m| matches!(m, Message::FailureNotification { .. })));
    }
}
