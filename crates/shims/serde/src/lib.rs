//! Offline stand-in for `serde` (see `serde_derive` for why).
//!
//! Exposes the `Serialize` / `Deserialize` names (trait + derive macro in the same
//! namespace, as the real crate does) with blanket implementations, so `use
//! serde::{Deserialize, Serialize}` and `#[derive(Serialize, Deserialize)]` compile
//! unchanged. No actual serialization machinery exists — nothing in the workspace
//! serializes; the derives only document intent.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
