//! Candidate repair generation and ordering (Sections 2.5 and 2.6).

use crate::config::ClearViewConfig;
use crate::correlate::{CandidateSet, Correlation};
use cv_inference::{Invariant, LearnedModel};
use cv_isa::{Addr, Inst};
use cv_patch::RepairPatch;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A generated candidate repair together with the information used to order it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairCandidate {
    /// The repair patch.
    pub repair: RepairPatch,
    /// How strongly the enforced invariant correlates with the failure.
    pub correlation: Correlation,
    /// Position of the owning procedure on the call stack, innermost = 0.
    pub stack_rank: usize,
    /// The address at which the repair takes effect.
    pub check_addr: Addr,
}

impl RepairCandidate {
    /// The static ordering key of Section 2.6: earlier repairs first (outer procedures
    /// first across frames, lower addresses first inside a procedure), and repairs that
    /// only change state before repairs that change control flow.
    fn order_key(&self) -> (usize, Addr, u8) {
        (
            self.stack_rank,
            self.check_addr,
            u8::from(self.repair.changes_control_flow()),
        )
    }
}

/// Generate and order the candidate repairs for a set of classified correlated
/// invariants.
///
/// Following Section 2.5, repairs are generated only for the most strongly correlated
/// class available: if any invariant is highly correlated, only highly correlated
/// invariants are considered; otherwise moderately correlated invariants are used; if
/// neither exists, no repairs are generated.
pub fn generate_repairs(
    candidates: &CandidateSet,
    classifications: &HashMap<Invariant, Correlation>,
    model: &LearnedModel,
    _config: &ClearViewConfig,
) -> Vec<RepairCandidate> {
    let best_class = classifications
        .values()
        .copied()
        .max()
        .unwrap_or(Correlation::Not);
    let selected_class = match best_class {
        Correlation::Highly => Correlation::Highly,
        Correlation::Moderately => Correlation::Moderately,
        _ => return Vec::new(),
    };

    let mut out = Vec::new();
    for inv in candidates.invariants.iter() {
        let correlation = classifications
            .get(inv)
            .copied()
            .unwrap_or(Correlation::Not);
        if correlation != selected_class {
            continue;
        }
        let check_addr = inv.check_addr();
        let is_call_target = is_indirect_call_target(model, inv);
        let sp_adjust = candidates
            .procedure_of
            .get(inv)
            .and_then(|proc| model.invariants.sp_offset(*proc, check_addr));
        for repair in RepairPatch::candidates(inv, is_call_target, sp_adjust) {
            out.push(RepairCandidate {
                repair,
                correlation,
                stack_rank: rank_of_procedure(candidates, inv),
                check_addr,
            });
        }
    }
    out.sort_by_key(|c| c.order_key());
    out
}

/// True if the invariant's variable is the target operand of an indirect call at the
/// invariant's check address — the condition under which the skip-call repair applies.
fn is_indirect_call_target(model: &LearnedModel, inv: &Invariant) -> bool {
    let check_addr = inv.check_addr();
    let vars = inv.variables();
    let Some(var) = vars.iter().find(|v| v.addr == check_addr) else {
        return false;
    };
    match model.procedures.inst_at(check_addr).map(|i| i.inst) {
        Some(Inst::CallIndirect { target }) => var.operand == Some(target),
        _ => false,
    }
}

/// Position of the invariant's procedure among the distinct procedures in the candidate
/// set (innermost procedure first = rank 0).
fn rank_of_procedure(candidates: &CandidateSet, inv: &Invariant) -> usize {
    let proc = match candidates.procedure_of.get(inv) {
        Some(p) => *p,
        None => return 0,
    };
    let mut seen: Vec<Addr> = Vec::new();
    for i in &candidates.invariants {
        if let Some(p) = candidates.procedure_of.get(i) {
            if !seen.contains(p) {
                seen.push(*p);
            }
        }
    }
    seen.iter().position(|p| *p == proc).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_inference::Variable;
    use cv_isa::{Operand, Reg};
    use cv_patch::RepairStrategy;

    fn make_model() -> LearnedModel {
        // A minimal model with no procedures; sufficient for ordering tests that do not
        // need call-site or sp-offset information.
        let mut b = cv_isa::ProgramBuilder::new();
        let main = b.function("main");
        b.halt();
        b.set_entry(main);
        let image = b.build().unwrap();
        LearnedModel {
            invariants: cv_inference::InvariantDatabase::new(),
            procedures: cv_inference::ProcedureDatabase::new(image),
        }
    }

    fn lb(addr: Addr, reg: Reg, min: i32) -> Invariant {
        Invariant::LowerBound {
            var: Variable::read(addr, 0, Operand::Reg(reg)),
            min,
        }
    }

    #[test]
    fn only_highest_correlation_class_is_used() {
        let i1 = lb(0x41000, Reg::Ecx, 1);
        let i2 = lb(0x41010, Reg::Edx, 0);
        let mut candidates = CandidateSet {
            invariants: vec![i1.clone(), i2.clone()],
            ..Default::default()
        };
        candidates.procedure_of.insert(i1.clone(), 0x40000);
        candidates.procedure_of.insert(i2.clone(), 0x40000);
        let mut cls = HashMap::new();
        cls.insert(i1.clone(), Correlation::Highly);
        cls.insert(i2.clone(), Correlation::Moderately);
        let repairs = generate_repairs(
            &candidates,
            &cls,
            &make_model(),
            &ClearViewConfig::default(),
        );
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].repair.invariant, i1);
        assert_eq!(repairs[0].correlation, Correlation::Highly);
    }

    #[test]
    fn moderately_correlated_used_when_no_highly() {
        let i1 = lb(0x41000, Reg::Ecx, 1);
        let mut candidates = CandidateSet {
            invariants: vec![i1.clone()],
            ..Default::default()
        };
        candidates.procedure_of.insert(i1.clone(), 0x40000);
        let mut cls = HashMap::new();
        cls.insert(i1.clone(), Correlation::Moderately);
        let repairs = generate_repairs(
            &candidates,
            &cls,
            &make_model(),
            &ClearViewConfig::default(),
        );
        assert_eq!(repairs.len(), 1);
    }

    #[test]
    fn slight_or_no_correlation_generates_nothing() {
        let i1 = lb(0x41000, Reg::Ecx, 1);
        let mut candidates = CandidateSet {
            invariants: vec![i1.clone()],
            ..Default::default()
        };
        candidates.procedure_of.insert(i1.clone(), 0x40000);
        let mut cls = HashMap::new();
        cls.insert(i1.clone(), Correlation::Slightly);
        assert!(generate_repairs(
            &candidates,
            &cls,
            &make_model(),
            &ClearViewConfig::default()
        )
        .is_empty());
        cls.insert(i1.clone(), Correlation::Not);
        assert!(generate_repairs(
            &candidates,
            &cls,
            &make_model(),
            &ClearViewConfig::default()
        )
        .is_empty());
    }

    #[test]
    fn ordering_prefers_earlier_addresses_and_state_only_repairs() {
        let early = Invariant::OneOf {
            var: Variable::read(0x41000, 0, Operand::Reg(Reg::Ebx)),
            values: [0x41100u32].into_iter().collect(),
        };
        let late = lb(0x41020, Reg::Ecx, 1);
        let mut candidates = CandidateSet {
            invariants: vec![late.clone(), early.clone()],
            ..Default::default()
        };
        candidates.procedure_of.insert(late.clone(), 0x40000);
        candidates.procedure_of.insert(early.clone(), 0x40000);
        let mut cls = HashMap::new();
        cls.insert(early.clone(), Correlation::Highly);
        cls.insert(late.clone(), Correlation::Highly);
        let repairs = generate_repairs(
            &candidates,
            &cls,
            &make_model(),
            &ClearViewConfig::default(),
        );
        assert!(repairs.len() >= 2);
        assert_eq!(repairs[0].check_addr, 0x41000, "earlier instruction first");
        // Within the same invariant/address, state changes come before control-flow
        // changes; the set-value repair is first.
        assert!(matches!(
            repairs[0].repair.strategy,
            RepairStrategy::SetValue { .. }
        ));
    }
}
