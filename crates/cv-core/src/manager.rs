//! The sharded manager plane: parallel per-failure responders with a deterministic
//! patch-op merge.
//!
//! ClearView centralizes every repair decision at the management console
//! (Section 3.2): each failure location owns one [`FailureResponder`], and whoever
//! runs the application feeds the responders run digests and applies the
//! [`Directive`]s they emit. This module factors that *responder driving* out of the
//! single-machine pipeline and the fleet engine into three composable pieces:
//!
//! 1. **Routing** ([`DigestRouter`]) — a pure step that partitions the digests and
//!    failure reports of one batch into per-shard buckets. Digests partition cleanly
//!    by failure location (a digest is addressed to the responder of the location it
//!    was built for, regardless of its [`DigestStatus`]), so routing never inspects
//!    responder state.
//! 2. **Shards** ([`ResponderShard`]) — each shard owns the responders for a disjoint
//!    slice of failure locations and processes its bucket independently: no two
//!    shards share any mutable state, so N shards can run on N threads.
//! 3. **Merge** ([`PatchPlan`]) — each shard emits its directives as an ordered
//!    [`PatchPlan`]; [`PatchPlan::merge`] combines the per-shard plans into one
//!    fleet-wide plan with a *stable* sort by failure location. Because every shard
//!    is deterministic and the merge imposes a canonical order, parallel and
//!    sequential manager passes produce byte-identical plans (and therefore
//!    byte-identical console logs) — the property `manager_parity` tests prove.
//!
//! The single-machine [`ProtectedApplication`](crate::ProtectedApplication) is the
//! degenerate deployment: one shard, one source, one digest per batch. The fleet
//! engine (`cv-fleet`) fans buckets across its worker pool.

use crate::config::ClearViewConfig;
use crate::responder::{DigestStatus, Directive, FailureResponder, RunDigest};
use cv_inference::LearnedModel;
use cv_isa::Addr;
use cv_runtime::Failure;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies the member (or other digest source) an event originated from. The
/// single-machine pipeline uses source 0 throughout; the fleet uses member node ids.
pub type SourceId = usize;

/// One run digest addressed to the responder of one failure location.
#[derive(Debug, Clone)]
pub struct RoutedDigest {
    /// The member the digest came from.
    pub source: SourceId,
    /// The failure location whose responder should consume the digest.
    pub location: Addr,
    /// The digest itself.
    pub digest: RunDigest,
}

/// One monitor-detected failure, tagged with the member that reported it.
#[derive(Debug, Clone)]
pub struct FailureEvent {
    /// The member the failure occurred on.
    pub source: SourceId,
    /// The failure report.
    pub failure: Failure,
}

/// The per-shard slice of one batch: the digests and failure reports for the failure
/// locations the shard owns, each in batch order.
#[derive(Debug, Clone, Default)]
pub struct ShardBucket {
    /// Digests for responders this shard owns.
    pub digests: Vec<RoutedDigest>,
    /// Failures at locations this shard owns (existing or new).
    pub failures: Vec<FailureEvent>,
}

impl ShardBucket {
    /// True if the bucket carries no work.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty() && self.failures.is_empty()
    }
}

/// The pure routing step: partitions a batch into per-shard buckets by failure
/// location.
///
/// Routing is stateless and deterministic — the same batch always produces the same
/// buckets, and each bucket preserves the batch order of its entries. The location →
/// shard map is the shared [`cv_inference::ShardRouter`] (the same partition the
/// sharded invariant store and the snapshot plane use), so consecutive code addresses
/// spread across shards and no plane can desync from another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestRouter {
    router: cv_inference::ShardRouter,
}

impl DigestRouter {
    /// A router over `shard_count` shards (at least 1).
    pub fn new(shard_count: usize) -> Self {
        DigestRouter {
            router: cv_inference::ShardRouter::new(shard_count),
        }
    }

    /// Number of shards routed to.
    pub fn shard_count(&self) -> usize {
        self.router.shard_count()
    }

    /// The shard owning `location`.
    pub fn shard_of(&self, location: Addr) -> usize {
        self.router.shard_of(location)
    }

    /// Partition one batch into per-shard buckets, preserving batch order within
    /// every bucket.
    pub fn route(
        &self,
        digests: impl IntoIterator<Item = RoutedDigest>,
        failures: impl IntoIterator<Item = FailureEvent>,
    ) -> Vec<ShardBucket> {
        let mut buckets: Vec<ShardBucket> = (0..self.shard_count())
            .map(|_| ShardBucket::default())
            .collect();
        for digest in digests {
            buckets[self.shard_of(digest.location)].digests.push(digest);
        }
        for event in failures {
            buckets[self.shard_of(event.failure.location)]
                .failures
                .push(event);
        }
        buckets
    }
}

/// One fleet-wide patch operation: a responder directive bound to its failure
/// location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanOp {
    /// The failure location the directive belongs to.
    pub location: Addr,
    /// The directive to apply to every member.
    pub directive: Directive,
}

/// An ordered, deterministic set of fleet-wide patch operations — what one manager
/// pass decided to push.
///
/// Shards emit plans independently; [`PatchPlan::merge`] combines them under a
/// canonical order (stable sort by failure location, preserving each location's
/// directive order), so the merged plan is independent of shard count, worker count,
/// and thread scheduling. Plans are `Serialize`/`Deserialize` (and `PartialEq`), so
/// they can cross the wire protocol and be replayed from a recorded log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PatchPlan {
    ops: Vec<PlanOp>,
}

impl PatchPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one directive for `location`.
    pub fn push(&mut self, location: Addr, directive: Directive) {
        self.ops.push(PlanOp {
            location,
            directive,
        });
    }

    /// Append every directive of `directives` for `location`, in order.
    pub fn extend(&mut self, location: Addr, directives: impl IntoIterator<Item = Directive>) {
        for directive in directives {
            self.push(location, directive);
        }
    }

    /// Merge per-shard plans into one canonical fleet-wide plan: concatenate, then
    /// stable-sort by failure location. Per-location directive order is preserved
    /// (each location lives in exactly one shard), so the result does not depend on
    /// how the work was sharded.
    pub fn merge(plans: impl IntoIterator<Item = PatchPlan>) -> PatchPlan {
        let mut ops: Vec<PlanOp> = plans.into_iter().flat_map(|p| p.ops).collect();
        ops.sort_by_key(|op| op.location);
        PatchPlan { ops }
    }

    /// The operations, in canonical order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the plan carries no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The distinct failure locations the plan touches, in ascending order
    /// (regardless of the plan's own op order).
    pub fn locations(&self) -> Vec<Addr> {
        let mut locations: Vec<Addr> = self.ops.iter().map(|op| op.location).collect();
        locations.sort_unstable();
        locations.dedup();
        locations
    }

    /// The distinct shards (under `router`) this plan's operations touch, in
    /// ascending order — what plan application stamps into the dirty-epoch plane,
    /// so the persistence layer knows which shards' *configuration* changed
    /// without consulting the plan again.
    pub fn shards_touched(&self, router: &cv_inference::ShardRouter) -> Vec<usize> {
        let mut shards: Vec<usize> = self
            .ops
            .iter()
            .map(|op| router.shard_of(op.location))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

/// The *net* patch configuration of the fleet: what is actually installed on every
/// member once all pushed plans have been applied, folded location by location.
///
/// The console log records plans as an op *history*; replaying it from epoch zero
/// reproduces member state but grows without bound. `NetPatchState` is the compact
/// fixed point: fold every pushed plan with [`NetPatchState::apply`], and
/// [`NetPatchState::to_plan`] emits the minimal plan that brings a fresh member to
/// the current configuration — the payload of a snapshot's PLAN section and of the
/// fleet's `Bootstrap` message.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetPatchState {
    checks: BTreeMap<Addr, Vec<cv_patch::CheckPatch>>,
    repairs: BTreeMap<Addr, cv_patch::RepairPatch>,
}

impl NetPatchState {
    /// An empty configuration (a fresh member).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one pushed plan into the net state, mirroring exactly what members do
    /// when they apply the plan.
    pub fn apply(&mut self, plan: &PatchPlan) {
        for op in plan.ops() {
            match &op.directive {
                Directive::InstallChecks(checks) => {
                    self.checks.insert(op.location, checks.clone());
                }
                Directive::RemoveChecks => {
                    self.checks.remove(&op.location);
                }
                Directive::InstallRepair(repair) => {
                    self.repairs.insert(op.location, repair.clone());
                }
                Directive::RemoveRepair => {
                    self.repairs.remove(&op.location);
                }
            }
        }
    }

    /// The minimal plan bringing a fresh member to this configuration: per location
    /// (ascending), `InstallChecks` then `InstallRepair` for whatever is installed.
    pub fn to_plan(&self) -> PatchPlan {
        let mut plan = PatchPlan::new();
        let locations: BTreeSet<Addr> = self
            .checks
            .keys()
            .chain(self.repairs.keys())
            .copied()
            .collect();
        for loc in locations {
            if let Some(checks) = self.checks.get(&loc) {
                plan.push(loc, Directive::InstallChecks(checks.clone()));
            }
            if let Some(repair) = self.repairs.get(&loc) {
                plan.push(loc, Directive::InstallRepair(repair.clone()));
            }
        }
        plan
    }

    /// The subset of [`NetPatchState::to_plan`] that is durable across a restart:
    /// the validated repairs. Checking patches are scaffolding for an *in-flight*
    /// response whose responder state (observation history) is deliberately not
    /// persisted — after a warm start the next failure report simply restarts that
    /// response, while every repaired location stays repaired.
    pub fn repair_plan(&self) -> PatchPlan {
        let mut plan = PatchPlan::new();
        for (loc, repair) in &self.repairs {
            plan.push(*loc, Directive::InstallRepair(repair.clone()));
        }
        plan
    }

    /// The installed repairs, in ascending location order.
    pub fn repairs(&self) -> impl Iterator<Item = (Addr, &cv_patch::RepairPatch)> {
        self.repairs.iter().map(|(a, r)| (*a, r))
    }

    /// The installed checking patches, in ascending location order.
    pub fn checks(&self) -> impl Iterator<Item = (Addr, &[cv_patch::CheckPatch])> {
        self.checks.iter().map(|(a, c)| (*a, c.as_slice()))
    }

    /// True if nothing is installed.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty() && self.repairs.is_empty()
    }
}

/// What one shard decided while processing its bucket.
#[derive(Debug, Clone, Default)]
pub struct ShardOutcome {
    /// The patch operations the shard's responders emitted (per-location order
    /// preserved; merge with [`PatchPlan::merge`]).
    pub plan: PatchPlan,
    /// Per-location `(source, observation count)` reports consumed this batch, in
    /// ascending location order.
    pub observations: Vec<(Addr, Vec<(SourceId, usize)>)>,
    /// Locations at which a new community-wide response was started this batch.
    pub started: Vec<Addr>,
}

/// The responders for one disjoint slice of failure locations.
///
/// A shard is single-threaded state: it owns its responders outright and processes
/// one bucket at a time. Parallelism comes from running *different* shards on
/// different threads — they share nothing.
///
/// **Community-attributed repair evaluation.** A crashed or completed run carries no
/// failure location, so on its own it says nothing about *which* response it is
/// evidence for. The shard therefore tracks, per location, the members that have
/// reported the failure there, and feeds unattributed outcomes (Completed / Crashed)
/// to a responder only when they come from one of its reporters — the members whose
/// workload demonstrably exercises the defect. Monitor-attributed failures are
/// always delivered (and enroll their source as a reporter). With a single source
/// (the single-machine pipeline) every digest after the first failure is from a
/// reporter, so this degenerates to exactly the seed behaviour; in a fleet it is
/// what lets N responses evaluate N repairs simultaneously without one exploit's
/// crashes bleeding into another exploit's evaluation.
#[derive(Default)]
pub struct ResponderShard {
    responders: BTreeMap<Addr, FailureResponder>,
    reporters: BTreeMap<Addr, BTreeSet<SourceId>>,
}

impl ResponderShard {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of failure locations with live responses on this shard.
    pub fn len(&self) -> usize {
        self.responders.len()
    }

    /// True if the shard owns no responders.
    pub fn is_empty(&self) -> bool {
        self.responders.is_empty()
    }

    /// The failure locations this shard owns, in ascending order.
    pub fn locations(&self) -> impl Iterator<Item = Addr> + '_ {
        self.responders.keys().copied()
    }

    /// The responder for `location`, if this shard owns one.
    pub fn get(&self, location: Addr) -> Option<&FailureResponder> {
        self.responders.get(&location)
    }

    /// The responders, in ascending location order.
    pub fn responders(&self) -> impl Iterator<Item = (Addr, &FailureResponder)> {
        self.responders.iter().map(|(a, r)| (*a, r))
    }

    /// Adopt a responder reconstructed outside the normal failure path — the
    /// warm-start restore installs a [`FailureResponder::restored`] (already
    /// Protected, with its validated repair) for every repaired location of a
    /// snapshot. Every `source` in `reporters` is enrolled so unattributed outcomes
    /// from those members keep feeding the adopted responder's evaluation.
    pub fn adopt(
        &mut self,
        location: Addr,
        responder: FailureResponder,
        reporters: impl IntoIterator<Item = SourceId>,
    ) {
        self.responders.insert(location, responder);
        self.reporters
            .entry(location)
            .or_default()
            .extend(reporters);
    }

    /// Process one bucket: feed each digest to its responder (in bucket order) and
    /// start a response for each failure at a location without one.
    ///
    /// **Batch semantics** (identical to the pre-shard engine): once a responder
    /// emits directives mid-batch, the remaining digests of the same batch for that
    /// location are dropped — they were produced under the patch configuration the
    /// directives just replaced. Likewise a response started mid-batch consumes no
    /// digests from the same batch (none exist: digests are only built for locations
    /// that were active when the batch ran).
    pub fn process(
        &mut self,
        bucket: ShardBucket,
        model: &LearnedModel,
        config: &ClearViewConfig,
    ) -> ShardOutcome {
        let mut plan = PatchPlan::new();
        let mut started = Vec::new();
        let mut observations: BTreeMap<Addr, Vec<(SourceId, usize)>> = BTreeMap::new();
        // Locations whose patch configuration changed mid-batch.
        let mut reconfigured: BTreeSet<Addr> = BTreeSet::new();

        for RoutedDigest {
            source,
            location,
            digest,
        } in bucket.digests
        {
            if reconfigured.contains(&location) {
                continue;
            }
            let Some(responder) = self.responders.get_mut(&location) else {
                continue;
            };
            // Observation reports crossed the wire regardless of how the manager
            // weighs the run, so they are accounted before the delivery gate.
            if !digest.observations.is_empty() {
                let total = digest.observations.values().map(|v| v.len()).sum();
                observations
                    .entry(location)
                    .or_default()
                    .push((source, total));
            }
            // The delivery gate (see the type-level docs): a failure observed at
            // this location always counts and enrolls its source as a reporter;
            // unattributed outcomes count only from known reporters.
            let deliver = match digest.status {
                Some(DigestStatus::FailureAt(at)) if at == location => {
                    self.reporters.entry(location).or_default().insert(source);
                    true
                }
                _ => self
                    .reporters
                    .get(&location)
                    .is_some_and(|r| r.contains(&source)),
            };
            if !deliver {
                continue;
            }
            let directives = responder.on_run(&digest, model);
            if !directives.is_empty() {
                reconfigured.insert(location);
                plan.extend(location, directives);
            }
        }

        for FailureEvent { source, failure } in bucket.failures {
            self.reporters
                .entry(failure.location)
                .or_default()
                .insert(source);
            if self.responders.contains_key(&failure.location) {
                continue;
            }
            // A failure at a new location starts a community-wide response.
            // Same-batch repeats of this failure predate the checking patches and
            // are skipped by the contains_key guard above.
            let (responder, directives) = FailureResponder::new(&failure, model, *config);
            self.responders.insert(failure.location, responder);
            started.push(failure.location);
            plan.extend(failure.location, directives);
        }

        ShardOutcome {
            plan,
            observations: observations.into_iter().collect(),
            started,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::responder::DigestStatus;

    fn digest_for(source: SourceId, location: Addr) -> RoutedDigest {
        RoutedDigest {
            source,
            location,
            digest: RunDigest::with_status(DigestStatus::FailureAt(location)),
        }
    }

    #[test]
    fn routing_partitions_by_location_and_preserves_order() {
        let router = DigestRouter::new(4);
        let locations: Vec<Addr> = (0..32).map(|k| 0x1000 + k * 4).collect();
        let digests: Vec<RoutedDigest> = locations
            .iter()
            .enumerate()
            .map(|(i, &loc)| digest_for(i, loc))
            .collect();
        let buckets = router.route(digests, std::iter::empty());
        assert_eq!(buckets.len(), 4);
        let total: usize = buckets.iter().map(|b| b.digests.len()).sum();
        assert_eq!(total, locations.len());
        for (index, bucket) in buckets.iter().enumerate() {
            // Every entry landed on the shard that owns its location...
            for d in &bucket.digests {
                assert_eq!(router.shard_of(d.location), index);
            }
            // ...and batch order is preserved within the bucket.
            let sources: Vec<SourceId> = bucket.digests.iter().map(|d| d.source).collect();
            let mut sorted = sources.clone();
            sorted.sort_unstable();
            assert_eq!(sources, sorted);
        }
    }

    #[test]
    fn routing_is_deterministic_and_spreads_shards() {
        let router = DigestRouter::new(8);
        let mut hit = [false; 8];
        for k in 0..64 {
            let loc = 0x2000 + k * 4;
            assert_eq!(router.shard_of(loc), router.shard_of(loc));
            hit[router.shard_of(loc)] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "64 consecutive sites hit all 8 shards"
        );
    }

    #[test]
    fn single_shard_router_routes_everything_to_shard_zero() {
        let router = DigestRouter::new(1);
        let buckets = router.route(
            (0..10).map(|k| digest_for(k, 0x100 + k as Addr)),
            std::iter::empty(),
        );
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].digests.len(), 10);
    }

    #[test]
    fn plan_merge_is_canonical_and_stable() {
        let mut a = PatchPlan::new();
        a.push(0x300, Directive::RemoveChecks);
        a.push(0x300, Directive::RemoveRepair);
        a.push(0x100, Directive::RemoveChecks);
        let mut b = PatchPlan::new();
        b.push(0x200, Directive::RemoveRepair);

        // Merge order of the per-shard plans must not matter.
        let ab = PatchPlan::merge([a.clone(), b.clone()]);
        let ba = PatchPlan::merge([b, a]);
        assert_eq!(ab, ba);

        // Canonical order: ascending location, per-location emission order kept.
        assert_eq!(ab.locations(), vec![0x100, 0x200, 0x300]);
        assert_eq!(ab.len(), 4);
        assert!(matches!(ab.ops()[2].directive, Directive::RemoveChecks));
        assert!(matches!(ab.ops()[3].directive, Directive::RemoveRepair));
    }

    #[test]
    fn shards_touched_follows_the_shared_router() {
        let router = cv_inference::ShardRouter::new(4);
        let mut plan = PatchPlan::new();
        for k in 0..16u32 {
            plan.push(0x4_0000 + k * 4, Directive::RemoveChecks);
            plan.push(0x4_0000 + k * 4, Directive::RemoveRepair); // same shard twice
        }
        let touched = plan.shards_touched(&router);
        assert!(touched.windows(2).all(|w| w[0] < w[1]), "ascending, dedup");
        for shard in &touched {
            assert!(*shard < 4);
        }
        let expected: std::collections::BTreeSet<usize> = plan
            .locations()
            .into_iter()
            .map(|loc| router.shard_of(loc))
            .collect();
        assert_eq!(touched, expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn empty_shard_ignores_digests_for_unknown_locations() {
        let mut shard = ResponderShard::new();
        let layout = cv_isa::MemoryLayout::default();
        let image = cv_isa::BinaryImage {
            layout,
            code: vec![],
            data: vec![],
            entry: layout.code_base,
        };
        let model = LearnedModel {
            invariants: cv_inference::InvariantDatabase::new(),
            procedures: cv_inference::ProcedureDatabase::new(image),
        };
        let outcome = shard.process(
            ShardBucket {
                digests: vec![digest_for(0, 0x40)],
                failures: vec![],
            },
            &model,
            &ClearViewConfig::default(),
        );
        assert!(outcome.plan.is_empty());
        assert!(outcome.observations.is_empty());
        assert!(outcome.started.is_empty());
        assert!(shard.is_empty());
    }
}
