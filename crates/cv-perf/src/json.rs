//! A minimal, dependency-free JSON reader.
//!
//! The perf plane's inputs are all produced by this workspace's own binaries
//! (`BENCH_*.json`, `perf/history.jsonl`), but unlike `bench_gate`'s
//! flat-scan extractor the history machinery needs real structure: nested
//! objects, arrays of samples, and explicit `null`s. This is a small
//! recursive-descent parser over the full JSON grammar — strict (trailing
//! garbage, bare words, and unterminated strings are errors), with a
//! deliberately simple number model: every number is an `f64`, because every
//! number the perf plane reads is one.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (`BTreeMap`): the perf plane's canonical
    /// encoding is order-insensitive on read and deterministic on write.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object entry at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.error("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(byte) if byte < 0x80 => {
                    out.push(byte as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence is
                    // valid — copy it through whole.
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.error("invalid UTF-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("malformed number"))
    }
}

/// Format an `f64` for canonical JSON output: Rust's shortest round-trip
/// representation, which `parse::<f64>` reads back to the identical bits —
/// the property the history plane's byte-identical re-encode rests on.
/// Non-finite values are rejected upstream ([`crate::MetricStats`] panics on
/// them), so this never has to print `NaN`.
pub fn fmt_f64(value: f64) -> String {
    debug_assert!(value.is_finite());
    format!("{value:?}")
}

/// Escape a string for JSON output (the subset our identifiers need, plus a
/// correct general fallback).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let value = parse(
            r#"{"bench": "fleet_scale", "cores": 1, "ok": true, "gone": null,
                "spread": {"pps": {"median": 1.5e3, "samples": [-1.25, 2.0]}}}"#,
        )
        .unwrap();
        assert_eq!(value.get("bench").unwrap().as_str(), Some("fleet_scale"));
        assert_eq!(value.get("cores").unwrap().as_f64(), Some(1.0));
        assert_eq!(value.get("gone"), Some(&Value::Null));
        let pps = value.get("spread").unwrap().get("pps").unwrap();
        assert_eq!(pps.get("median").unwrap().as_f64(), Some(1500.0));
        let samples = pps.get("samples").unwrap().as_arr().unwrap();
        assert_eq!(samples[0].as_f64(), Some(-1.25));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn strings_decode_escapes() {
        let value = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(value.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn numbers_round_trip_through_fmt() {
        for n in [0.0, -0.0, 1.0, -3.5, 1e-7, 12103565.0, 0.047, f64::MAX] {
            let text = fmt_f64(n);
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{text}");
        }
    }
}
