//! Full snapshots: the versioned, self-describing container for the complete
//! protection state.
//!
//! ```text
//! "CVSP" | version u32 | section_count u32
//! section table: { id u32 | offset u64 | len u64 | crc32 u32 } per section
//! META       (id 1): epoch u64 | shard_count u32
//! INVARIANTS (id 2): learning stats | columnar invariant database
//! PROCEDURES (id 3): discovered procedure entry addresses (ascending)
//! PLAN       (id 4): the net patch plan (checks + validated repairs)
//! ```
//!
//! The procedure section stores only the *discovery state* — the entry addresses.
//! CFGs, dominators, and block maps are deterministic functions of the binary image,
//! so [`Snapshot::restore_model`] rebuilds them by replaying `observe_block` over
//! the entries (the same rule the fleet's distributed learning already uses), and
//! the snapshot stays small and image-independent.

use crate::codec;
use crate::error::StoreError;
use crate::wire::{read_container, require_section, write_container, Reader, Writer};
use cv_core::{NetPatchState, PatchPlan};
use cv_inference::{InvariantDatabase, LearnedModel, ProcedureDatabase};
use cv_isa::{Addr, BinaryImage};

/// Magic bytes opening a full snapshot container.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CVSP";
/// The format version this crate encodes and decodes.
pub const FORMAT_VERSION: u32 = 1;

/// Section id of the META section.
pub const SECTION_META: u32 = 1;
/// Section id of the columnar invariant-database section.
pub const SECTION_INVARIANTS: u32 = 2;
/// Section id of the procedure-discovery section.
pub const SECTION_PROCEDURES: u32 = 3;
/// Section id of the net-patch-plan section.
pub const SECTION_PLAN: u32 = 4;

/// The full protection state of a ClearView deployment at one epoch: everything a
/// fresh process needs to reach Protected without replaying learning.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The epoch the state was captured at.
    pub epoch: u64,
    /// The shard count of the store the snapshot was cut from — deltas against this
    /// snapshot are keyed by the same routing.
    pub shard_count: u32,
    /// The community invariant database.
    pub invariants: InvariantDatabase,
    /// Entry addresses of every dynamically discovered procedure (ascending).
    pub procedures: Vec<Addr>,
    /// The net patch plan: what is installed on every member.
    pub plan: PatchPlan,
}

impl Snapshot {
    /// Capture the protection state of a learned model plus a net patch
    /// configuration.
    pub fn capture(
        epoch: u64,
        shard_count: u32,
        model: &LearnedModel,
        net: &NetPatchState,
    ) -> Self {
        let span = cv_obs::recorder()
            .span("store.snapshot_capture", "store")
            .arg("epoch", epoch);
        let snapshot = Snapshot {
            epoch,
            shard_count: shard_count.max(1),
            invariants: model.invariants.clone(),
            procedures: model.procedures.procedures().map(|p| p.entry).collect(),
            plan: net.to_plan(),
        };
        span.arg("invariants", snapshot.invariants.len() as u64)
            .finish();
        snapshot
    }

    /// Rebuild a [`LearnedModel`] for `image` from this snapshot: the invariant
    /// database verbatim, the procedure database by re-discovering each stored
    /// entry (CFGs are a deterministic function of the image).
    ///
    /// Entries are replayed with [`ProcedureDatabase::ensure_procedure`], not
    /// `observe_block`: under procedure fission a stored entry can lie inside
    /// another stored procedure's CFG (the live fleet discovered the inner one
    /// first), and the block-level rule would silently drop it — leaving the
    /// restored coordinator with fewer procedures than its checkpoints claim and
    /// breaking delta convergence for members still holding the old base.
    pub fn restore_model(&self, image: BinaryImage) -> LearnedModel {
        let mut procedures = ProcedureDatabase::new(image);
        for entry in &self.procedures {
            procedures.ensure_procedure(*entry);
        }
        LearnedModel {
            invariants: self.invariants.clone(),
            procedures,
        }
    }

    /// The durable subset of the snapshot's plan: the validated repairs a restored
    /// or bootstrapped member must install (in-flight checking state is dropped —
    /// see [`NetPatchState::repair_plan`]).
    pub fn bootstrap_plan(&self) -> PatchPlan {
        let mut net = NetPatchState::new();
        net.apply(&self.plan);
        net.repair_plan()
    }

    /// Encode into the versioned container format.
    pub fn encode(&self) -> Vec<u8> {
        let span = cv_obs::recorder()
            .span("store.snapshot_encode", "store")
            .arg("epoch", self.epoch);
        let mut meta = Writer::new();
        meta.u64(self.epoch);
        meta.u32(self.shard_count);

        let mut invariants = Writer::new();
        codec::write_database(&mut invariants, &self.invariants);

        let mut procedures = Writer::new();
        procedures.u32(self.procedures.len() as u32);
        procedures.u32_column(&self.procedures);

        let mut plan = Writer::new();
        codec::write_plan(&mut plan, &self.plan);

        let bytes = write_container(
            SNAPSHOT_MAGIC,
            FORMAT_VERSION,
            &[
                (SECTION_META, meta.into_bytes()),
                (SECTION_INVARIANTS, invariants.into_bytes()),
                (SECTION_PROCEDURES, procedures.into_bytes()),
                (SECTION_PLAN, plan.into_bytes()),
            ],
        );
        span.arg("bytes", bytes.len() as u64).finish();
        bytes
    }

    /// Decode a container, rejecting truncation, checksum mismatches, unknown
    /// versions, and structurally impossible payloads. Unknown *sections* are
    /// skipped (the section table is self-describing), so future writers can add
    /// sections without breaking this decoder.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, StoreError> {
        let _span = cv_obs::recorder()
            .span("store.snapshot_decode", "store")
            .arg("bytes", bytes.len() as u64);
        let sections = read_container(bytes, SNAPSHOT_MAGIC, FORMAT_VERSION)?;

        let mut r = Reader::new(require_section(&sections, SECTION_META)?);
        let epoch = r.u64("meta epoch")?;
        let shard_count = r.u32("meta shard count")?;
        if shard_count == 0 {
            return Err(StoreError::Corrupt {
                context: "snapshot shard count is zero",
            });
        }

        let mut r = Reader::new(require_section(&sections, SECTION_INVARIANTS)?);
        let invariants = codec::read_database(&mut r)?;
        if !r.is_exhausted() {
            return Err(StoreError::Corrupt {
                context: "trailing bytes after the invariant database",
            });
        }

        let mut r = Reader::new(require_section(&sections, SECTION_PROCEDURES)?);
        let n_procs = r.len_u32(4, "procedure count")?;
        let procedures = r.u32_column(n_procs, "procedure entries")?;
        if procedures.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StoreError::Corrupt {
                context: "procedure entries not strictly ascending",
            });
        }

        let mut r = Reader::new(require_section(&sections, SECTION_PLAN)?);
        let plan = codec::read_plan(&mut r)?;

        Ok(Snapshot {
            epoch,
            shard_count,
            invariants,
            procedures,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_core::Directive;
    use cv_inference::{Invariant, Variable};
    use cv_isa::{Operand, Reg};
    use cv_patch::{RepairPatch, RepairStrategy};

    fn sample() -> Snapshot {
        let mut invariants = InvariantDatabase::new();
        let var = Variable::read(0x4_0000, 0, Operand::Reg(Reg::Ebx));
        invariants.insert(Invariant::OneOf {
            var,
            values: [0x4_1000u32, 0x4_2000].into_iter().collect(),
        });
        invariants.stats.events_processed = 10;
        invariants.recount();
        let mut plan = PatchPlan::new();
        plan.push(
            0x4_0000,
            Directive::InstallRepair(RepairPatch {
                invariant: Invariant::OneOf {
                    var,
                    values: [0x4_1000u32].into_iter().collect(),
                },
                strategy: RepairStrategy::SetValue { value: 0x4_1000 },
            }),
        );
        Snapshot {
            epoch: 9,
            shard_count: 8,
            invariants,
            procedures: vec![0x4_0000, 0x4_0040],
            plan,
        }
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let snap = sample();
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn truncation_bad_magic_and_version_are_rejected() {
        let snap = sample();
        let bytes = snap.encode();
        for k in [0usize, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(Snapshot::decode(&bytes[..k]).is_err(), "prefix {k} decoded");
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bad_magic),
            Err(StoreError::BadMagic { .. })
        ));
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFE;
        assert!(matches!(
            Snapshot::decode(&bad_version),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn restore_model_survives_procedure_fission() {
        use cv_isa::{Cond, Port, ProgramBuilder};

        // main: input; if x < 10 skip the call; call helper; output; halt.
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Eax, Port::Input);
        b.cmp(Reg::Eax, 10u32);
        let small = b.new_label("small");
        b.jcc(Cond::Lt, small);
        let helper = b.new_label("helper");
        b.call(helper);
        b.bind(small);
        let join = b.here();
        b.output(Reg::Eax, Port::Render);
        b.halt();
        b.bind(helper);
        b.add(Reg::Eax, Reg::Eax);
        b.ret();
        b.set_entry(main);
        let image = b.build().unwrap();

        // Procedure fission: the join block runs first and becomes its own
        // procedure; main is discovered later and covers its entry.
        let mut live = ProcedureDatabase::new(image.clone());
        assert_eq!(live.observe_block(join), Some(join));
        assert_eq!(live.observe_block(image.entry), Some(image.entry));
        let model = LearnedModel {
            invariants: InvariantDatabase::new(),
            procedures: live,
        };
        let snap = Snapshot::capture(3, 8, &model, &cv_core::NetPatchState::new());
        assert_eq!(snap.procedures, vec![image.entry, join]);

        let restored = Snapshot::decode(&snap.encode())
            .unwrap()
            .restore_model(image);
        let entries: Vec<Addr> = restored.procedures.procedures().map(|p| p.entry).collect();
        assert_eq!(
            entries, snap.procedures,
            "restore must reproduce every stored procedure, fissioned or not"
        );
    }

    #[test]
    fn bootstrap_plan_keeps_only_repairs() {
        let mut snap = sample();
        snap.plan.push(0x5_0000, Directive::InstallChecks(vec![]));
        let bootstrap = snap.bootstrap_plan();
        assert_eq!(bootstrap.len(), 1);
        assert!(matches!(
            bootstrap.ops()[0].directive,
            Directive::InstallRepair(_)
        ));
    }
}
