//! ClearView configuration.

use cv_patch::PatchCostModel;
use serde::{Deserialize, Serialize};

/// Tunable policy knobs for the ClearView response pipeline.
///
/// The defaults reproduce the configuration used during the Red Team exercise
/// (Section 4.2.2): Memory Firewall, Heap Guard, and the Shadow Stack always on;
/// candidate correlated invariants drawn from the lowest procedure on the call stack
/// that has invariants; two-variable invariants restricted to the failure's basic
/// block; and a patch judged successful after an attack-free evaluation period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClearViewConfig {
    /// How many *additional* failing executions (after the one that made ClearView aware
    /// of the failure) are observed with invariant-checking patches in place before the
    /// checks are removed and correlated invariants are computed. The paper uses two
    /// (Section 4.3.1), giving the canonical minimum of four presentations to a patch.
    pub check_runs_required: u32,
    /// How many procedures on the call stack (starting from the innermost procedure
    /// that has any invariants) contribute candidate correlated invariants. The Red Team
    /// configuration used 1; raising it is the reconfiguration that fixed exploit
    /// 285595 (Section 4.3.2).
    pub stack_procedures_considered: usize,
    /// Enforce the Section 2.4.1 restriction that an invariant relating two variables is
    /// only a candidate if its check instruction is in the failure's basic block.
    pub restrict_two_variable_to_failure_block: bool,
    /// The score bonus `b` granted to repairs that have never failed (Section 2.6).
    pub untried_bonus: i64,
    /// Simulated patch build/install costs (Table 3 accounting).
    pub patch_costs: PatchCostModel,
    /// Simulated seconds of successful execution required before a repair is
    /// (tentatively) judged successful — ten seconds in the paper (Section 2.6).
    pub success_observation_seconds: f64,
}

impl Default for ClearViewConfig {
    fn default() -> Self {
        ClearViewConfig {
            check_runs_required: 2,
            stack_procedures_considered: 1,
            restrict_two_variable_to_failure_block: true,
            untried_bonus: 1,
            patch_costs: PatchCostModel::default(),
            success_observation_seconds: 10.0,
        }
    }
}

impl ClearViewConfig {
    /// The reconfiguration used after the Red Team exercise to patch exploit 285595:
    /// consider additional procedures up the call stack.
    pub fn with_stack_walk(depth: usize) -> Self {
        ClearViewConfig {
            stack_procedures_considered: depth,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_red_team_configuration() {
        let c = ClearViewConfig::default();
        assert_eq!(c.check_runs_required, 2);
        assert_eq!(c.stack_procedures_considered, 1);
        assert!(c.restrict_two_variable_to_failure_block);
        assert_eq!(c.untried_bonus, 1);
        assert_eq!(c.success_observation_seconds, 10.0);
    }

    #[test]
    fn stack_walk_reconfiguration() {
        let c = ClearViewConfig::with_stack_walk(3);
        assert_eq!(c.stack_procedures_considered, 3);
        assert_eq!(c.check_runs_required, 2);
    }
}
