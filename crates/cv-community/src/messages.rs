//! The messages exchanged between community members and the central ClearView manager.
//!
//! In the deployed system these travel over the Determina Management Console's secure
//! (SSL) channels between the central server and the Node Managers (Section 3). Here
//! they are recorded in a message log so tests and harnesses can observe the protocol:
//! failure notifications flow up, invariant databases and observations flow up, and
//! patch distribution directives flow down to every member.

use cv_isa::Addr;
use serde::{Deserialize, Serialize};

/// Identifies a community member.
pub type NodeId = usize;

/// A protocol message, as recorded in the console's log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// A node uploaded its locally inferred invariants (amortized parallel learning).
    InvariantUpload {
        /// The uploading node.
        node: NodeId,
        /// How many invariants were uploaded.
        invariants: usize,
    },
    /// A monitor on a node detected a failure and terminated the application.
    FailureNotification {
        /// The reporting node.
        node: NodeId,
        /// The failure location (the key that identifies this failure community-wide).
        location: Addr,
    },
    /// A node reported invariant-check observations for a failure.
    ObservationReport {
        /// The reporting node.
        node: NodeId,
        /// The failure the observations belong to.
        location: Addr,
        /// Number of observations reported.
        observations: usize,
    },
    /// The console pushed invariant-checking patches to every member.
    ChecksDistributed {
        /// The failure the checks belong to.
        location: Addr,
        /// Number of invariants checked.
        invariants: usize,
    },
    /// The console removed the invariant-checking patches from every member.
    ChecksRemoved {
        /// The failure the checks belonged to.
        location: Addr,
    },
    /// The console pushed a candidate repair patch to every member.
    RepairDistributed {
        /// The failure the repair addresses.
        location: Addr,
        /// Human-readable description of the repair.
        description: String,
    },
    /// The console removed a repair patch from every member.
    RepairRemoved {
        /// The failure the repair addressed.
        location: Addr,
    },
    /// The console brought one member to the current protection state from a
    /// snapshot or delta (the durability plane) instead of replaying the protocol.
    StateSync {
        /// Encoded snapshot/delta bytes that crossed the wire (shared by every
        /// member synced in the same batch).
        bytes: u64,
    },
}

impl Message {
    /// The failure location this message concerns, if any.
    pub fn location(&self) -> Option<Addr> {
        match self {
            Message::FailureNotification { location, .. }
            | Message::ObservationReport { location, .. }
            | Message::ChecksDistributed { location, .. }
            | Message::ChecksRemoved { location }
            | Message::RepairDistributed { location, .. }
            | Message::RepairRemoved { location } => Some(*location),
            Message::InvariantUpload { .. } | Message::StateSync { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_extraction() {
        assert_eq!(
            Message::FailureNotification {
                node: 1,
                location: 0x40100
            }
            .location(),
            Some(0x40100)
        );
        assert_eq!(
            Message::InvariantUpload {
                node: 0,
                invariants: 5
            }
            .location(),
            None
        );
        let m = Message::RepairDistributed {
            location: 0x40200,
            description: "enforce".into(),
        };
        assert_eq!(m.location(), Some(0x40200));
    }
}
