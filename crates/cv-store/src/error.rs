//! Decode errors: every way a snapshot can be rejected instead of misread.

use std::fmt;

/// Why a snapshot or delta could not be decoded (or a delta not applied).
///
/// The decoder's contract is *reject, never misread*: any truncation, checksum
/// mismatch, unknown version, or structurally impossible payload surfaces here, and
/// no partially decoded state escapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The leading magic bytes are not the expected container magic.
    BadMagic {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The container's format version is not supported by this decoder.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
        /// The newest version this decoder supports.
        supported: u32,
    },
    /// The byte stream ended before a read completed.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// The section id from the section table.
        section: u32,
        /// The checksum recorded in the section table.
        expected: u32,
        /// The checksum computed over the payload found.
        found: u32,
    },
    /// A required section is missing from the section table.
    MissingSection {
        /// The absent section id.
        section: u32,
    },
    /// The payload is structurally impossible (bad tag, inconsistent counts, an
    /// entry routed to the wrong shard, ...).
    Corrupt {
        /// What was structurally wrong.
        context: &'static str,
    },
    /// A delta was applied to a snapshot that is not its base.
    BaseMismatch {
        /// The base epoch the delta was cut against.
        expected_epoch: u64,
        /// The epoch of the snapshot it was applied to.
        found_epoch: u64,
    },
    /// A delta's shard routing disagrees with the snapshot's.
    ShardCountMismatch {
        /// The delta's shard count.
        delta: u32,
        /// The snapshot's shard count.
        snapshot: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic { found } => {
                write!(f, "bad container magic {found:02x?}")
            }
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (decoder supports <= {supported})")
            }
            StoreError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated while reading {context}: needed {needed} bytes, {available} available"
            ),
            StoreError::ChecksumMismatch {
                section,
                expected,
                found,
            } => write!(
                f,
                "section {section} checksum mismatch: table says {expected:08x}, payload is {found:08x}"
            ),
            StoreError::MissingSection { section } => {
                write!(f, "required section {section} missing from the section table")
            }
            StoreError::Corrupt { context } => write!(f, "corrupt payload: {context}"),
            StoreError::BaseMismatch {
                expected_epoch,
                found_epoch,
            } => write!(
                f,
                "delta base epoch {expected_epoch} does not match snapshot epoch {found_epoch}"
            ),
            StoreError::ShardCountMismatch { delta, snapshot } => write!(
                f,
                "delta shard count {delta} does not match snapshot shard count {snapshot}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}
