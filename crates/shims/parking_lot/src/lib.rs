//! Offline stand-in for `parking_lot`: a `Mutex` with the poison-free API, backed by
//! `std::sync::Mutex` (a poisoned lock just yields the inner guard, matching
//! parking_lot's behaviour of not propagating panics through locks).

#![forbid(unsafe_code)]

use std::fmt;

/// Re-export matching `parking_lot::MutexGuard`.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual exclusion primitive with `parking_lot`'s panic-free `lock()` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly (no poison `Result`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrow the guarded value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}
