//! The per-failure response state machine.
//!
//! Every ClearView patch is applied in response to a specific failure, identified by its
//! failure location (Section 3.2). A [`FailureResponder`] owns the full response to one
//! failure location: select candidate correlated invariants, request invariant-checking
//! patches, classify correlations from the observations of subsequent failing runs,
//! generate candidate repairs, and drive the repair evaluation loop — requesting patch
//! installs and removals from whoever is executing the application (the single-machine
//! pipeline in this crate, or the community management console in `cv-community`).

use crate::config::ClearViewConfig;
use crate::correlate::{candidate_invariants, classify, CandidateSet, Correlation};
use crate::evaluate::RepairEvaluator;
use crate::repairgen::generate_repairs;
use cv_inference::{Invariant, LearnedModel};
use cv_isa::Addr;
use cv_patch::{CheckPatch, RepairPatch};
use cv_runtime::Failure;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The phase a failure response is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Invariant-checking patches are (or should be) installed; waiting to observe the
    /// failure again.
    Checking,
    /// Candidate repairs are being evaluated; one repair is (or should be) installed.
    Repairing,
    /// A repair is installed and has survived evaluation; the failure is considered
    /// corrected (evaluation continues in the background).
    Protected,
    /// ClearView could not find a repair (no candidate invariants, no correlated
    /// invariants, or every candidate repair failed). The monitor still blocks attacks.
    Unprotected,
}

/// A request the responder makes of whoever runs the application.
///
/// Directives are `Clone` + `PartialEq` + serde so that patch plans built from them
/// can cross the fleet wire protocol and be replayed from a recorded batch log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Directive {
    /// Install these invariant-checking patches.
    InstallChecks(Vec<CheckPatch>),
    /// Remove all invariant-checking patches for this failure.
    RemoveChecks,
    /// Install this repair patch.
    InstallRepair(RepairPatch),
    /// Remove the currently installed repair patch for this failure.
    RemoveRepair,
}

/// How a run relevant to this failure ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DigestStatus {
    /// The application completed normally.
    Completed,
    /// A monitor detected a failure at this location.
    FailureAt(Addr),
    /// The application crashed.
    Crashed,
}

/// A per-run digest delivered to the responder: the run status plus, for each checked
/// invariant, the chronological sequence of satisfied (`true`) / violated (`false`)
/// observations produced during the run.
#[derive(Debug, Clone, Default)]
pub struct RunDigest {
    /// How the run ended.
    pub status: Option<DigestStatus>,
    /// Observation sequences keyed by invariant.
    pub observations: HashMap<Invariant, Vec<bool>>,
}

impl RunDigest {
    /// A digest with a status and no observations.
    pub fn with_status(status: DigestStatus) -> Self {
        RunDigest {
            status: Some(status),
            observations: HashMap::new(),
        }
    }
}

/// The report ClearView can hand to maintainers (Section 1, "Candidate Repair
/// Evaluation"): the failure, the correlated invariants, the repairs tried, and how
/// effective each was.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairReport {
    /// The failure location this response addresses.
    pub failure_location: Addr,
    /// The current phase.
    pub phase: Phase,
    /// Number of candidate correlated invariants considered.
    pub candidate_invariants: usize,
    /// Correlated invariants and their classifications (present once checking is done).
    pub correlated: Vec<(String, Correlation)>,
    /// For each candidate repair: its description, successes, and failures.
    pub repairs: Vec<(String, u64, u64)>,
    /// The currently installed repair, if any.
    pub active_repair: Option<String>,
    /// Total failing presentations observed for this failure.
    pub failures_observed: u32,
}

impl fmt::Display for RepairReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "failure at 0x{:x} — phase {:?}",
            self.failure_location, self.phase
        )?;
        writeln!(f, "  candidate invariants: {}", self.candidate_invariants)?;
        for (inv, cls) in &self.correlated {
            writeln!(f, "  correlated [{cls:?}]: {inv}")?;
        }
        for (desc, s, fl) in &self.repairs {
            writeln!(f, "  repair ({s} ok / {fl} bad): {desc}")?;
        }
        if let Some(active) = &self.active_repair {
            writeln!(f, "  active repair: {active}")?;
        }
        Ok(())
    }
}

/// The state machine responding to one failure location.
pub struct FailureResponder {
    /// The failure location this responder owns.
    pub failure_location: Addr,
    config: ClearViewConfig,
    candidates: CandidateSet,
    phase: Phase,
    failing_runs_with_checks: u32,
    observations_per_failure: HashMap<Invariant, Vec<Vec<bool>>>,
    classifications: HashMap<Invariant, Correlation>,
    evaluator: RepairEvaluator,
    active_repair: Option<usize>,
    failures_observed: u32,
    /// Number of repair-evaluation runs that ended badly (Table 3's unsuccessful runs).
    pub unsuccessful_repair_runs: u32,
}

impl FailureResponder {
    /// Start responding to `failure`. Returns the responder plus the directives to apply
    /// immediately (installing the invariant-checking patches, if any candidates exist).
    pub fn new(
        failure: &Failure,
        model: &LearnedModel,
        config: ClearViewConfig,
    ) -> (Self, Vec<Directive>) {
        let candidates = candidate_invariants(failure, model, &config);
        // Repair-timeline stage: candidate checks selected (or none found). The
        // instants are dropped unless tracing is on; `location` keys them into
        // the per-failure timelines the summary report assembles.
        cv_obs::recorder().instant(
            "timeline.checks_selected",
            "timeline",
            &[
                ("location", u64::from(failure.location)),
                ("candidates", candidates.len() as u64),
            ],
        );
        let (phase, directives) = if candidates.is_empty() {
            cv_obs::recorder().instant(
                "timeline.gave_up",
                "timeline",
                &[("location", u64::from(failure.location))],
            );
            (Phase::Unprotected, Vec::new())
        } else {
            let checks = candidates
                .invariants
                .iter()
                .cloned()
                .map(CheckPatch::new)
                .collect::<Vec<_>>();
            (Phase::Checking, vec![Directive::InstallChecks(checks)])
        };
        (
            FailureResponder {
                failure_location: failure.location,
                config,
                candidates,
                phase,
                failing_runs_with_checks: 0,
                observations_per_failure: HashMap::new(),
                classifications: HashMap::new(),
                evaluator: RepairEvaluator::default(),
                active_repair: None,
                failures_observed: 1,
                unsuccessful_repair_runs: 0,
            },
            directives,
        )
    }

    /// Reconstruct a responder for a failure whose repair already survived
    /// community-wide evaluation — the warm-start path of the snapshot plane.
    ///
    /// The responder starts in [`Phase::Protected`] with `repair` installed and
    /// credited one evaluation success (the success that validated it before the
    /// checkpoint). Observation history and checking state are deliberately not
    /// reconstructed: they belong to in-flight responses, which restart from the
    /// next failure report. Evaluation continues normally — if the restored repair
    /// later fails, the responder degrades exactly like a live one (with no
    /// alternative candidates it gives up and emits `RemoveRepair`).
    pub fn restored(location: Addr, repair: RepairPatch, config: ClearViewConfig) -> Self {
        let mut evaluator = RepairEvaluator::new(
            vec![crate::repairgen::RepairCandidate {
                correlation: Correlation::Highly,
                stack_rank: 0,
                check_addr: repair.check_addr(),
                repair,
            }],
            config.untried_bonus,
        );
        evaluator.record_success(0);
        FailureResponder {
            failure_location: location,
            config,
            candidates: CandidateSet::default(),
            phase: Phase::Protected,
            failing_runs_with_checks: 0,
            observations_per_failure: HashMap::new(),
            classifications: HashMap::new(),
            evaluator,
            active_repair: Some(0),
            failures_observed: 0,
            unsuccessful_repair_runs: 0,
        }
    }

    /// The candidate correlated invariants selected for this failure.
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// True once a repair has survived evaluation.
    pub fn is_protected(&self) -> bool {
        self.phase == Phase::Protected
    }

    /// True if ClearView has given up finding a repair for this failure.
    pub fn gave_up(&self) -> bool {
        self.phase == Phase::Unprotected
    }

    /// The repair currently expected to be installed, if any.
    pub fn current_repair(&self) -> Option<&RepairPatch> {
        self.active_repair
            .and_then(|idx| self.evaluator.scores().get(idx))
            .map(|s| &s.candidate.repair)
    }

    /// Correlation classifications (available once checking completes).
    pub fn classifications(&self) -> &HashMap<Invariant, Correlation> {
        &self.classifications
    }

    /// Process one run of the (patched) application and return the directives to apply
    /// before the next run.
    pub fn on_run(&mut self, digest: &RunDigest, model: &LearnedModel) -> Vec<Directive> {
        let status = match digest.status {
            Some(s) => s,
            None => return Vec::new(),
        };
        match self.phase {
            Phase::Checking => self.on_run_checking(status, digest, model),
            Phase::Repairing | Phase::Protected => self.on_run_repairing(status),
            Phase::Unprotected => Vec::new(),
        }
    }

    fn on_run_checking(
        &mut self,
        status: DigestStatus,
        digest: &RunDigest,
        model: &LearnedModel,
    ) -> Vec<Directive> {
        match status {
            DigestStatus::FailureAt(loc) if loc == self.failure_location => {
                self.failures_observed += 1;
                self.failing_runs_with_checks += 1;
                for inv in &self.candidates.invariants {
                    let obs = digest.observations.get(inv).cloned().unwrap_or_default();
                    self.observations_per_failure
                        .entry(inv.clone())
                        .or_default()
                        .push(obs);
                }
                if self.failing_runs_with_checks >= self.config.check_runs_required {
                    return self.finish_checking(model);
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn finish_checking(&mut self, model: &LearnedModel) -> Vec<Directive> {
        for inv in &self.candidates.invariants {
            let runs = self
                .observations_per_failure
                .get(inv)
                .cloned()
                .unwrap_or_default();
            self.classifications.insert(inv.clone(), classify(&runs));
        }
        let repairs =
            generate_repairs(&self.candidates, &self.classifications, model, &self.config);
        // Repair-timeline stage: candidate repairs generated from the correlated
        // invariants.
        cv_obs::recorder().instant(
            "timeline.candidates_generated",
            "timeline",
            &[
                ("location", u64::from(self.failure_location)),
                ("repairs", repairs.len() as u64),
            ],
        );
        let mut directives = vec![Directive::RemoveChecks];
        if repairs.is_empty() {
            cv_obs::recorder().instant(
                "timeline.gave_up",
                "timeline",
                &[("location", u64::from(self.failure_location))],
            );
            self.phase = Phase::Unprotected;
            return directives;
        }
        self.evaluator = RepairEvaluator::new(repairs, self.config.untried_bonus);
        let (idx, cand) = self.evaluator.best().expect("non-empty evaluator");
        self.active_repair = Some(idx);
        self.phase = Phase::Repairing;
        directives.push(Directive::InstallRepair(cand.repair.clone()));
        directives
    }

    fn on_run_repairing(&mut self, status: DigestStatus) -> Vec<Directive> {
        let idx = match self.active_repair {
            Some(idx) => idx,
            None => return Vec::new(),
        };
        match status {
            DigestStatus::Completed => {
                self.evaluator.record_success(idx);
                if self.phase != Phase::Protected {
                    // Repair-timeline stage: first surviving evaluation verdict.
                    cv_obs::recorder().instant(
                        "timeline.verdict_success",
                        "timeline",
                        &[("location", u64::from(self.failure_location))],
                    );
                }
                self.phase = Phase::Protected;
                Vec::new()
            }
            DigestStatus::FailureAt(loc) if loc != self.failure_location => {
                // A different failure: the responsibility of another responder. The
                // original failure did not recur, so the installed repair stands (this
                // is how the three chained defects of exploit 311710 are each repaired
                // in turn).
                Vec::new()
            }
            DigestStatus::FailureAt(_) | DigestStatus::Crashed => {
                if matches!(status, DigestStatus::FailureAt(loc) if loc == self.failure_location) {
                    self.failures_observed += 1;
                }
                self.evaluator.record_failure(idx);
                self.unsuccessful_repair_runs += 1;
                // Repair-timeline stage: an evaluation run rejected the installed
                // candidate.
                cv_obs::recorder().instant(
                    "timeline.verdict_failure",
                    "timeline",
                    &[("location", u64::from(self.failure_location))],
                );
                if self.evaluator.exhausted() {
                    cv_obs::recorder().instant(
                        "timeline.gave_up",
                        "timeline",
                        &[("location", u64::from(self.failure_location))],
                    );
                    self.phase = Phase::Unprotected;
                    self.active_repair = None;
                    return vec![Directive::RemoveRepair];
                }
                let (next, cand) = self.evaluator.best().expect("non-empty evaluator");
                if next == idx {
                    // The current repair is still the most promising despite the
                    // failure; keep it installed.
                    self.phase = Phase::Repairing;
                    return Vec::new();
                }
                self.active_repair = Some(next);
                self.phase = Phase::Repairing;
                vec![
                    Directive::RemoveRepair,
                    Directive::InstallRepair(cand.repair.clone()),
                ]
            }
        }
    }

    /// The maintainer-facing report.
    pub fn report(&self) -> RepairReport {
        // The classification map is hash-keyed; report correlated invariants in
        // candidate-selection order so reports are deterministic.
        let correlated = self
            .candidates
            .invariants
            .iter()
            .filter_map(|inv| {
                self.classifications
                    .get(inv)
                    .filter(|c| **c > Correlation::Not)
                    .map(|c| (inv.to_string(), *c))
            })
            .collect();
        RepairReport {
            failure_location: self.failure_location,
            phase: self.phase,
            candidate_invariants: self.candidates.len(),
            correlated,
            repairs: self
                .evaluator
                .scores()
                .iter()
                .map(|s| (s.candidate.repair.description(), s.successes, s.failures))
                .collect(),
            active_repair: self.current_repair().map(|r| r.description()),
            failures_observed: self.failures_observed,
        }
    }
}
