//! The hierarchical manager tree.
//!
//! A flat manager merges every responder shard's patch plan in one step and pushes
//! the result to every member directly — O(shards) merge work and an O(members)
//! fan-out at a single coordinator. At 100k–1M members the single coordinator is
//! the bottleneck: the paper's console (Section 3.2) pushes patches to every Node
//! Manager itself, which is fine at tens of machines and absurd at a million.
//!
//! A [`ManagerTree`] organizes the same work as coordinators-of-coordinators with
//! a fixed fan-out `F`: per-shard plans merge in groups of `F` per tier until one
//! fleet-wide plan remains, and the push travels the tree downward tier by tier —
//! every coordinator talks to at most `F` children, so per-node merge and push
//! cost scales with `F` and the tree depth is `log_F`, not with the member count.
//!
//! Because [`PatchPlan::merge`] concatenates and then **stably** sorts by failure
//! location, merging is associative over ordered groupings: merging contiguous
//! groups per tier and then merging the group results is byte-identical to the
//! flat single-step merge. The tree therefore changes *where* the work happens,
//! never *what* the fleet log records — `flat_and_tree_merges_agree` below and
//! the fleet's manager-parity suite hold it to that.

use crate::manager::PatchPlan;

/// Work done at one tier of the merge: `plans_in` plans entered, `groups`
/// coordinators each merged at most `fanout` of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierMerge {
    /// Tier number, 1 = the tier closest to the shards.
    pub tier: u32,
    /// Coordinators active at this tier.
    pub groups: usize,
    /// Plans entering this tier.
    pub plans_in: usize,
}

/// One tier of the downward patch push: `groups` coordinators each forward the
/// merged plan to at most `fanout` children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPush {
    /// Tier number, 1 = the tier closest to the root coordinator.
    pub tier: u32,
    /// Coordinators (or, at the deepest tier, member groups) receiving the plan.
    pub groups: usize,
}

/// A coordinators-of-coordinators tree with fixed fan-out.
#[derive(Debug, Clone, Copy)]
pub struct ManagerTree {
    fanout: usize,
}

impl ManagerTree {
    /// A tree with the given fan-out. Fan-outs below 2 degenerate to a flat
    /// single-coordinator merge and are clamped to 2.
    pub fn new(fanout: usize) -> Self {
        ManagerTree {
            fanout: fanout.max(2),
        }
    }

    /// The fan-out.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Merge per-shard plans tier by tier. The resulting plan is byte-identical
    /// to `PatchPlan::merge(plans)` (stable sort makes grouping associative);
    /// the per-tier stats record how the work spread across coordinators.
    pub fn merge_plans(&self, mut plans: Vec<PatchPlan>) -> (PatchPlan, Vec<TierMerge>) {
        let mut tiers = Vec::new();
        let mut tier = 1u32;
        while plans.len() > 1 {
            let groups = plans.len().div_ceil(self.fanout);
            tiers.push(TierMerge {
                tier,
                groups,
                plans_in: plans.len(),
            });
            plans = plans
                .chunks(self.fanout)
                .map(|group| PatchPlan::merge(group.iter().cloned()))
                .collect();
            tier += 1;
        }
        (plans.pop().unwrap_or_default(), tiers)
    }

    /// The downward push schedule for a fleet of `members`: tier 1 is the root
    /// fanning to its children, the last tier is the leaf coordinators fanning to
    /// their member groups. Every coordinator contacts at most `fanout` nodes,
    /// so the root's push cost is O(fanout), not O(members).
    pub fn push_tiers(&self, members: usize) -> Vec<TierPush> {
        if members == 0 {
            return Vec::new();
        }
        // Coordinator row widths from the leaves up: the deepest row has one
        // coordinator per `fanout` members, each row above one per `fanout` below.
        let mut widths = vec![members.div_ceil(self.fanout).max(1)];
        while *widths.last().unwrap() > 1 {
            let above = widths.last().unwrap().div_ceil(self.fanout);
            widths.push(above);
        }
        // The trailing 1 is the root itself — it sends, it doesn't receive —
        // unless it is the only row (a tiny fleet: the root pushes straight to
        // its member group).
        if widths.len() > 1 {
            widths.pop();
        }
        widths.reverse();
        widths
            .into_iter()
            .enumerate()
            .map(|(i, groups)| TierPush {
                tier: i as u32 + 1,
                groups,
            })
            .collect()
    }

    /// Number of tiers a push traverses for a fleet of `members`.
    pub fn depth(&self, members: usize) -> usize {
        self.push_tiers(members).len()
    }

    /// The rows of *real* intermediate coordinators for a fleet of `members`:
    /// one [`TierRowSpec`] per coordinator tier, ordered root-down (tier 1 is
    /// directly under the root). A tiny fleet (`members <= fanout`) has no
    /// intermediate coordinators — the root pushes straight to its member
    /// group — and gets an empty vec, exactly the case where `push_tiers`
    /// returns a single one-group tier.
    pub fn coordinator_rows(&self, members: usize) -> Vec<TierRowSpec> {
        let tiers = self.push_tiers(members);
        if tiers.len() == 1 && tiers[0].groups == 1 {
            return Vec::new();
        }
        tiers
            .into_iter()
            .map(|t| TierRowSpec {
                tier: t.tier,
                width: t.groups,
            })
            .collect()
    }
}

/// One row of intermediate coordinators in the tree: `width` coordinators at
/// `tier` (1 = directly under the root), each serving at most `fanout`
/// children in the row below (or a member group at the deepest row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierRowSpec {
    /// Tier number, 1 = the tier closest to the root coordinator.
    pub tier: u32,
    /// Coordinators in this row.
    pub width: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::responder::Directive;

    fn plan(locs: &[u32]) -> PatchPlan {
        let mut p = PatchPlan::default();
        for &loc in locs {
            p.push(loc, Directive::RemoveChecks);
        }
        p
    }

    #[test]
    fn flat_and_tree_merges_agree() {
        // Overlapping locations across shards: stability of the op order among
        // equal locations is exactly what byte-identity requires.
        let plans = vec![
            plan(&[0x300, 0x100]),
            plan(&[0x100, 0x200]),
            plan(&[]),
            plan(&[0x100]),
            plan(&[0x200, 0x50]),
            plan(&[0x300]),
            plan(&[0x50]),
        ];
        let flat = PatchPlan::merge(plans.iter().cloned());
        for fanout in [2, 3, 4, 16] {
            let (merged, tiers) = ManagerTree::new(fanout).merge_plans(plans.clone());
            assert_eq!(merged, flat, "fan-out {fanout} diverged from flat merge");
            assert!(!tiers.is_empty());
            assert_eq!(tiers[0].plans_in, plans.len());
        }
    }

    #[test]
    fn merge_tiers_shrink_by_fanout() {
        let plans: Vec<PatchPlan> = (0..64).map(|i| plan(&[i])).collect();
        let (_, tiers) = ManagerTree::new(4).merge_plans(plans);
        let widths: Vec<usize> = tiers.iter().map(|t| t.plans_in).collect();
        assert_eq!(widths, vec![64, 16, 4]);
        assert_eq!(tiers.last().unwrap().groups, 1);
    }

    #[test]
    fn merge_of_one_or_zero_plans_is_trivial() {
        let (merged, tiers) = ManagerTree::new(8).merge_plans(vec![plan(&[0x10])]);
        assert_eq!(merged, plan(&[0x10]));
        assert!(tiers.is_empty());
        let (merged, tiers) = ManagerTree::new(8).merge_plans(Vec::new());
        assert!(merged.is_empty());
        assert!(tiers.is_empty());
    }

    #[test]
    fn push_tiers_cover_the_fleet_with_bounded_fanout() {
        let tree = ManagerTree::new(32);
        let tiers = tree.push_tiers(100_000);
        // 100k members / 32 = 3125 leaf coordinators, / 32 = 98, / 32 = 4, / 32 = root.
        let widths: Vec<usize> = tiers.iter().map(|t| t.groups).collect();
        assert_eq!(widths, vec![4, 98, 3125]);
        assert_eq!(tree.depth(100_000), 3);
        // Tiny fleets need no intermediate coordinators.
        assert_eq!(tree.push_tiers(10).len(), 1);
        assert!(tree.push_tiers(0).is_empty());
    }

    #[test]
    fn coordinator_rows_exist_only_past_the_fanout() {
        let tree = ManagerTree::new(32);
        // members <= fanout: the root serves its member group itself.
        assert!(tree.coordinator_rows(0).is_empty());
        assert!(tree.coordinator_rows(10).is_empty());
        assert!(tree.coordinator_rows(32).is_empty());
        // One past the fan-out: a single real coordinator row appears.
        let rows = tree.coordinator_rows(33);
        assert_eq!(rows, vec![TierRowSpec { tier: 1, width: 2 }]);
        // Deep fleet: rows mirror push_tiers root-down.
        let widths: Vec<usize> = tree
            .coordinator_rows(100_000)
            .iter()
            .map(|r| r.width)
            .collect();
        assert_eq!(widths, vec![4, 98, 3125]);
        let tiers: Vec<u32> = tree
            .coordinator_rows(100_000)
            .iter()
            .map(|r| r.tier)
            .collect();
        assert_eq!(tiers, vec![1, 2, 3]);
    }
}
