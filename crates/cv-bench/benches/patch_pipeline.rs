//! Criterion bench for the end-to-end patch pipeline (the Table 1 / Table 3 driver):
//! from first exposure to a successful patch for a representative exploit.

use criterion::{criterion_group, criterion_main, Criterion};
use cv_apps::{learning_suite, red_team_exploits, Browser};
use cv_bench::run_single_variant;
use cv_core::{learn_model, ClearViewConfig};
use cv_runtime::MonitorConfig;

fn patch_pipeline(c: &mut Criterion) {
    let browser = Browser::build();
    let (model, _) = learn_model(&browser.image, &learning_suite(), MonitorConfig::full());
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let mut group = c.benchmark_group("patch_pipeline");
    group.sample_size(10);
    group.bench_function("exploit_290162_to_patch", |b| {
        b.iter(|| {
            let run = run_single_variant(
                &browser,
                &exploit,
                model.clone(),
                ClearViewConfig::default(),
            );
            assert_eq!(run.presentations, Some(4));
            std::hint::black_box(run)
        });
    });
    group.finish();
}

criterion_group!(benches, patch_pipeline);
criterion_main!(benches);
