//! The batched fleet wire protocol.
//!
//! `cv-community::Message` records one console message per event — one upload per
//! member, one notification per failure, one push per patch. At community scale that
//! protocol is the bottleneck: a 10,000-member fleet uploading invariants would cross
//! the management console's SSL channels 10,000 times per learning round (Section 3 of
//! the paper describes exactly this console). The fleet protocol instead moves
//! *batches*: everything of one kind that happened in one epoch travels as a single
//! message, and patch pushes name the patch once regardless of how many members
//! receive it.
//!
//! Messages carry counts and patch descriptions, not raw databases — mirroring the
//! paper's observation that the invariant database, not trace data, is what crosses
//! the network. [`FleetMessage::batched_wire_words`] /
//! [`FleetMessage::unbatched_wire_words`] quantify what batching saves.

use cv_isa::Addr;
use cv_patch::{CheckPatch, RepairPatch};
use serde::{Deserialize, Serialize};

/// Identifies a fleet member (compatible with `cv-community::NodeId`).
pub type NodeId = usize;

/// One page presentation scheduled for one member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Presentation {
    /// The member that loads the page.
    pub node: NodeId,
    /// The page content.
    pub page: Vec<cv_isa::Word>,
}

impl Presentation {
    /// Convenience constructor.
    pub fn new(node: NodeId, page: impl Into<Vec<cv_isa::Word>>) -> Self {
        Presentation {
            node,
            page: page.into(),
        }
    }
}

/// A patch operation distributed to every member of the fleet.
#[derive(Debug, Clone)]
pub enum PatchOp {
    /// Install these invariant-checking patches.
    InstallChecks(Vec<CheckPatch>),
    /// Remove all invariant-checking patches for the failure.
    RemoveChecks,
    /// Install this repair patch.
    InstallRepair(RepairPatch),
    /// Remove the currently installed repair patch for the failure.
    RemoveRepair,
}

/// The log-friendly summary of one patch push (the payload itself is a [`PatchOp`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatchPushKind {
    /// Invariant-checking patches were pushed.
    InstallChecks {
        /// Number of invariants checked.
        invariants: usize,
    },
    /// Checking patches were removed.
    RemoveChecks,
    /// A candidate repair was pushed.
    InstallRepair {
        /// Human-readable description of the repair.
        description: String,
    },
    /// A repair was removed.
    RemoveRepair,
}

impl PatchPushKind {
    /// The summary for an operation.
    pub fn of(op: &PatchOp) -> Self {
        match op {
            PatchOp::InstallChecks(checks) => PatchPushKind::InstallChecks {
                invariants: checks.len(),
            },
            PatchOp::RemoveChecks => PatchPushKind::RemoveChecks,
            PatchOp::InstallRepair(repair) => PatchPushKind::InstallRepair {
                description: repair.description(),
            },
            PatchOp::RemoveRepair => PatchPushKind::RemoveRepair,
        }
    }
}

/// One entry of a patch-push batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatchPush {
    /// The failure location the patch belongs to.
    pub location: Addr,
    /// What was pushed.
    pub kind: PatchPushKind,
    /// How many members received the push.
    pub members: usize,
}

/// A batched protocol message, as recorded in the fleet console log.
///
/// Each variant aggregates everything of its kind that happened in one epoch (or one
/// learning round); the `cv-community` facade expands these back into the legacy
/// per-event [`cv_community::Message`](../cv_community) stream for compatibility.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetMessage {
    /// Members uploaded locally inferred invariants (amortized parallel learning).
    InvariantUploads {
        /// The epoch (learning round) of the batch.
        epoch: u64,
        /// `(member, invariant count)` per uploading member.
        uploads: Vec<(NodeId, usize)>,
    },
    /// Monitors detected failures during the epoch.
    Failures {
        /// The epoch of the batch.
        epoch: u64,
        /// `(member, failure location)` per detected failure.
        failures: Vec<(NodeId, Addr)>,
    },
    /// Members reported invariant-check observations for one failure location.
    Observations {
        /// The epoch of the batch.
        epoch: u64,
        /// The failure location the observations belong to.
        location: Addr,
        /// `(member, observation count)` per reporting member.
        reports: Vec<(NodeId, usize)>,
    },
    /// The console pushed patches to every member.
    PatchPushes {
        /// The epoch of the batch.
        epoch: u64,
        /// The pushes of the epoch.
        pushes: Vec<PatchPush>,
    },
}

/// Flat per-event cost of one protocol event, in wire words (header + ids).
const EVENT_HEADER_WORDS: u64 = 4;

impl FleetMessage {
    /// Number of events aggregated in this batch.
    pub fn event_count(&self) -> usize {
        match self {
            FleetMessage::InvariantUploads { uploads, .. } => uploads.len(),
            FleetMessage::Failures { failures, .. } => failures.len(),
            FleetMessage::Observations { reports, .. } => reports.len(),
            FleetMessage::PatchPushes { pushes, .. } => pushes.len(),
        }
    }

    /// Estimated wire size of the batch: one header plus two words per entry.
    pub fn batched_wire_words(&self) -> u64 {
        EVENT_HEADER_WORDS + 2 * self.event_count() as u64
    }

    /// Estimated wire size of the same traffic sent as per-event messages (the
    /// `cv-community` protocol): one header plus two words per event — and patch
    /// pushes additionally repeated once per receiving member.
    pub fn unbatched_wire_words(&self) -> u64 {
        match self {
            FleetMessage::PatchPushes { pushes, .. } => pushes
                .iter()
                .map(|p| (EVENT_HEADER_WORDS + 2) * p.members.max(1) as u64)
                .sum(),
            _ => (EVENT_HEADER_WORDS + 2) * self.event_count() as u64,
        }
    }
}

/// The fleet console log: batched messages plus aggregate wire accounting.
#[derive(Debug, Clone, Default)]
pub struct BatchLog {
    messages: Vec<FleetMessage>,
}

impl BatchLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a batch (empty batches are dropped).
    pub fn push(&mut self, message: FleetMessage) {
        if message.event_count() > 0 {
            self.messages.push(message);
        }
    }

    /// The recorded batches.
    pub fn messages(&self) -> &[FleetMessage] {
        &self.messages
    }

    /// Total wire words with batching.
    pub fn batched_wire_words(&self) -> u64 {
        self.messages.iter().map(|m| m.batched_wire_words()).sum()
    }

    /// Total wire words the legacy per-event protocol would have used.
    pub fn unbatched_wire_words(&self) -> u64 {
        self.messages.iter().map(|m| m.unbatched_wire_words()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_compresses_patch_distribution() {
        let mut log = BatchLog::new();
        log.push(FleetMessage::PatchPushes {
            epoch: 3,
            pushes: vec![PatchPush {
                location: 0x4000,
                kind: PatchPushKind::RemoveChecks,
                members: 1000,
            }],
        });
        assert_eq!(log.messages().len(), 1);
        assert!(log.batched_wire_words() * 100 < log.unbatched_wire_words());
    }

    #[test]
    fn empty_batches_are_dropped() {
        let mut log = BatchLog::new();
        log.push(FleetMessage::Failures {
            epoch: 0,
            failures: vec![],
        });
        assert!(log.messages().is_empty());
        log.push(FleetMessage::Failures {
            epoch: 0,
            failures: vec![(7, 0x40)],
        });
        assert_eq!(log.messages().len(), 1);
        assert_eq!(log.messages()[0].event_count(), 1);
    }
}
