//! Chaos plane: the fleet protocol must survive lossy, reordered, duplicated,
//! and partitioned delivery — and stay *deterministic* while doing so.
//!
//! Every scenario here drives a real [`Fleet`] through the seeded
//! [`ChaosTransport`](cv_fleet::ChaosTransport): drops force ack-driven
//! retransmits and (when the retransmit budget runs out) per-member desync +
//! delta resync; duplicates exercise the `(from, epoch, seq)` idempotence
//! window; delays reorder envelopes across ticks; partitions cut whole member
//! ranges off until healed. The assertions are the strongest ones the fault
//! model allows: where delivery is merely reordered/duplicated (never lost),
//! the [`BatchLog`] must stay **byte-identical** to the in-process seed
//! transport; where envelopes are actually lost, the fleet must converge to
//! fleet-wide immunity with every member resynced, and identically-seeded runs
//! must retrace each other exactly.

use cv_apps::{evaluation_suite, learning_suite, red_team_exploits, Browser, Exploit};
use cv_core::ClearViewConfig;
use cv_fleet::{ChaosConfig, Fleet, FleetConfig, Presentation, TransportKind};

fn exploit(browser: &Browser, bugzilla: u32) -> Exploit {
    red_team_exploits(browser)
        .into_iter()
        .find(|e| e.bugzilla == bugzilla)
        .unwrap()
}

fn build_fleet(browser: &Browser, nodes: usize, transport: TransportKind) -> Fleet {
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(nodes)
            .with_workers(4)
            .with_transport(transport),
    );
    fleet.distributed_learning(&learning_suite());
    fleet
}

/// Attack a few members per epoch until the location is protected (or panic).
/// Under a lossy transport a presentation page can itself be dropped, so this
/// retries the same batch each epoch — exactly what a real attacker gives us.
fn attack_until_protected(
    fleet: &mut Fleet,
    exploit: &Exploit,
    attackers: &[usize],
    location: u32,
    max_epochs: u64,
) -> u64 {
    for round in 1..=max_epochs {
        let batch: Vec<Presentation> = attackers
            .iter()
            .map(|&node| Presentation::new(node, exploit.page()))
            .collect();
        fleet.run_epoch(&batch);
        if fleet.is_protected_against(location) {
            return round;
        }
    }
    panic!(
        "fleet not protected after {max_epochs} chaos epochs (phase: {:?})",
        fleet.phase_of(location)
    );
}

/// Run benign epochs until every member is transport-synced again (desynced
/// members are healed by the per-epoch resync pass as soon as their acks get
/// through).
fn settle(fleet: &mut Fleet, max_epochs: u64) {
    let benign = evaluation_suite();
    for _ in 0..max_epochs {
        if fleet.transport_desynced().is_empty() {
            return;
        }
        let batch: Vec<Presentation> = benign
            .iter()
            .take(4)
            .enumerate()
            .map(|(i, page)| Presentation::new(i % fleet.node_count(), page.clone()))
            .collect();
        fleet.run_epoch(&batch);
    }
    panic!(
        "members still transport-desynced after {max_epochs} settle epochs: {:?}",
        fleet.transport_desynced()
    );
}

/// Duplication and reordering alone (no loss) must be *invisible*: the batch
/// log — the fleet's externally observable protocol history — stays
/// byte-identical to the in-process transport, and the suppressed-duplicate
/// counter proves the idempotence window did real work.
#[test]
fn duplicate_and_reorder_only_chaos_is_byte_identical_to_in_process() {
    let browser = Browser::build();
    let exploit = exploit(&browser, 290162);
    let location = browser.sym("vuln_290162_call");

    let run = |transport: TransportKind| {
        let mut fleet = build_fleet(&browser, 48, transport);
        attack_until_protected(&mut fleet, &exploit, &[0, 11, 40], location, 12);
        let verify: Vec<Presentation> = (0..48)
            .map(|node| Presentation::new(node, exploit.page()))
            .collect();
        fleet.run_epoch(&verify);
        fleet
    };

    let baseline = run(TransportKind::InProcess);
    let chaotic = run(TransportKind::Chaos(
        ChaosConfig::lossless(0xC0FFEE)
            .with_dup_per_mille(80)
            .with_delay_ticks(3),
    ));

    assert_eq!(
        baseline.log(),
        chaotic.log(),
        "reordered+duplicated delivery changed the protocol history"
    );
    assert_eq!(
        format!("{:?}", baseline.log()),
        format!("{:?}", chaotic.log()),
        "logs structurally equal but not byte-identical"
    );
    assert_eq!(baseline.model().invariants, chaotic.model().invariants);
    assert_eq!(
        format!("{:?}", baseline.net_state().to_plan()),
        format!("{:?}", chaotic.net_state().to_plan()),
    );
    assert!(
        chaotic.metrics().duplicates_suppressed > 0,
        "the dup rate should have produced suppressed duplicates"
    );
    assert_eq!(chaotic.metrics().envelopes_dropped, 0);
    assert!(chaotic.transport_desynced().is_empty());
}

/// The lossless socket backend serializes every envelope through a real
/// loopback TCP pair — and must still retrace the in-process log exactly.
#[test]
fn socket_transport_log_matches_in_process() {
    let browser = Browser::build();
    let exploit = exploit(&browser, 290162);
    let location = browser.sym("vuln_290162_call");

    let run = |transport: TransportKind| {
        let mut fleet = build_fleet(&browser, 24, transport);
        attack_until_protected(&mut fleet, &exploit, &[3, 9], location, 12);
        fleet
    };

    let in_process = run(TransportKind::InProcess);
    let socket = run(TransportKind::Socket);
    assert_eq!(
        in_process.log(),
        socket.log(),
        "socket framing changed the protocol history"
    );
    assert_eq!(in_process.model().invariants, socket.model().invariants);
    assert!(socket.metrics().envelopes_sent > 0);
    assert_eq!(socket.metrics().envelopes_dropped, 0);
}

/// 10% drop + 5% duplication + delay: envelopes are really lost, so the fleet
/// leans on retransmits and (when a push exhausts its budget) the desync →
/// delta-resync path — and still reaches fleet-wide immunity.
#[test]
fn fleet_converges_under_drops_and_duplicates() {
    let browser = Browser::build();
    let exploit = exploit(&browser, 290162);
    let location = browser.sym("vuln_290162_call");

    let mut fleet = build_fleet(
        &browser,
        96,
        TransportKind::Chaos(ChaosConfig::standard(0xBAD5EED)),
    );
    attack_until_protected(&mut fleet, &exploit, &[0, 17, 40, 41, 95], location, 24);
    settle(&mut fleet, 16);

    // Every member is synced onto the net plan, so immunity is fleet-wide: a
    // verify wave blocks nobody (dropped pages simply never run — they cannot
    // fail).
    let verify: Vec<Presentation> = (0..96)
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    assert_eq!(outcome.blocked(), 0, "a synced member was not immune");
    assert!(outcome.completed() > 0);

    let m = fleet.metrics();
    assert!(m.envelopes_dropped > 0, "chaos config produced no drops");
    assert!(m.retransmits > 0, "drops must force retransmits");
    assert!(
        m.duplicates_suppressed > 0,
        "dups + retransmits must hit the idempotence window"
    );
    assert!(fleet.transport_stats().dropped > 0);
}

/// Partition a contiguous member range for several epochs of real protocol
/// progress, then heal: the cut members must desync (their pushes cannot ack),
/// then rejoin through the existing delta-sync plane — not a full snapshot —
/// and end fully synced and immune.
#[test]
fn partitioned_members_rejoin_via_delta_resync() {
    let browser = Browser::build();
    let exploit = exploit(&browser, 290162);
    let location = browser.sym("vuln_290162_call");
    let cut: Vec<usize> = (8..16).collect();

    let mut fleet = build_fleet(
        &browser,
        32,
        // No background loss: this test isolates the partition fault.
        TransportKind::Chaos(ChaosConfig::lossless(0x9A47)),
    );
    // One benign epoch so the partitioned members have a synced base > 0 to
    // delta from.
    let benign = evaluation_suite();
    fleet.run_epoch(&[Presentation::new(0, benign[0].clone())]);

    fleet.partition_members(&cut);
    attack_until_protected(&mut fleet, &exploit, &[0, 20, 31], location, 12);
    assert!(
        !fleet.transport_desynced().is_empty(),
        "partitioned members should have missed the patch push"
    );
    for &node in &cut {
        assert!(!fleet.is_member_synced(node));
    }
    assert!(fleet.metrics().partition_drops > 0);
    assert!(fleet.metrics().transport_desyncs > 0);

    fleet.heal_partition();
    settle(&mut fleet, 8);

    let m = fleet.metrics();
    assert!(m.transport_resyncs > 0, "healed members never resynced");
    assert!(
        m.transport_delta_resyncs > 0,
        "resync should have used the delta plane, not full snapshots"
    );
    for &node in &cut {
        assert!(fleet.is_member_synced(node), "member {node} still desynced");
    }

    // The healed members are immune too.
    let verify: Vec<Presentation> = cut
        .iter()
        .map(|&node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    assert_eq!(outcome.blocked(), 0);
    assert_eq!(outcome.completed(), cut.len());
}

/// Chaos is *seeded*: two runs with the same seed retrace each other exactly,
/// and a coordinator that fails over from its latest checkpoint mid-history
/// continues deterministically — two identical failovers produce byte-identical
/// logs and equal final state.
#[test]
fn chaos_history_is_deterministic_and_failover_preserves_it() {
    let browser = Browser::build();
    let exploit = exploit(&browser, 290162);
    let location = browser.sym("vuln_290162_call");
    let transport = || TransportKind::Chaos(ChaosConfig::standard(0xD15EA5E));

    let run = || {
        let mut fleet = build_fleet(&browser, 32, transport());
        attack_until_protected(&mut fleet, &exploit, &[1, 2, 30], location, 24);
        fleet
    };
    let a = run();
    let b = run();
    assert_eq!(
        format!("{:?}", a.log()),
        format!("{:?}", b.log()),
        "same seed, different history"
    );
    assert_eq!(a.model().invariants, b.model().invariants);
    assert_eq!(a.metrics().envelopes_dropped, b.metrics().envelopes_dropped);
    assert_eq!(a.metrics().retransmits, b.metrics().retransmits);

    // Coordinator failover: checkpoint the surviving history, restart from it
    // under the same chaos seed, and keep going. Two identical failovers must
    // agree byte-for-byte.
    let mut source = run();
    let checkpoint = source.checkpoint();
    let resume = || {
        let mut fleet = Fleet::from_snapshot(
            browser.image.clone(),
            ClearViewConfig::default(),
            FleetConfig::new(32)
                .with_workers(4)
                .with_transport(transport()),
            &checkpoint,
        );
        // The restored fleet is already protected; drive mixed traffic through
        // the fresh transport to extend the history.
        let benign = evaluation_suite();
        for round in 0..4u64 {
            let mut batch: Vec<Presentation> =
                vec![Presentation::new((round as usize) % 32, exploit.page())];
            for (i, page) in benign.iter().take(3).enumerate() {
                batch.push(Presentation::new((7 + i * 11) % 32, page.clone()));
            }
            fleet.run_epoch(&batch);
        }
        fleet
    };
    let fa = resume();
    let fb = resume();
    assert!(
        fa.is_protected_against(location),
        "failover lost the repair"
    );
    assert_eq!(
        format!("{:?}", fa.log()),
        format!("{:?}", fb.log()),
        "failover broke determinism"
    );
    assert_eq!(fa.model().invariants, fb.model().invariants);
    assert_eq!(
        format!("{:?}", fa.net_state().to_plan()),
        format!("{:?}", fb.net_state().to_plan()),
    );
}

/// The acceptance bar from the issue: a 1,000-member fleet, exploits at
/// multiple code locations, the standard seeded fault mix (drops + dups +
/// delay) plus a mid-history partition — and the fleet still reaches immunity
/// at every attacked location with every member resynced.
#[test]
fn thousand_member_fleet_reaches_multi_location_immunity_under_chaos() {
    let browser = Browser::build();
    let targets: Vec<(Exploit, u32)> = [
        (269095u32, "vuln_269095_call"),
        (290162u32, "vuln_290162_call"),
    ]
    .into_iter()
    .map(|(bugzilla, sym)| (exploit(&browser, bugzilla), browser.sym(sym)))
    .collect();

    let mut fleet = build_fleet(
        &browser,
        1000,
        TransportKind::Chaos(ChaosConfig::standard(0xF1EE7)),
    );

    let benign = evaluation_suite();
    let mut partitioned = false;
    for round in 0..40u64 {
        let mut batch: Vec<Presentation> = Vec::new();
        for (which, (exploit, _)) in targets.iter().enumerate() {
            for k in 0..4usize {
                batch.push(Presentation::new(
                    (which * 499 + k * 113 + 3) % 1000,
                    exploit.page(),
                ));
            }
        }
        for (i, page) in benign.iter().take(4).enumerate() {
            batch.push(Presentation::new((100 + i * 37) % 1000, page.clone()));
        }
        if round == 2 && !partitioned {
            let cut: Vec<usize> = (600..620).collect();
            fleet.partition_members(&cut);
            partitioned = true;
        }
        if round == 6 && partitioned {
            fleet.heal_partition();
        }
        fleet.run_epoch(&batch);
        if round > 6
            && targets
                .iter()
                .all(|(_, loc)| fleet.is_protected_against(*loc))
        {
            break;
        }
    }
    for (_, loc) in &targets {
        assert!(
            fleet.is_protected_against(*loc),
            "location {loc:#x} never reached immunity under chaos"
        );
    }
    settle(&mut fleet, 16);

    let m = fleet.metrics();
    assert!(m.envelopes_dropped > 0);
    assert!(m.retransmits > 0);
    assert!(m.duplicates_suppressed > 0);
    assert!(m.partition_drops > 0);
    assert!(m.transport_resyncs > 0, "cut members must have resynced");

    // Fleet-wide: every member synced onto the net plan carrying both repairs.
    assert!(fleet.transport_desynced().is_empty());
    let verify: Vec<Presentation> = (0..1000)
        .step_by(97)
        .flat_map(|node| {
            targets
                .iter()
                .map(move |(exploit, _)| Presentation::new(node, exploit.page()))
        })
        .collect();
    let outcome = fleet.run_epoch(&verify);
    assert_eq!(
        outcome.blocked(),
        0,
        "an immunized member was attacked and failed"
    );
}
