//! One program image shared by an arbitrary number of execution environments.
//!
//! A fleet of simulated members all run the *same* binary. The classic
//! [`ManagedExecutionEnvironment`](crate::ManagedExecutionEnvironment) owns a private
//! image copy, a private code cache, and loads a private address space per run —
//! O(members · image) memory and O(image) setup per run. [`SharedProgram`] factors all
//! of the immutable state out once per fleet:
//!
//! * the [`BinaryImage`] itself (`Arc`, never cloned),
//! * the **pristine address space** — the words [`Memory::load`] would produce —
//!   backing copy-on-write machines ([`Memory::cow`]) that copy only the pages a run
//!   actually dirties,
//! * a [`CodeIndex`]: every code address pre-decoded once, replacing the per-run
//!   warm-up of a private [`CodeCache`](crate::CodeCache).
//!
//! The index is exactly faithful to the classic cache's fetch semantics: the cache
//! serves the context-free decode at the fetched address and errors iff
//! [`CodeCache::build_block`](crate::CodeCache::build_block) errors from that address
//! (a cache hit at an address implies the whole suffix of its block decodes, so the
//! error set is independent of cache state).

use crate::cache::CodeCache;
use crate::memory::Memory;
use cv_isa::{Addr, BinaryImage, InstWithAddr, Word};
use std::sync::Arc;

/// Every code address of an image, pre-decoded once.
///
/// `fetch` returns `None` exactly where the classic cache's fetch would crash the
/// guest with an invalid-instruction error.
#[derive(Debug)]
pub struct CodeIndex {
    code_base: Addr,
    insts: Vec<Option<InstWithAddr>>,
}

impl CodeIndex {
    /// Decode every address of `image`'s code segment.
    pub fn build(image: &BinaryImage) -> CodeIndex {
        let insts = (0..image.code.len())
            .map(|offset| {
                let addr = image.layout.code_base + offset as Addr;
                CodeCache::build_block(image, addr)
                    .ok()
                    .map(|block| block.insts[0])
            })
            .collect();
        CodeIndex {
            code_base: image.layout.code_base,
            insts,
        }
    }

    /// The instruction at `addr`, or `None` if the address does not decode (the
    /// invalid-instruction case).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the code segment the index was built for; callers
    /// gate on `contains_code_addr` exactly as the classic fetch path does.
    #[inline]
    pub fn fetch(&self, addr: Addr) -> Option<InstWithAddr> {
        self.insts[(addr - self.code_base) as usize]
    }

    /// Addresses indexed (the code segment length in words).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True for an empty code segment.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// The shared, immutable half of a fleet's execution state: image, pristine address
/// space, and pre-decoded code. Clones are `Arc` bumps.
#[derive(Debug, Clone)]
pub struct SharedProgram {
    image: Arc<BinaryImage>,
    pristine: Arc<[Word]>,
    index: Arc<CodeIndex>,
}

impl SharedProgram {
    /// Load and index `image` once.
    pub fn new(image: BinaryImage) -> SharedProgram {
        let loaded = Memory::load(&image);
        let pristine: Arc<[Word]> = loaded
            .read_slice(0, loaded.len())
            .expect("pristine snapshot covers the layout")
            .into();
        let index = Arc::new(CodeIndex::build(&image));
        SharedProgram {
            image: Arc::new(image),
            pristine,
            index,
        }
    }

    /// The shared image.
    pub fn image(&self) -> &Arc<BinaryImage> {
        &self.image
    }

    /// The pristine loaded address space (what [`Memory::load`] produces).
    pub fn pristine(&self) -> &Arc<[Word]> {
        &self.pristine
    }

    /// The pre-decoded code index.
    pub fn index(&self) -> &Arc<CodeIndex> {
        &self.index
    }

    /// Bytes resident in the shared state (image words + pristine space + index),
    /// paid once per fleet regardless of member count.
    pub fn resident_bytes(&self) -> usize {
        let word = std::mem::size_of::<Word>();
        let image = (self.image.code.len() + self.image.data.len()) * word;
        let index = self.index.insts.len() * std::mem::size_of::<Option<InstWithAddr>>();
        image + self.pristine.len() * word + index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RuntimeError;
    use cv_isa::{Cond, ProgramBuilder, Reg};

    fn image() -> BinaryImage {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.mov(Reg::Eax, 1u32);
        b.cmp(Reg::Eax, 0u32);
        let skip = b.new_label("skip");
        b.jcc(Cond::Eq, skip);
        b.add(Reg::Eax, 2u32);
        b.bind(skip);
        b.halt();
        b.set_entry(main);
        b.build().unwrap()
    }

    /// The index agrees with a fresh-cache fetch at every single code address — both
    /// on the decoded instruction and on which addresses error.
    #[test]
    fn index_matches_classic_fetch_everywhere() {
        let image = image();
        let program = SharedProgram::new(image.clone());
        for offset in 0..image.code.len() {
            let addr = image.layout.code_base + offset as Addr;
            let mut cache = CodeCache::new();
            match cache.fetch(&image, addr) {
                Ok((iwa, _)) => assert_eq!(program.index().fetch(addr), Some(iwa)),
                Err(RuntimeError::AddressOutsideCode(_)) => unreachable!(),
                Err(_) => assert_eq!(program.index().fetch(addr), None),
            }
        }
        assert_eq!(program.index().len(), image.code.len());
    }

    #[test]
    fn pristine_matches_memory_load() {
        let image = image();
        let program = SharedProgram::new(image.clone());
        let loaded = Memory::load(&image);
        assert_eq!(
            program.pristine().as_ref(),
            &loaded.read_slice(0, loaded.len()).unwrap()[..]
        );
        assert!(program.resident_bytes() > 0);
    }
}
