//! Envelope codec hardening: the transport decoder must *reject, never
//! misread* — every truncation prefix, every flipped payload byte, wrong
//! magic, and wrong version fail with a typed [`StoreError`], never a panic
//! and never a silently wrong envelope. Plus the golden-fixture gate: a
//! version-1 envelope committed to the repo decodes to exactly the known
//! message on every run, so an accidental wire-format change fails CI before
//! it can strand a mixed-version fleet mid-rollout.
//!
//! To regenerate after an *intentional* format bump (which must also bump
//! `ENVELOPE_VERSION`):
//!
//! ```text
//! cargo test -p cv-store --test envelope_corruption regenerate_golden_envelope -- --ignored
//! ```

use cv_core::{Directive, PatchPlan};
use cv_inference::{Invariant, InvariantDatabase, Variable};
use cv_isa::{MemRef, Operand, Reg};
use cv_patch::{CheckPatch, RepairPatch, RepairStrategy};
use cv_store::{Envelope, EnvelopePayload, StoreError};
use std::sync::Arc;

const FIXTURE: &[u8] = include_bytes!("golden_envelope_v1.bin");

/// The exact envelope the committed fixture encodes: an invariant upload —
/// the richest payload kind — exercising every invariant shape, every operand
/// shape, learning counters, and a procedure list.
fn golden_envelope() -> Envelope {
    let reg_var = Variable::read(0x4_0000, 0, Operand::Reg(Reg::Ebx));
    let mem_var = Variable::read(
        0x4_0010,
        1,
        Operand::Mem(MemRef::indexed(Reg::Ebp, Reg::Esi, 4, -12)),
    );
    let addr_var = Variable::computed_addr(0x4_0020, 0);
    let sp_var = Variable::stack_pointer(0x4_0030);

    let mut invariants = InvariantDatabase::new();
    invariants.insert(Invariant::OneOf {
        var: reg_var,
        values: [0x4_1000u32, 0x4_2000, 0xFFFF_FFFF].into_iter().collect(),
    });
    invariants.insert(Invariant::LowerBound {
        var: mem_var,
        min: -7,
    });
    invariants.insert(Invariant::LessThan {
        a: mem_var,
        b: addr_var,
    });
    invariants.insert(Invariant::StackPointerOffset {
        proc_entry: 0x4_0000,
        at: 0x4_0040,
        offset: -3,
    });
    invariants.insert(Invariant::OneOf {
        var: sp_var,
        values: [12u32].into_iter().collect(),
    });
    invariants.stats.events_processed = 123_456;
    invariants.stats.runs_committed = 789;
    invariants.recount();

    Envelope {
        from: 42,
        to: u32::MAX,
        epoch: 7,
        seq: 1_000_001,
        payload: EnvelopePayload::Upload {
            invariants: Arc::new(invariants),
            procs: Arc::new(vec![0x4_0000, 0x4_0100, 0x4_0200]),
        },
    }
}

/// One envelope of every payload kind, each with a non-trivial payload, so the
/// corruption sweeps cover every decode path.
fn representative_envelopes() -> Vec<Envelope> {
    let var = Variable::read(0x4_0000, 0, Operand::Reg(Reg::Eax));
    let inv = Invariant::LowerBound { var, min: 3 };
    let mut plan = PatchPlan::new();
    plan.push(
        0x4_0000,
        Directive::InstallChecks(vec![CheckPatch::new(inv.clone())]),
    );
    plan.push(
        0x4_0010,
        Directive::InstallRepair(RepairPatch {
            invariant: inv,
            strategy: RepairStrategy::SetValue { value: 9 },
        }),
    );
    let mut db = InvariantDatabase::new();
    db.insert(Invariant::OneOf {
        var,
        values: [1u32, 2, 3].into_iter().collect(),
    });
    db.recount();

    let payloads = vec![
        EnvelopePayload::Page(vec![10, 20, 30, 40]),
        EnvelopePayload::Upload {
            invariants: Arc::new(db),
            procs: Arc::new(vec![0x4_0000]),
        },
        EnvelopePayload::PatchPush(Arc::new(plan)),
        EnvelopePayload::Snapshot(Arc::new((0u8..64).collect())),
        EnvelopePayload::Delta {
            base_epoch: 3,
            bytes: Arc::new((0u8..32).rev().collect()),
        },
        EnvelopePayload::Ack,
    ];
    payloads
        .into_iter()
        .enumerate()
        .map(|(i, payload)| Envelope {
            from: i as u32,
            to: u32::MAX,
            epoch: 11,
            seq: 100 + i as u64,
            payload,
        })
        .collect()
}

#[test]
fn committed_golden_envelope_still_decodes() {
    let decoded = Envelope::decode(FIXTURE).expect("the committed v1 fixture must decode");
    assert_eq!(
        decoded,
        golden_envelope(),
        "fixture decodes to the known envelope"
    );
    assert_eq!(
        decoded.encode(),
        FIXTURE,
        "re-encoding the fixture is byte-identical (wire format unchanged)"
    );
}

#[test]
fn every_truncation_prefix_is_rejected() {
    for env in representative_envelopes() {
        let bytes = env.encode();
        for len in 0..bytes.len() {
            match Envelope::decode(&bytes[..len]) {
                Err(_) => {}
                Ok(_) => panic!(
                    "decoding a {len}-byte prefix of a {}-byte envelope succeeded",
                    bytes.len()
                ),
            }
        }
    }
}

#[test]
fn every_single_byte_flip_is_rejected_or_harmless() {
    // The *reject, never misread* contract, stated exactly: a flipped byte
    // either fails with a typed error or — in the rare structurally-neutral
    // case, e.g. the table offset of a zero-length section — still decodes to
    // the original envelope. A flip may never produce a *different* envelope.
    for env in representative_envelopes() {
        let bytes = env.encode();
        let mut corrupt = bytes.clone();
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0x80] {
                corrupt[i] ^= mask;
                if let Ok(decoded) = Envelope::decode(&corrupt) {
                    assert_eq!(
                        decoded, env,
                        "flipping byte {i} (mask {mask:#04x}) decoded to a different envelope"
                    );
                }
                corrupt[i] ^= mask;
            }
        }
        assert_eq!(corrupt, bytes, "corruption sweep must restore the buffer");
    }
}

#[test]
fn payload_flips_fail_the_section_checksum() {
    // The payload section is the tail of the container; its CRC must catch a
    // flip there specifically (not just some earlier structural check).
    let bytes = golden_envelope().encode();
    let mut corrupt = bytes.clone();
    let idx = bytes.len() - 8;
    corrupt[idx] ^= 0x01;
    assert!(matches!(
        Envelope::decode(&corrupt),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let bytes = golden_envelope().encode();

    let mut wrong_magic = bytes.clone();
    wrong_magic[..4].copy_from_slice(b"JUNK");
    assert!(matches!(
        Envelope::decode(&wrong_magic),
        Err(StoreError::BadMagic { .. })
    ));

    // A *snapshot* magic on an envelope decoder must be rejected too: the two
    // container families can never be confused for one another.
    let mut snapshot_magic = bytes.clone();
    snapshot_magic[..4].copy_from_slice(b"CVSS");
    assert!(Envelope::decode(&snapshot_magic).is_err());

    let mut wrong_version = bytes.clone();
    wrong_version[4] = 99;
    assert!(matches!(
        Envelope::decode(&wrong_version),
        Err(StoreError::UnsupportedVersion { found: 99, .. })
    ));

    assert!(Envelope::decode(&[]).is_err());
    assert!(Envelope::decode(b"CV").is_err());
}

#[test]
#[ignore = "writes the fixture; run only on an intentional format change"]
fn regenerate_golden_envelope() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_envelope_v1.bin");
    std::fs::write(path, golden_envelope().encode()).expect("write fixture");
}
