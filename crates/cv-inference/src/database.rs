//! The invariant database: learned invariants indexed by their check location.
//!
//! Community members upload locally inferred invariants to the central ClearView
//! manager, which merges them into a database of invariants consistent with every
//! execution observed so far (Section 3.1). The database — not the raw trace data — is
//! what crosses the network, and it is what the correlated-invariant identification step
//! consults when a failure is reported.

use crate::invariant::{Invariant, ONE_OF_LIMIT};
use crate::variable::Variable;
use cv_isa::Addr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters describing a learning session; carried with the database for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LearningStats {
    /// Trace events processed.
    pub events_processed: u64,
    /// Normal runs committed into the model.
    pub runs_committed: u64,
    /// Erroneous runs whose samples were discarded.
    pub runs_discarded: u64,
    /// Distinct variables observed.
    pub variables_observed: u64,
    /// Variables dropped by the equal-value deduplication optimization (Section 2.2.4).
    pub duplicates_removed: u64,
    /// Variables classified as pointers (lower-bound / less-than inference suppressed).
    pub pointers_classified: u64,
    /// One-of invariants inferred.
    pub one_of: u64,
    /// Lower-bound invariants inferred.
    pub lower_bound: u64,
    /// Less-than invariants inferred.
    pub less_than: u64,
    /// Stack-pointer-offset invariants inferred.
    pub sp_offset: u64,
}

impl LearningStats {
    /// Total number of invariants.
    pub fn total_invariants(&self) -> u64 {
        self.one_of + self.lower_bound + self.less_than + self.sp_offset
    }
}

/// Identity of an invariant irrespective of its learned parameters; used when merging
/// databases from different community members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum InvariantKey {
    OneOf(Variable),
    LowerBound(Variable),
    LessThan(Variable, Variable),
    StackPointerOffset(Addr, Addr),
}

fn key_of(inv: &Invariant) -> InvariantKey {
    match inv {
        Invariant::OneOf { var, .. } => InvariantKey::OneOf(*var),
        Invariant::LowerBound { var, .. } => InvariantKey::LowerBound(*var),
        Invariant::LessThan { a, b } => InvariantKey::LessThan(*a, *b),
        Invariant::StackPointerOffset { proc_entry, at, .. } => {
            InvariantKey::StackPointerOffset(*proc_entry, *at)
        }
    }
}

/// Combine two learned instances of the "same" invariant into the weakest property that
/// is consistent with both sets of observations, or `None` if no such property of the
/// template remains.
fn combine(a: &Invariant, b: &Invariant) -> Option<Invariant> {
    match (a, b) {
        (Invariant::OneOf { var, values: va }, Invariant::OneOf { values: vb, .. }) => {
            let union: std::collections::BTreeSet<_> = va.union(vb).copied().collect();
            if union.len() <= ONE_OF_LIMIT {
                Some(Invariant::OneOf {
                    var: *var,
                    values: union,
                })
            } else {
                None
            }
        }
        (Invariant::LowerBound { var, min: ma }, Invariant::LowerBound { min: mb, .. }) => {
            Some(Invariant::LowerBound {
                var: *var,
                min: (*ma).min(*mb),
            })
        }
        (Invariant::LessThan { .. }, Invariant::LessThan { .. }) => Some(a.clone()),
        (
            Invariant::StackPointerOffset {
                proc_entry,
                at,
                offset: oa,
            },
            Invariant::StackPointerOffset { offset: ob, .. },
        ) => {
            if oa == ob {
                Some(Invariant::StackPointerOffset {
                    proc_entry: *proc_entry,
                    at: *at,
                    offset: *oa,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Learned invariants indexed by the address at which they are checked.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InvariantDatabase {
    by_addr: BTreeMap<Addr, Vec<Invariant>>,
    /// Learning counters.
    pub stats: LearningStats,
}

impl InvariantDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an invariant (indexed by its check address).
    pub fn insert(&mut self, inv: Invariant) {
        self.by_addr.entry(inv.check_addr()).or_default().push(inv);
    }

    /// The invariants checked at `addr`.
    pub fn invariants_at(&self, addr: Addr) -> &[Invariant] {
        self.by_addr.get(&addr).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Iterate over every invariant.
    pub fn iter(&self) -> impl Iterator<Item = &Invariant> {
        self.by_addr.values().flatten()
    }

    /// Total number of invariants.
    pub fn len(&self) -> usize {
        self.by_addr.values().map(|v| v.len()).sum()
    }

    /// True if no invariants are stored.
    pub fn is_empty(&self) -> bool {
        self.by_addr.is_empty()
    }

    /// Addresses that carry at least one invariant.
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.by_addr.keys().copied()
    }

    /// Iterate over `(check address, invariants)` entries in ascending address order
    /// — the canonical order the snapshot codec and delta differ consume.
    pub fn entries(&self) -> impl Iterator<Item = (Addr, &[Invariant])> + '_ {
        self.by_addr.iter().map(|(a, v)| (*a, v.as_slice()))
    }

    /// The entry stored at `addr`, distinguishing a missing entry (`None`) from a
    /// present one — the comparison the incremental delta cutter needs, where
    /// [`InvariantDatabase::invariants_at`] collapses both to an empty slice.
    pub fn entry(&self, addr: Addr) -> Option<&[Invariant]> {
        self.by_addr.get(&addr).map(|v| v.as_slice())
    }

    /// Replace the invariants stored at `addr` wholesale (an empty vector removes
    /// the entry). The delta-sync apply path uses this to install changed entries;
    /// callers must [`InvariantDatabase::recount`] once the batch is applied.
    pub fn set_entry(&mut self, addr: Addr, invs: Vec<Invariant>) {
        if invs.is_empty() {
            self.by_addr.remove(&addr);
        } else {
            self.by_addr.insert(addr, invs);
        }
    }

    /// The learned stack-pointer offset at instruction `at` for the procedure entered at
    /// `proc_entry`, if a unique one was observed. Used by return-from-procedure repairs.
    pub fn sp_offset(&self, proc_entry: Addr, at: Addr) -> Option<i32> {
        self.by_addr.get(&at).and_then(|invs| {
            invs.iter().find_map(|inv| match inv {
                Invariant::StackPointerOffset {
                    proc_entry: p,
                    offset,
                    ..
                } if *p == proc_entry => Some(*offset),
                _ => None,
            })
        })
    }

    /// Merge another database into this one.
    ///
    /// For invariants over a variable both members observed, the result is the weakest
    /// property consistent with both (one-of value sets union, lower bounds take the
    /// minimum); an invariant that cannot be reconciled is dropped. Invariants over
    /// variables only one member observed are kept — with amortized parallel learning
    /// each member traces a different part of the application, so its invariants are the
    /// only evidence for that region (Section 3.1).
    pub fn merge(&mut self, other: &InvariantDatabase) {
        self.merge_filtered(other, |_| true);
        // Keep the aggregate counters roughly meaningful after a merge.
        self.stats.events_processed += other.stats.events_processed;
        self.stats.runs_committed += other.stats.runs_committed;
        self.stats.runs_discarded += other.stats.runs_discarded;
        self.recount();
    }

    /// Merge only the invariants of `other` whose check address satisfies `keep`.
    ///
    /// This is the primitive behind sharded community merges (`cv-fleet`): each shard
    /// worker merges every member upload restricted to the addresses it owns, so N
    /// shards can merge the same uploads in parallel without coordination and their
    /// union is exactly the sequential [`InvariantDatabase::merge`] result.
    ///
    /// Unlike [`InvariantDatabase::merge`] this does **not** touch the learning
    /// counters — callers accumulating across shards must account for `other.stats`
    /// exactly once (see [`InvariantDatabase::absorb_run_stats`]).
    pub fn merge_filtered(&mut self, other: &InvariantDatabase, keep: impl FnMut(Addr) -> bool) {
        self.merge_filtered_observed(other, keep, |_| {});
    }

    /// [`InvariantDatabase::merge_filtered`] with change observation: `on_change` is
    /// called with every check address whose stored entry this merge actually
    /// modified (added, reshaped, or removed) — the hook the dirty-epoch plane uses
    /// to stamp mutations as they land, so delta snapshots can later be cut in
    /// O(changed) without diffing materialized bases.
    pub fn merge_filtered_observed(
        &mut self,
        other: &InvariantDatabase,
        mut keep: impl FnMut(Addr) -> bool,
        mut on_change: impl FnMut(Addr),
    ) {
        for (addr, invs) in &other.by_addr {
            if !keep(*addr) {
                continue;
            }
            if self.merge_addr(*addr, invs) {
                on_change(*addr);
            }
        }
    }

    /// Merge one address's invariants (in their stored order) into this database —
    /// the per-entry primitive shared by [`InvariantDatabase::merge_filtered`] and
    /// [`InvariantDatabase::merge_into_shards`]. Returns whether the stored entry
    /// actually changed (a merge that reproduces the existing entry bit-for-bit —
    /// same one-of sets, no lower bound moved — reports `false`).
    fn merge_addr(&mut self, addr: Addr, invs: &[Invariant]) -> bool {
        if invs.is_empty() {
            // An address whose invariants were all dropped by earlier merges must not
            // materialize an (empty) entry in this database.
            return false;
        }
        let slot = self.by_addr.entry(addr).or_default();
        let mut changed = false;
        for inv in invs {
            let key = key_of(inv);
            if let Some(pos) = slot.iter().position(|existing| key_of(existing) == key) {
                match combine(&slot[pos], inv) {
                    Some(combined) => {
                        if combined != slot[pos] {
                            slot[pos] = combined;
                            changed = true;
                        }
                    }
                    None => {
                        slot.remove(pos);
                        changed = true;
                    }
                }
            } else {
                slot.push(inv.clone());
                changed = true;
            }
        }
        if slot.is_empty() {
            // Every invariant was dropped: remove the slot rather than leaving an
            // empty entry behind — entry presence must mean "carries invariants",
            // or snapshots and deltas would encode dead entries.
            self.by_addr.remove(&addr);
        }
        changed
    }

    /// Merge `other` into a set of disjoint shards in **one scan**, routing every
    /// address entry straight to the shard [`InvariantDatabase::shard_of`] assigns it.
    ///
    /// Result-identical to every shard `i` running
    /// `merge_filtered(other, |addr| shard_of(addr, shards.len()) == i)`, but at
    /// monolithic cost: the per-shard formulation scans the whole upload once *per
    /// shard*, which is pure overhead when the merge runs on one thread. This is the
    /// inline fallback path of the fleet's sharded invariant store. Does not touch
    /// learning counters (same contract as [`InvariantDatabase::merge_filtered`]).
    pub fn merge_into_shards(shards: &mut [InvariantDatabase], other: &InvariantDatabase) {
        Self::merge_into_shards_observed(shards, other, |_, _| {});
    }

    /// [`InvariantDatabase::merge_into_shards`] with change observation:
    /// `on_change(shard, addr)` fires for every entry the merge actually modified,
    /// already routed to its owning shard.
    pub fn merge_into_shards_observed(
        shards: &mut [InvariantDatabase],
        other: &InvariantDatabase,
        mut on_change: impl FnMut(usize, Addr),
    ) {
        assert!(!shards.is_empty(), "must have at least one shard");
        for (addr, invs) in &other.by_addr {
            let shard = Self::shard_of(*addr, shards.len());
            if shards[shard].merge_addr(*addr, invs) {
                on_change(shard, *addr);
            }
        }
    }

    /// Add `other`'s run counters (events processed, runs committed/discarded) to this
    /// database's counters without touching any invariants. The complement of
    /// [`InvariantDatabase::merge_filtered`] when a merge is split across shards.
    pub fn absorb_run_stats(&mut self, other: &LearningStats) {
        self.stats.events_processed += other.events_processed;
        self.stats.runs_committed += other.runs_committed;
        self.stats.runs_discarded += other.runs_discarded;
    }

    /// The shard (of `shard_count`) that owns check address `addr`.
    ///
    /// Delegates to [`ShardRouter`](crate::ShardRouter) — the one shard-routing
    /// implementation the sharded store, the manager plane, and the snapshot/delta
    /// persistence plane all share, so a shard-count or hash change cannot desync
    /// snapshots from the live store.
    pub fn shard_of(addr: Addr, shard_count: usize) -> usize {
        crate::ShardRouter::route(addr, shard_count)
    }

    /// Split this database into `shard_count` disjoint databases partitioned by
    /// [`InvariantDatabase::shard_of`]. The run counters are carried on shard 0 so
    /// that [`InvariantDatabase::fuse`] restores them; per-kind counters are recounted
    /// per shard.
    pub fn split(self, shard_count: usize) -> Vec<InvariantDatabase> {
        assert!(shard_count > 0, "shard_count must be positive");
        let mut shards = vec![InvariantDatabase::new(); shard_count];
        for (addr, invs) in self.by_addr {
            shards[Self::shard_of(addr, shard_count)]
                .by_addr
                .insert(addr, invs);
        }
        shards[0].absorb_run_stats(&self.stats);
        for shard in &mut shards {
            shard.recount();
        }
        shards
    }

    /// Reassemble a database from disjoint shards (the inverse of
    /// [`InvariantDatabase::split`]). Run counters are summed; per-kind counters are
    /// recounted. Panics if two shards carry invariants for the same address.
    pub fn fuse(shards: impl IntoIterator<Item = InvariantDatabase>) -> InvariantDatabase {
        let mut fused = InvariantDatabase::new();
        for shard in shards {
            fused.absorb_run_stats(&shard.stats);
            for (addr, invs) in shard.by_addr {
                let previous = fused.by_addr.insert(addr, invs);
                assert!(previous.is_none(), "shards overlap at address 0x{addr:x}");
            }
        }
        fused.recount();
        fused
    }

    /// Recompute the per-kind invariant counters from the stored invariants.
    pub fn recount(&mut self) {
        let (mut one_of, mut lower_bound, mut less_than, mut sp_offset) = (0u64, 0u64, 0u64, 0u64);
        for inv in self.iter() {
            match inv {
                Invariant::OneOf { .. } => one_of += 1,
                Invariant::LowerBound { .. } => lower_bound += 1,
                Invariant::LessThan { .. } => less_than += 1,
                Invariant::StackPointerOffset { .. } => sp_offset += 1,
            }
        }
        self.stats.one_of = one_of;
        self.stats.lower_bound = lower_bound;
        self.stats.less_than = less_than;
        self.stats.sp_offset = sp_offset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::{Operand, Reg};

    fn var(addr: Addr) -> Variable {
        Variable::read(addr, 0, Operand::Reg(Reg::Ecx))
    }

    fn one_of(addr: Addr, values: &[u32]) -> Invariant {
        Invariant::OneOf {
            var: var(addr),
            values: values.iter().copied().collect(),
        }
    }

    #[test]
    fn insert_and_lookup_by_check_addr() {
        let mut db = InvariantDatabase::new();
        db.insert(one_of(0x1000, &[1, 2]));
        db.insert(Invariant::LowerBound {
            var: var(0x1000),
            min: 0,
        });
        db.insert(Invariant::LowerBound {
            var: var(0x2000),
            min: 5,
        });
        assert_eq!(db.len(), 3);
        assert_eq!(db.invariants_at(0x1000).len(), 2);
        assert_eq!(db.invariants_at(0x2000).len(), 1);
        assert!(db.invariants_at(0x3000).is_empty());
        assert_eq!(db.addrs().count(), 2);
    }

    #[test]
    fn merge_unions_one_of_values() {
        let mut a = InvariantDatabase::new();
        a.insert(one_of(0x1000, &[1, 2]));
        let mut b = InvariantDatabase::new();
        b.insert(one_of(0x1000, &[2, 3]));
        a.merge(&b);
        assert_eq!(a.len(), 1);
        match &a.invariants_at(0x1000)[0] {
            Invariant::OneOf { values, .. } => {
                assert_eq!(values.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3])
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn merge_drops_one_of_that_grows_past_the_limit() {
        let mut a = InvariantDatabase::new();
        a.insert(one_of(0x1000, &[1, 2, 3]));
        let mut b = InvariantDatabase::new();
        b.insert(one_of(0x1000, &[4, 5, 6]));
        a.merge(&b);
        assert!(a.invariants_at(0x1000).is_empty());
    }

    #[test]
    fn merge_takes_minimum_lower_bound() {
        let mut a = InvariantDatabase::new();
        a.insert(Invariant::LowerBound {
            var: var(0x1000),
            min: 3,
        });
        let mut b = InvariantDatabase::new();
        b.insert(Invariant::LowerBound {
            var: var(0x1000),
            min: -1,
        });
        a.merge(&b);
        match &a.invariants_at(0x1000)[0] {
            Invariant::LowerBound { min, .. } => assert_eq!(*min, -1),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn merge_keeps_invariants_only_one_member_observed() {
        let mut a = InvariantDatabase::new();
        a.insert(one_of(0x1000, &[1]));
        let mut b = InvariantDatabase::new();
        b.insert(one_of(0x2000, &[7]));
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn merge_drops_conflicting_sp_offsets() {
        let mut a = InvariantDatabase::new();
        a.insert(Invariant::StackPointerOffset {
            proc_entry: 0x1000,
            at: 0x1004,
            offset: 2,
        });
        let mut b = InvariantDatabase::new();
        b.insert(Invariant::StackPointerOffset {
            proc_entry: 0x1000,
            at: 0x1004,
            offset: 3,
        });
        a.merge(&b);
        assert!(a.invariants_at(0x1004).is_empty());
        assert_eq!(a.sp_offset(0x1000, 0x1004), None);
    }

    #[test]
    fn sp_offset_lookup() {
        let mut db = InvariantDatabase::new();
        db.insert(Invariant::StackPointerOffset {
            proc_entry: 0x1000,
            at: 0x1010,
            offset: 4,
        });
        assert_eq!(db.sp_offset(0x1000, 0x1010), Some(4));
        assert_eq!(db.sp_offset(0x2000, 0x1010), None);
    }

    #[test]
    fn shard_of_spreads_consecutive_code_addresses() {
        // Power-of-two shard counts are the shipped defaults; the hash must not
        // degenerate to `addr % shard_count` there.
        for shard_count in [4usize, 8, 16] {
            let mut hit = vec![false; shard_count];
            for addr in (0x40000u32..0x40400).step_by(4) {
                hit[InvariantDatabase::shard_of(addr, shard_count)] = true;
            }
            assert!(
                hit.iter().all(|h| *h),
                "stride-4 addresses must reach all {shard_count} shards"
            );
        }
    }

    #[test]
    fn split_and_fuse_round_trip() {
        let mut db = InvariantDatabase::new();
        for addr in (0x1000u32..0x1100).step_by(4) {
            db.insert(one_of(addr, &[1, 2]));
            db.insert(Invariant::LowerBound {
                var: var(addr),
                min: addr as i64 as i32,
            });
        }
        db.stats.events_processed = 77;
        db.stats.runs_committed = 9;
        db.recount();

        let shards = db.clone().split(7);
        assert_eq!(shards.len(), 7);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), db.len());
        // Every shard holds only addresses it owns.
        for (i, shard) in shards.iter().enumerate() {
            for addr in shard.addrs() {
                assert_eq!(InvariantDatabase::shard_of(addr, 7), i);
            }
        }
        let fused = InvariantDatabase::fuse(shards);
        assert_eq!(fused, db);
    }

    #[test]
    fn filtered_merges_over_a_partition_match_a_full_merge() {
        let mut uploads = Vec::new();
        for member in 0u32..4 {
            let mut up = InvariantDatabase::new();
            for k in 0u32..40 {
                let addr = 0x2000 + (k * 8) % 96;
                up.insert(one_of(addr, &[member + k, k % 5]));
                up.insert(Invariant::LowerBound {
                    var: var(addr),
                    min: (member * k) as i32 - 3,
                });
            }
            up.stats.events_processed = 100 + member as u64;
            up.stats.runs_committed = member as u64;
            up.recount();
            uploads.push(up);
        }

        // Sequential reference: one monolithic merge per upload.
        let mut sequential = InvariantDatabase::new();
        for up in &uploads {
            sequential.merge(up);
        }

        // Sharded: each shard merges every upload restricted to its addresses, then
        // run counters are absorbed once per upload and the shards are fused.
        const SHARDS: usize = 5;
        let mut shards = vec![InvariantDatabase::new(); SHARDS];
        for (i, shard) in shards.iter_mut().enumerate() {
            for up in &uploads {
                shard.merge_filtered(up, |addr| InvariantDatabase::shard_of(addr, SHARDS) == i);
            }
        }
        let mut fused = InvariantDatabase::fuse(shards);
        for up in &uploads {
            fused.absorb_run_stats(&up.stats);
        }
        fused.recount();
        assert_eq!(fused, sequential);
    }

    #[test]
    fn observed_merges_report_only_real_changes() {
        let mut db = InvariantDatabase::new();
        db.insert(one_of(0x1000, &[1, 2]));
        db.insert(Invariant::LowerBound {
            var: var(0x2000),
            min: -5,
        });

        // Same one-of values, weaker lower bound: nothing changes.
        let mut same = InvariantDatabase::new();
        same.insert(one_of(0x1000, &[2, 1]));
        same.insert(Invariant::LowerBound {
            var: var(0x2000),
            min: 0,
        });
        let mut changed = Vec::new();
        db.merge_filtered_observed(&same, |_| true, |addr| changed.push(addr));
        assert!(changed.is_empty(), "no-op merge must not report changes");

        // New value at 0x1000, lower bound moves at 0x2000, new addr 0x3000.
        let mut moves = InvariantDatabase::new();
        moves.insert(one_of(0x1000, &[3]));
        moves.insert(Invariant::LowerBound {
            var: var(0x2000),
            min: -9,
        });
        moves.insert(one_of(0x3000, &[7]));
        db.merge_filtered_observed(&moves, |_| true, |addr| changed.push(addr));
        assert_eq!(changed, vec![0x1000, 0x2000, 0x3000]);
    }

    #[test]
    fn merges_never_leave_empty_entries_behind() {
        let mut a = InvariantDatabase::new();
        a.insert(one_of(0x1000, &[1, 2, 3]));
        let mut b = InvariantDatabase::new();
        b.insert(one_of(0x1000, &[4, 5, 6]));
        let mut changed = Vec::new();
        a.merge_filtered_observed(&b, |_| true, |addr| changed.push(addr));
        // The overflowing one-of was dropped; the emptied entry must vanish from
        // the map (presence means "carries invariants"), and the drop is a change.
        assert_eq!(changed, vec![0x1000]);
        assert_eq!(a.entry(0x1000), None);
        assert_eq!(a.addrs().count(), 0);
    }

    #[test]
    fn sharded_observed_merge_routes_change_reports() {
        let mut shards = vec![InvariantDatabase::new(); 4];
        let mut upload = InvariantDatabase::new();
        for addr in (0x1000u32..0x1040).step_by(4) {
            upload.insert(one_of(addr, &[1]));
        }
        let mut reported = Vec::new();
        InvariantDatabase::merge_into_shards_observed(&mut shards, &upload, |s, a| {
            reported.push((s, a))
        });
        assert_eq!(reported.len(), 16);
        for (shard, addr) in reported {
            assert_eq!(InvariantDatabase::shard_of(addr, 4), shard);
        }
    }

    #[test]
    fn recount_tracks_kinds() {
        let mut db = InvariantDatabase::new();
        db.insert(one_of(0x1000, &[1]));
        db.insert(Invariant::LowerBound {
            var: var(0x1001),
            min: 0,
        });
        db.insert(Invariant::LessThan {
            a: var(0x1002),
            b: var(0x1003),
        });
        db.recount();
        assert_eq!(db.stats.one_of, 1);
        assert_eq!(db.stats.lower_bound, 1);
        assert_eq!(db.stats.less_than, 1);
        assert_eq!(db.stats.total_invariants(), 3);
    }
}
