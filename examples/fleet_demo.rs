//! Community-scale immunity (Section 3 at fleet scale): a 1,200-member fleet learns
//! in parallel, five members are attacked, and every member — including the 1,195
//! that never saw the exploit — becomes immune via the distributed patch.
//!
//! Run with: `cargo run --release --example fleet_demo`

use clearview::apps::{evaluation_suite, learning_suite, red_team_exploits, Browser};
use clearview::core::ClearViewConfig;
use clearview::fleet::{Fleet, FleetConfig, Presentation};

const NODES: usize = 1_200;
const ATTACKERS: [usize; 5] = [3, 271, 502, 777, 1_111];

fn main() {
    let browser = Browser::build();
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(NODES),
    );
    println!(
        "fleet of {} members across {} workers",
        fleet.node_count(),
        fleet.worker_count()
    );

    // Amortized parallel learning: members trace disjoint shares, shard workers merge
    // the uploads in parallel.
    fleet.distributed_learning(&learning_suite());
    println!(
        "distributed learning merged {} invariants into {} shards",
        fleet.model().invariants.len(),
        fleet.shard_count()
    );

    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");

    // Benign background traffic plus the attackers hammering the same exploit.
    let benign = evaluation_suite();
    for round in 1..=10u64 {
        let mut batch: Vec<Presentation> = ATTACKERS
            .iter()
            .map(|&node| Presentation::new(node, exploit.page()))
            .collect();
        for (i, page) in benign.iter().take(40).enumerate() {
            batch.push(Presentation::new(
                (round as usize * 53 + i * 13) % NODES,
                page.clone(),
            ));
        }
        let outcome = fleet.run_epoch(&batch);
        println!(
            "epoch {round}: {} presentations, {} blocked, {} completed — phase {:?}",
            outcome.outcomes.len(),
            outcome.blocked(),
            outcome.completed(),
            fleet.phase_of(location)
        );
        if fleet.is_protected_against(location) && outcome.blocked() == 0 {
            break;
        }
    }
    assert!(
        fleet.is_protected_against(location),
        "fleet failed to immunize: {:?}",
        fleet.phase_of(location)
    );

    // Every member survives its first exposure.
    let verify: Vec<Presentation> = (0..NODES)
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    println!(
        "verification epoch: {}/{} members survive the exploit (unexposed members immune)",
        outcome.completed(),
        NODES
    );
    assert_eq!(outcome.completed(), NODES);

    println!("\n{}", fleet.metrics());
    println!(
        "wire traffic: {} words batched vs {} words per-event ({}x saved)",
        fleet.log().batched_wire_words(),
        fleet.log().unbatched_wire_words(),
        fleet.log().unbatched_wire_words() / fleet.log().batched_wire_words().max(1)
    );
    for report in fleet.reports() {
        println!("\n{report}");
    }
}
