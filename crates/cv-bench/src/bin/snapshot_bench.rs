//! Snapshot-plane benchmark: encode/decode throughput of the columnar snapshot
//! format across invariant-database sizes, snapshot size per invariant, delta-sync
//! savings, cold-vs-warm time-to-immunity (how many epochs a process needs to
//! reach Protected starting from nothing vs. from a checkpoint), and the
//! delta-cut comparison: the O(database) materialized diff vs. the O(changed)
//! incremental cut from the dirty-epoch plane.
//!
//! Run with: `cargo run --release -p cv-bench --bin snapshot_bench [-- --json] [-- --rounds N]`
//!
//! Options:
//!   --json      also write a `BENCH_snapshot.json` record
//!   --rounds N  repeat each codec measurement N times (default 1; each round
//!               still averages over the inner `CODEC_ROUNDS` iterations). The
//!               flat `encode_mb_s`/`decode_mb_s` row values become medians and
//!               the record gains a `"spread"` object with per-size
//!               median/min/max/MAD/IQR stats — the shape `perf_gate` ingests.

use cv_apps::{learning_suite, red_team_exploits, Browser};
use cv_bench::print_table;
use cv_core::{ClearViewConfig, PatchPlan};
use cv_fleet::{DeltaSnapshot, Fleet, FleetConfig, Presentation, ShardedInvariantStore, Snapshot};
use cv_inference::{Invariant, InvariantDatabase, Variable};
use cv_isa::{Operand, Reg};
use cv_perf::MetricStats;
use cv_store::DeltaBuilder;
use std::time::Instant;

const CODEC_ROUNDS: u32 = 10;
const DELTA_ROUNDS: u32 = 20;
/// Entries mutated between base and target in the delta-cut benchmark — held
/// constant across database sizes so the incremental column isolates O(changed).
const DELTA_CHANGED: usize = 128;
const NODES: usize = 64;

/// A deterministic synthetic database with roughly `target` invariants, shaped
/// like learned state: per address, a one-of, a lower-bound, a less-than against
/// the previous site, and periodic sp-offsets.
fn synthetic_db(target: usize) -> InvariantDatabase {
    let mut db = InvariantDatabase::new();
    let mut addr = 0x4_0000u32;
    let mut prev: Option<Variable> = None;
    let mut count = 0usize;
    while count < target {
        let var = Variable::read(addr, 0, Operand::Reg(Reg::ALL[(addr as usize / 4) % 8]));
        db.insert(Invariant::OneOf {
            var,
            values: [addr ^ 0x1111, addr ^ 0x2222, addr ^ 0x3333]
                .into_iter()
                .collect(),
        });
        db.insert(Invariant::LowerBound {
            var,
            min: -(addr as i32 % 97),
        });
        count += 2;
        if let Some(prev) = prev {
            db.insert(Invariant::LessThan { a: prev, b: var });
            count += 1;
        }
        if addr.is_multiple_of(64) {
            db.insert(Invariant::StackPointerOffset {
                proc_entry: addr & !0xFF,
                at: addr,
                offset: (addr % 16) as i32,
            });
            count += 1;
        }
        prev = Some(var);
        addr += 4;
    }
    db.stats.events_processed = count as u64 * 100;
    db.stats.runs_committed = 64;
    db.recount();
    db
}

/// Untimed warmup passes per codec direction.
const CODEC_WARMUPS: u32 = 2;

struct CodecRow {
    invariants: usize,
    bytes: usize,
    encode: MetricStats,
    decode: MetricStats,
}

fn codec_throughput(invariants: usize, rounds: usize) -> CodecRow {
    let snap = Snapshot {
        epoch: 1,
        shard_count: 8,
        invariants: synthetic_db(invariants),
        procedures: (0..64).map(|k| 0x4_0000 + k * 0x100).collect(),
        plan: cv_core::PatchPlan::new(),
    };
    let bytes = snap.encode();

    // Untimed warmup rounds per direction: allocator and cache state
    // otherwise dominate the smallest row and make the CI bench gate flaky
    // (same reasoning as fleet_scale's merge warmups).
    for _ in 0..CODEC_WARMUPS {
        std::hint::black_box(snap.encode());
        std::hint::black_box(Snapshot::decode(&bytes).expect("decodes"));
    }

    // One MB/s sample per round, each averaged over the CODEC_ROUNDS inner
    // iterations; the spread across rounds is what perf_gate reasons about.
    let mb = bytes.len() as f64 / (1024.0 * 1024.0);
    let mut encode_samples = Vec::with_capacity(rounds);
    let mut decode_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..CODEC_ROUNDS {
            std::hint::black_box(snap.encode());
        }
        let encode_secs = start.elapsed().as_secs_f64() / CODEC_ROUNDS as f64;
        encode_samples.push(mb / encode_secs);

        let start = Instant::now();
        for _ in 0..CODEC_ROUNDS {
            std::hint::black_box(Snapshot::decode(&bytes).expect("decodes"));
        }
        let decode_secs = start.elapsed().as_secs_f64() / CODEC_ROUNDS as f64;
        decode_samples.push(mb / decode_secs);
    }

    CodecRow {
        invariants: snap.invariants.len(),
        bytes: bytes.len(),
        encode: MetricStats::from_samples(&encode_samples),
        decode: MetricStats::from_samples(&decode_samples),
    }
}

struct DeltaCutRow {
    invariants: usize,
    changed: usize,
    removed: usize,
    diff_us: f64,
    incremental_us: f64,
}

/// Measure cutting a delta over a `target`-invariant store after a fixed-size
/// mutation wave: the materialized `DeltaSnapshot::diff` (O(database), and the
/// target snapshot it needs is generously pre-materialized outside the timer)
/// vs. the dirty-epoch `DeltaBuilder` cut (O(changed); the timer includes the
/// `dirty_since` query — the whole real path). Byte-identity of the two is
/// asserted every round, so this bench doubles as a release-mode regression
/// check.
fn delta_cut(target_invariants: usize) -> DeltaCutRow {
    let mut store = ShardedInvariantStore::new(8);
    store.begin_epoch(1);
    store.merge_uploads(&[synthetic_db(target_invariants)]);
    // The base checkpoint is cut in epoch 2, *after* the bulk load's epoch closed:
    // dirty_since(2) excludes the load and tracks only the wave below.
    store.begin_epoch(2);
    let base = Snapshot {
        epoch: 2,
        shard_count: store.shard_count() as u32,
        invariants: store.snapshot(),
        procedures: Vec::new(),
        plan: PatchPlan::new(),
    };

    // The mutation wave: every 0x20-stride address gets a moved lower bound (the
    // re-merge changes DELTA_CHANGED/2 existing entries and adds DELTA_CHANGED/2
    // past the end of the loaded range).
    store.begin_epoch(3);
    let mut wave = InvariantDatabase::new();
    for k in 0..DELTA_CHANGED as u32 {
        let addr = 0x4_0000 + k * 0x20;
        wave.insert(Invariant::LowerBound {
            var: Variable::read(addr, 0, Operand::Reg(Reg::ALL[(addr as usize / 4) % 8])),
            min: -1_000_000 - k as i32,
        });
    }
    wave.recount();
    store.merge_uploads(&[wave]);

    let fused = store.snapshot();
    let target = Snapshot {
        epoch: 3,
        shard_count: store.shard_count() as u32,
        invariants: fused.clone(),
        procedures: Vec::new(),
        plan: PatchPlan::new(),
    };

    let start = Instant::now();
    for _ in 0..DELTA_ROUNDS {
        std::hint::black_box(DeltaSnapshot::diff(&base, &target));
    }
    let diff_us = start.elapsed().as_secs_f64() * 1e6 / DELTA_ROUNDS as f64;

    let start = Instant::now();
    for _ in 0..DELTA_ROUNDS {
        let dirty = store.dirty_since(base.epoch).expect("base is covered");
        std::hint::black_box(DeltaBuilder::new(&base, &dirty).cut(3, &fused, PatchPlan::new()));
    }
    let incremental_us = start.elapsed().as_secs_f64() * 1e6 / DELTA_ROUNDS as f64;

    let dirty = store.dirty_since(base.epoch).expect("base is covered");
    let incremental = DeltaBuilder::new(&base, &dirty).cut(3, &fused, PatchPlan::new());
    let diffed = DeltaSnapshot::diff(&base, &target);
    assert_eq!(
        incremental.encode(),
        diffed.encode(),
        "incremental delta must be byte-identical to the diff-based one"
    );

    DeltaCutRow {
        invariants: fused.len(),
        changed: incremental.changed_entries(),
        removed: incremental.removed.len(),
        diff_us,
        incremental_us,
    }
}

struct WarmStartRun {
    cold_epochs: u64,
    warm_epochs: u64,
    snapshot_bytes: u64,
    delta_bytes: u64,
    full_bytes: u64,
}

/// Cold: a fresh fleet learns and responds from scratch — epochs of exploit
/// presentations until Protected. Warm: a fleet restored from the cold fleet's
/// checkpoint — Protected before its first epoch (0 epochs), verified by first
/// exposure surviving.
fn warm_start() -> WarmStartRun {
    let browser = Browser::build();
    let config = ClearViewConfig::default();
    let mut cold = Fleet::new(browser.image.clone(), config, FleetConfig::new(NODES));
    cold.distributed_learning(&learning_suite());

    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");

    let base = cold.checkpoint();
    let mut cold_epochs = 0;
    for _ in 0..20 {
        cold.run_epoch(&[Presentation::new(0, exploit.page())]);
        cold_epochs += 1;
        if cold.is_protected_against(location) {
            break;
        }
    }
    assert!(cold.is_protected_against(location));

    let snapshot = cold.checkpoint();
    let snapshot_bytes = snapshot.encode().len() as u64;
    let delta = DeltaSnapshot::diff(&base, &snapshot);
    let delta_bytes = delta.encode().len() as u64;

    let mut warm = Fleet::from_snapshot(
        browser.image.clone(),
        config,
        FleetConfig::new(NODES),
        &snapshot,
    );
    // This bin is CI's snapshot-plane regression watch: a restore that is not
    // Protected must fail the job, not record a sentinel and exit green.
    assert!(
        warm.is_protected_against(location),
        "restored fleet must be Protected before its first epoch"
    );
    let warm_epochs = 0u64;
    // First exposure on a member that never saw the exploit in this process.
    let outcome = warm.run_epoch(&[Presentation::new(NODES - 1, exploit.page())]);
    assert_eq!(
        outcome.completed(),
        1,
        "warm member survives first exposure"
    );

    WarmStartRun {
        cold_epochs,
        warm_epochs,
        snapshot_bytes,
        delta_bytes,
        full_bytes: snapshot_bytes,
    }
}

fn main() {
    let mut json = false;
    let mut rounds = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| panic!("--rounds requires a numeric argument"))
                    .max(1)
            }
            other => panic!("unknown option {other}"),
        }
    }

    let rows: Vec<CodecRow> = [1_000usize, 10_000, 50_000]
        .into_iter()
        .map(|size| codec_throughput(size, rounds))
        .collect();
    print_table(
        &format!("Snapshot codec throughput ({CODEC_ROUNDS} rounds)"),
        &[
            "invariants",
            "snapshot bytes",
            "bytes/invariant",
            "encode MB/s",
            "decode MB/s",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.invariants.to_string(),
                    r.bytes.to_string(),
                    format!("{:.1}", r.bytes as f64 / r.invariants as f64),
                    format!("{:.1}", r.encode.median),
                    format!("{:.1}", r.decode.median),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let delta_rows: Vec<DeltaCutRow> = [1_000usize, 10_000, 50_000]
        .into_iter()
        .map(delta_cut)
        .collect();
    print_table(
        &format!(
            "Delta cut: materialized diff vs. dirty-epoch incremental ({DELTA_ROUNDS} rounds, ~{DELTA_CHANGED} entries changed)"
        ),
        &[
            "invariants",
            "changed entries",
            "diff µs (O(db))",
            "incremental µs (O(changed))",
            "speedup",
        ],
        &delta_rows
            .iter()
            .map(|r| {
                vec![
                    r.invariants.to_string(),
                    format!("{} (+{} removed)", r.changed, r.removed),
                    format!("{:.1}", r.diff_us),
                    format!("{:.1}", r.incremental_us),
                    format!("{:.1}x", r.diff_us / r.incremental_us.max(0.001)),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let run = warm_start();
    print_table(
        &format!("Cold vs. warm start ({NODES} members, exploit 290162)"),
        &["start", "epochs to Protected", "state transferred"],
        &[
            vec![
                "cold (learn + respond)".into(),
                run.cold_epochs.to_string(),
                "0 bytes (relearns everything)".into(),
            ],
            vec![
                "warm (from snapshot)".into(),
                run.warm_epochs.to_string(),
                format!("{} bytes (one snapshot)", run.snapshot_bytes),
            ],
            vec![
                "delta resync".into(),
                run.warm_epochs.to_string(),
                format!(
                    "{} bytes ({:.1}x less than full)",
                    run.delta_bytes,
                    run.full_bytes as f64 / run.delta_bytes.max(1) as f64
                ),
            ],
        ],
    );

    if json {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let codec_rows: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{ \"invariants\": {}, \"bytes\": {}, \"encode_mb_s\": {:.2}, \"decode_mb_s\": {:.2} }}",
                    r.invariants, r.bytes, r.encode.median, r.decode.median
                )
            })
            .collect();
        // Spread keys are unique per database size (the codec rows repeat the
        // same key names row to row): encode_mb_s_1k … decode_mb_s_50k.
        let spread_entries: Vec<String> = rows
            .iter()
            .map(|r| {
                let suffix = match r.invariants {
                    n if n < 10_000 => "1k",
                    n if n < 50_000 => "10k",
                    _ => "50k",
                };
                format!(
                    "    \"encode_mb_s_{suffix}\": {},\n    \"decode_mb_s_{suffix}\": {}",
                    r.encode.to_json(),
                    r.decode.to_json()
                )
            })
            .collect();
        let delta_cut_rows: Vec<String> = delta_rows
            .iter()
            .map(|r| {
                format!(
                    "{{ \"invariants\": {}, \"changed\": {}, \"diff_us\": {:.1}, \"incremental_us\": {:.1} }}",
                    r.invariants, r.changed, r.diff_us, r.incremental_us
                )
            })
            .collect();
        let out = format!(
            "{{\n  \"bench\": \"snapshot\",\n  \"format_version\": {},\n  \"cores\": {cores},\n  \"rounds\": {rounds},\n  \"warmups\": {CODEC_WARMUPS},\n  \"codec\": [\n    {}\n  ],\n  \"delta_cut\": [\n    {}\n  ],\n  \"cold_epochs_to_protected\": {},\n  \"warm_epochs_to_protected\": {},\n  \"snapshot_bytes\": {},\n  \"delta_bytes\": {},\n  \"delta_savings\": {:.2},\n  \"spread\": {{\n{}\n  }}\n}}\n",
            cv_store::FORMAT_VERSION,
            codec_rows.join(",\n    "),
            delta_cut_rows.join(",\n    "),
            run.cold_epochs,
            run.warm_epochs,
            run.snapshot_bytes,
            run.delta_bytes,
            run.full_bytes as f64 / run.delta_bytes.max(1) as f64,
            spread_entries.join(",\n"),
        );
        std::fs::write("BENCH_snapshot.json", &out).expect("write BENCH_snapshot.json");
        println!("\nwrote BENCH_snapshot.json:\n{out}");
    }
}
