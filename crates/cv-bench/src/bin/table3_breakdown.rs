//! Regenerates Table 3 (Section 4.4.4): the per-exploit breakdown of the time ClearView
//! needs to generate a successful repair, from the first detection replay through
//! building and installing invariant checks, the checked replays, building and
//! installing repair patches, unsuccessful repair runs, and the successful repair run.
//!
//! Simulated seconds come from the pipeline's phase accounting; the exploit for which
//! no successful patch exists (307259) is reported the way the paper marks it with `!`.

use cv_bench::{print_table, run_red_team};

fn main() {
    let runs = run_red_team(true);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for run in &runs {
        if run.timelines.is_empty() {
            continue;
        }
        // Exploit 311710 has one timeline per repaired defect (311710a/b/c in the paper).
        let multi = run.timelines.len() > 1;
        for (i, t) in run.timelines.iter().enumerate() {
            let name = if multi {
                format!("{}{}", run.exploit.bugzilla, (b'a' + i as u8) as char)
            } else if run.presentations.is_none() {
                format!("!{}", run.exploit.bugzilla)
            } else {
                run.exploit.bugzilla.to_string()
            };
            rows.push(vec![
                name,
                format!("{:.2}", t.detection_run_seconds),
                format!(
                    "{:.2} {}",
                    t.check_build_seconds,
                    t.check_counts.annotation()
                ),
                format!("{:.2}", t.check_install_seconds),
                format!(
                    "{:.2} ({}/{})",
                    t.check_run_seconds, t.check_violations, t.check_executions
                ),
                format!(
                    "{:.2} {}",
                    t.repair_build_seconds,
                    t.repair_counts.annotation()
                ),
                format!("{:.2}", t.repair_install_seconds),
                if t.unsuccessful_repair_runs > 0 {
                    format!(
                        "{:.2} ({})",
                        t.unsuccessful_repair_seconds, t.unsuccessful_repair_runs
                    )
                } else {
                    "-".to_string()
                },
                format!("{:.2}", t.successful_repair_seconds),
                format!("{:.2}", t.total_seconds()),
            ]);
        }
    }
    print_table(
        "Table 3 — attack processing time breakdown (simulated seconds)",
        &[
            "Bugzilla",
            "Detect runs",
            "Build checks [1of,lb,lt]",
            "Install checks",
            "Check runs (viol/exec)",
            "Build repairs [1of,lb,lt]",
            "Install repairs",
            "Unsuccessful runs",
            "Successful run",
            "Total",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: per-exploit totals of 141–475 simulated seconds for patched exploits,\n\
         dominated by application restarts / code-cache warm-up; 307259 (marked !) never obtains a\n\
         successful patch. The shape to compare is the per-phase proportions, not absolute numbers."
    );
}
