//! The transport boundary: how coordinator↔member traffic actually travels.
//!
//! Everything a [`Fleet`](crate::Fleet) exchanges with its members —
//! presentations, invariant uploads, patch pushes, bootstrap snapshots, delta
//! syncs, acks — is an [`Envelope`] (the `cv-store` versioned wire format) sent
//! through a [`Transport`]. Three backends ship:
//!
//! * [`InProcessTransport`] — per-peer FIFO queues; no serialization, an
//!   envelope fans out by `Arc` refcount. The default, byte-identical to the
//!   pre-transport fleet.
//! * [`SocketTransport`] — a loopback TCP pair; every envelope is encoded,
//!   length-framed, crosses a real kernel socket, and is decoded on the other
//!   side. Lossless and ordered, so a fleet on it writes the same
//!   [`BatchLog`](crate::BatchLog) as the in-process path (the determinism CI
//!   job diffs the two).
//! * [`ChaosTransport`] — wraps another backend and, from a seeded
//!   deterministic RNG, drops, duplicates, and delays (hence reorders)
//!   envelopes, and drops everything crossing a partition boundary set through
//!   [`ChaosControls`]. Same seed, same faults — chaos runs are reproducible.
//!
//! Delivery is made reliable *above* the transport: receivers deduplicate by
//! `(to, from, epoch, seq)` ([`DedupeWindow`]) so retransmits and duplicates
//! are no-ops, and senders retransmit unacked envelopes with capped exponential
//! backoff. [`SequencedApplier`] is the executable model of that application
//! layer — any permutation-with-duplicates of an envelope stream folds to the
//! same invariant database and net patch plan as in-order exactly-once
//! delivery (proven by proptest in `tests/transport_stream.rs`).

use crate::shard::ShardedInvariantStore;
use cv_core::{NetPatchState, PatchPlan};
use cv_inference::InvariantDatabase;
use cv_store::{Envelope, EnvelopePayload};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// A transport endpoint: a member's node id, or [`COORDINATOR`].
pub type PeerId = u32;

/// The coordinator's peer id (members are their node ids; node ids never reach
/// `u32::MAX` — the engine would exhaust memory long before).
pub const COORDINATOR: PeerId = u32::MAX;

/// Deepest tier a coordinator peer id can name: ids in
/// `(COORDINATOR - MAX_TIER_PEERS) ..= COORDINATOR` are reserved for the
/// coordinator side of the tree (the root plus up to 64 tiers of intermediate
/// coordinators), far above any member node id.
pub const MAX_TIER_PEERS: u32 = 64;

/// The peer id of the tier-`tier` coordinator endpoint (tier 1 = directly
/// under the root). `tier_peer(0)` is the root itself, [`COORDINATOR`].
pub fn tier_peer(tier: u32) -> PeerId {
    debug_assert!(
        tier <= MAX_TIER_PEERS,
        "tier {tier} beyond the reserved id range"
    );
    COORDINATOR - tier
}

/// True when `peer` is a coordinator-side endpoint (the root or a tier
/// coordinator) rather than a member node.
pub fn is_coordinator_side(peer: PeerId) -> bool {
    peer >= COORDINATOR - MAX_TIER_PEERS
}

/// Cumulative delivery accounting a transport reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Envelopes handed to `send` (chaos counts the originals, not the copies).
    pub sent: u64,
    /// Envelopes handed back out of `recv`.
    pub delivered: u64,
    /// Envelopes the chaos plane dropped outright.
    pub dropped: u64,
    /// Envelopes the chaos plane queued twice.
    pub duplicated: u64,
    /// Envelopes dropped because an endpoint was partitioned.
    pub partition_dropped: u64,
}

impl TransportStats {
    /// The counters accumulated since `base` (both read from the same
    /// transport, `base` earlier).
    pub fn since(&self, base: &TransportStats) -> TransportStats {
        TransportStats {
            sent: self.sent - base.sent,
            delivered: self.delivered - base.delivered,
            dropped: self.dropped - base.dropped,
            duplicated: self.duplicated - base.duplicated,
            partition_dropped: self.partition_dropped - base.partition_dropped,
        }
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == TransportStats::default()
    }
}

/// Send/recv of [`Envelope`]s between the coordinator and the members.
///
/// Time is logical: [`Transport::tick`] advances delivery one step (releases
/// due delayed envelopes, pumps socket buffers). A lossless backend delivers
/// everything sent after [`Transport::flush_ticks`] ticks; a lossy one may
/// drop envelopes forever — reliability is the application layer's job.
pub trait Transport {
    /// Queue one envelope toward `envelope.to`.
    fn send(&mut self, envelope: Envelope);

    /// Advance logical time one step.
    fn tick(&mut self);

    /// Drain everything currently deliverable to `peer`.
    fn recv(&mut self, peer: PeerId) -> Vec<Envelope>;

    /// Backend name (for traces and bench records).
    fn name(&self) -> &'static str;

    /// True if this backend can drop envelopes or partition peers — the fleet
    /// then tracks per-member divergence and runs the resync plane.
    fn is_lossy(&self) -> bool {
        false
    }

    /// Ticks after which everything sent (and not lost) has been delivered.
    fn flush_ticks(&self) -> u32 {
        1
    }

    /// Cumulative delivery accounting.
    fn stats(&self) -> TransportStats;
}

// ---------------------------------------------------------------------------
// In-process backend
// ---------------------------------------------------------------------------

/// Per-peer FIFO queues in process memory: the seed's function-call exchange
/// expressed as a [`Transport`]. Nothing is serialized; large payloads move by
/// `Arc` refcount.
#[derive(Debug, Default)]
pub struct InProcessTransport {
    inboxes: BTreeMap<PeerId, VecDeque<Envelope>>,
    stats: TransportStats,
}

impl InProcessTransport {
    /// An empty transport.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for InProcessTransport {
    fn send(&mut self, envelope: Envelope) {
        self.stats.sent += 1;
        self.inboxes
            .entry(envelope.to)
            .or_default()
            .push_back(envelope);
    }

    fn tick(&mut self) {}

    fn recv(&mut self, peer: PeerId) -> Vec<Envelope> {
        match self.inboxes.get_mut(&peer) {
            Some(queue) => {
                self.stats.delivered += queue.len() as u64;
                queue.drain(..).collect()
            }
            None => Vec::new(),
        }
    }

    fn name(&self) -> &'static str {
        "inprocess"
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Loopback-socket backend
// ---------------------------------------------------------------------------

/// An outgoing byte buffer with a read cursor (so flushing is O(written), not
/// O(buffer) per write call).
#[derive(Debug, Default)]
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
        if self.is_empty() {
            self.buf.clear();
            self.pos = 0;
        }
    }
}

/// A loopback TCP pair: the coordinator's end and the members' shared end.
/// Every envelope is encoded into the versioned `cv-store` container, framed
/// with a `u32` length, written through the kernel, read back on the other
/// end, and decoded into the per-peer inbox. Lossless and ordered — but the
/// bytes really do leave the process's address space.
#[derive(Debug)]
pub struct SocketTransport {
    /// The coordinator's socket (writes member-bound traffic, receives
    /// coordinator-bound traffic).
    coord_end: TcpStream,
    /// The members' shared socket (the simulation multiplexes every member
    /// onto one loopback connection; the multi-process backend is the
    /// ROADMAP follow-up).
    member_end: TcpStream,
    out_coord: OutBuf,
    out_member: OutBuf,
    in_coord: Vec<u8>,
    in_member: Vec<u8>,
    inboxes: BTreeMap<PeerId, VecDeque<Envelope>>,
    stats: TransportStats,
}

impl SocketTransport {
    /// Open a connected loopback pair.
    pub fn new() -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let member_end = TcpStream::connect(listener.local_addr()?)?;
        let (coord_end, _) = listener.accept()?;
        for stream in [&coord_end, &member_end] {
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true)?;
        }
        Ok(SocketTransport {
            coord_end,
            member_end,
            out_coord: OutBuf::default(),
            out_member: OutBuf::default(),
            in_coord: Vec::new(),
            in_member: Vec::new(),
            inboxes: BTreeMap::new(),
            stats: TransportStats::default(),
        })
    }

    /// Flush pending writes and drain readable bytes until quiescent: all
    /// queued frames written and every byte the kernel has for us parsed into
    /// inboxes. Loopback guarantees progress — a blocked write means the peer
    /// buffer holds data, which the same loop reads.
    fn pump(&mut self) {
        let mut idle_spins = 0u32;
        loop {
            let mut progress = false;
            progress |= flush_stream(&mut self.coord_end, &mut self.out_coord);
            progress |= flush_stream(&mut self.member_end, &mut self.out_member);
            progress |= drain_stream(&mut self.member_end, &mut self.in_member);
            progress |= drain_stream(&mut self.coord_end, &mut self.in_coord);
            progress |= parse_frames(&mut self.in_member, &mut self.inboxes, &mut self.stats);
            progress |= parse_frames(&mut self.in_coord, &mut self.inboxes, &mut self.stats);
            if progress {
                idle_spins = 0;
                continue;
            }
            if self.out_coord.is_empty() && self.out_member.is_empty() {
                break;
            }
            // Writes pending but nothing moved: let the kernel catch up.
            idle_spins += 1;
            assert!(
                idle_spins < 1_000_000,
                "socket transport made no progress with writes pending"
            );
            std::thread::yield_now();
        }
    }
}

/// Write as much of `out` as the socket accepts. Returns true on any progress.
fn flush_stream(stream: &mut TcpStream, out: &mut OutBuf) -> bool {
    let mut progress = false;
    while !out.is_empty() {
        match stream.write(out.pending()) {
            Ok(0) => panic!("loopback peer closed mid-write"),
            Ok(n) => {
                out.consume(n);
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("loopback write failed: {e}"),
        }
    }
    progress
}

/// Read everything currently available. Returns true on any progress.
fn drain_stream(stream: &mut TcpStream, into: &mut Vec<u8>) -> bool {
    let mut progress = false;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => panic!("loopback peer closed mid-read"),
            Ok(n) => {
                into.extend_from_slice(&chunk[..n]);
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("loopback read failed: {e}"),
        }
    }
    progress
}

/// Slice complete `u32`-length-framed envelopes off the front of `buf` into
/// the inboxes. A partial frame stays buffered for the next pump.
fn parse_frames(
    buf: &mut Vec<u8>,
    inboxes: &mut BTreeMap<PeerId, VecDeque<Envelope>>,
    stats: &mut TransportStats,
) -> bool {
    let mut consumed = 0usize;
    while buf.len() - consumed >= 4 {
        let header = &buf[consumed..consumed + 4];
        let frame_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if buf.len() - consumed - 4 < frame_len {
            break;
        }
        let frame = &buf[consumed + 4..consumed + 4 + frame_len];
        // A decode failure here is a transport bug (loopback TCP does not
        // corrupt), so it fails loudly instead of being dropped.
        let envelope = Envelope::decode(frame).expect("loopback frame must decode");
        stats.delivered += 1;
        inboxes.entry(envelope.to).or_default().push_back(envelope);
        consumed += 4 + frame_len;
    }
    if consumed > 0 {
        buf.drain(..consumed);
        true
    } else {
        false
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, envelope: Envelope) {
        self.stats.sent += 1;
        let bytes = envelope.encode();
        let out = if envelope.to == COORDINATOR {
            &mut self.out_member
        } else {
            &mut self.out_coord
        };
        out.push(&(bytes.len() as u32).to_le_bytes());
        out.push(&bytes);
    }

    fn tick(&mut self) {
        self.pump();
    }

    fn recv(&mut self, peer: PeerId) -> Vec<Envelope> {
        self.pump();
        match self.inboxes.get_mut(&peer) {
            Some(queue) => queue.drain(..).collect(),
            None => Vec::new(),
        }
    }

    fn name(&self) -> &'static str {
        "socket"
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Chaos backend
// ---------------------------------------------------------------------------

/// Fault rates for a [`ChaosTransport`], all driven by one seeded RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// RNG seed: same seed, same faults, same run.
    pub seed: u64,
    /// Per-mille probability an envelope is dropped outright.
    pub drop_per_mille: u16,
    /// Per-mille probability an envelope is queued twice.
    pub dup_per_mille: u16,
    /// Maximum delivery delay in ticks (each envelope copy draws a uniform
    /// delay in `0..=delay_ticks`, which reorders within that window).
    pub delay_ticks: u16,
}

impl ChaosConfig {
    /// No faults (partitions via [`ChaosControls`] still work).
    pub fn lossless(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_ticks: 0,
        }
    }

    /// The ISSUE's headline mix: drop 10%, duplicate 5%, reorder within a
    /// 3-tick window.
    pub fn standard(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_per_mille: 100,
            dup_per_mille: 50,
            delay_ticks: 3,
        }
    }

    /// Override the drop rate (per mille).
    pub fn with_drop_per_mille(mut self, v: u16) -> Self {
        self.drop_per_mille = v;
        self
    }

    /// Override the duplication rate (per mille).
    pub fn with_dup_per_mille(mut self, v: u16) -> Self {
        self.dup_per_mille = v;
        self
    }

    /// Override the reorder/delay window (ticks).
    pub fn with_delay_ticks(mut self, v: u16) -> Self {
        self.delay_ticks = v;
        self
    }
}

#[derive(Debug, Default)]
struct ChaosShared {
    partitioned: BTreeSet<PeerId>,
    partition_dropped: u64,
}

/// A cloneable handle into a [`ChaosTransport`]'s partition plane: tests (and
/// [`Fleet::partition_members`](crate::Fleet::partition_members)) cut node
/// sets off and heal them while the transport is owned by the fleet.
#[derive(Debug, Clone, Default)]
pub struct ChaosControls(Arc<Mutex<ChaosShared>>);

impl ChaosControls {
    /// Cut `peers` off: every envelope to or from them is dropped until
    /// [`ChaosControls::heal`].
    pub fn partition(&self, peers: &[PeerId]) {
        self.0.lock().partitioned.extend(peers.iter().copied());
    }

    /// Reconnect every partitioned peer.
    pub fn heal(&self) {
        self.0.lock().partitioned.clear();
    }

    /// True if `peer` is currently cut off.
    pub fn is_partitioned(&self, peer: PeerId) -> bool {
        self.0.lock().partitioned.contains(&peer)
    }

    /// Peers currently cut off.
    pub fn partitioned_count(&self) -> usize {
        self.0.lock().partitioned.len()
    }

    /// Envelopes dropped at a partition boundary so far.
    pub fn partition_dropped(&self) -> u64 {
        self.0.lock().partition_dropped
    }
}

/// Deterministic fault injection around any inner [`Transport`]: drops,
/// duplicates, and delays (reorders) envelopes from a seeded splitmix64
/// stream, and drops everything crossing the [`ChaosControls`] partition
/// boundary. Fleet send order is deterministic, so the RNG stream — and
/// therefore the whole fault schedule — replays exactly under the same seed.
pub struct ChaosTransport {
    inner: Box<dyn Transport>,
    config: ChaosConfig,
    rng_state: u64,
    now: u64,
    next_order: u64,
    /// Delayed envelopes keyed by (release tick, insertion order).
    pending: BTreeMap<(u64, u64), Envelope>,
    controls: ChaosControls,
    sent: u64,
    dropped: u64,
    duplicated: u64,
}

impl ChaosTransport {
    /// Wrap `inner` with the faults in `config`.
    pub fn new(inner: Box<dyn Transport>, config: ChaosConfig) -> Self {
        ChaosTransport {
            inner,
            config,
            // splitmix64 handles seed 0 fine, but offset it anyway so the
            // "obvious" seeds 0 and 1 give unrelated streams.
            rng_state: config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5B,
            now: 0,
            next_order: 0,
            pending: BTreeMap::new(),
            controls: ChaosControls::default(),
            sent: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// The partition-control handle.
    pub fn controls(&self) -> ChaosControls {
        self.controls.clone()
    }

    /// splitmix64: tiny, seedable, and plenty random for fault injection —
    /// deliberately inlined so the chaos schedule never depends on an external
    /// RNG crate's version.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn roll(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.next_u64() % 1000 < u64::from(per_mille)
    }

    fn queue(&mut self, envelope: Envelope) {
        let delay = if self.config.delay_ticks > 0 {
            self.next_u64() % (u64::from(self.config.delay_ticks) + 1)
        } else {
            0
        };
        if delay == 0 {
            self.inner.send(envelope);
        } else {
            let key = (self.now + delay, self.next_order);
            self.next_order += 1;
            self.pending.insert(key, envelope);
        }
    }
}

impl Transport for ChaosTransport {
    fn send(&mut self, envelope: Envelope) {
        self.sent += 1;
        {
            let mut shared = self.controls.0.lock();
            if shared.partitioned.contains(&envelope.from)
                || shared.partitioned.contains(&envelope.to)
            {
                shared.partition_dropped += 1;
                return;
            }
        }
        if self.roll(self.config.drop_per_mille) {
            self.dropped += 1;
            return;
        }
        let duplicate = self.roll(self.config.dup_per_mille);
        if duplicate {
            self.duplicated += 1;
            self.queue(envelope.clone());
        }
        self.queue(envelope);
    }

    fn tick(&mut self) {
        self.now += 1;
        let due: Vec<(u64, u64)> = self
            .pending
            .range(..=(self.now, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in due {
            if let Some(envelope) = self.pending.remove(&key) {
                self.inner.send(envelope);
            }
        }
        self.inner.tick();
    }

    fn recv(&mut self, peer: PeerId) -> Vec<Envelope> {
        self.inner.recv(peer)
    }

    fn name(&self) -> &'static str {
        "chaos"
    }

    fn is_lossy(&self) -> bool {
        true
    }

    fn flush_ticks(&self) -> u32 {
        u32::from(self.config.delay_ticks) + 2
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            // Logical sends at the chaos boundary, deliveries at the sink.
            sent: self.sent,
            delivered: self.inner.stats().delivered,
            dropped: self.dropped,
            duplicated: self.duplicated,
            partition_dropped: self.controls.partition_dropped(),
        }
    }
}

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// Which transport a [`FleetConfig`](crate::FleetConfig) builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Per-peer in-process queues (the default; no serialization).
    #[default]
    InProcess,
    /// A loopback TCP pair; every envelope crosses a real kernel socket.
    Socket,
    /// [`ChaosTransport`] over in-process queues with the given fault config.
    Chaos(ChaosConfig),
}

impl TransportKind {
    /// Backend name (for bench records and traces).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::InProcess => "inprocess",
            TransportKind::Socket => "socket",
            TransportKind::Chaos(_) => "chaos",
        }
    }

    /// Instantiate the backend (and the chaos controls, when applicable).
    pub(crate) fn build(self) -> (Box<dyn Transport>, Option<ChaosControls>) {
        match self {
            TransportKind::InProcess => (Box::new(InProcessTransport::new()), None),
            TransportKind::Socket => (
                Box::new(SocketTransport::new().expect("loopback socket pair")),
                None,
            ),
            TransportKind::Chaos(config) => {
                let chaos = ChaosTransport::new(Box::new(InProcessTransport::new()), config);
                let controls = chaos.controls();
                (Box::new(chaos), Some(controls))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Application-layer idempotence
// ---------------------------------------------------------------------------

/// The receiver-side idempotence filter: remembers every `(to, from, epoch,
/// seq)` it has accepted, so duplicates and retransmits are identified in
/// O(log n). Retired epochs can be pruned to bound memory.
#[derive(Debug, Default)]
pub struct DedupeWindow {
    seen: BTreeSet<(PeerId, PeerId, u64, u64)>,
    /// Duplicates rejected so far (the duplicate-suppression counter).
    suppressed: u64,
}

impl DedupeWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// True exactly once per distinct `(to, from, epoch, seq)`: the first
    /// offer is fresh, every later identical offer is a suppressed duplicate.
    pub fn accept(&mut self, envelope: &Envelope) -> bool {
        let fresh = self
            .seen
            .insert((envelope.to, envelope.from, envelope.epoch, envelope.seq));
        if !fresh {
            self.suppressed += 1;
        }
        fresh
    }

    /// Duplicates suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Forget keys from epochs before `floor` (their senders can no longer
    /// retransmit them — the fleet only retransmits within an epoch).
    pub fn retire_below(&mut self, floor: u64) {
        self.seen.retain(|&(_, _, epoch, _)| epoch >= floor);
    }
}

/// The executable model of the coordinator's apply discipline: deduplicate by
/// `(to, from, epoch, seq)`, stash state-bearing payloads keyed by their
/// sequence position, and fold them in key order. Because the fold order is a
/// function of the *keys* — never of arrival order — any
/// permutation-with-duplicates of an envelope stream yields the same
/// [`InvariantDatabase`] and the same net [`PatchPlan`] as in-order
/// exactly-once delivery. `tests/transport_stream.rs` proves it by proptest;
/// the live [`Fleet`](crate::Fleet) applies uploads and pushes with the same
/// discipline (dedupe, then seq-ordered fold).
#[derive(Debug)]
pub struct SequencedApplier {
    dedupe: DedupeWindow,
    shard_count: usize,
    /// Uploads keyed by (epoch, seq, from) — the coordinator's merge order.
    uploads: BTreeMap<(u64, u64, PeerId), Arc<InvariantDatabase>>,
    /// Patch plans keyed by (epoch, seq) — the push order.
    plans: BTreeMap<(u64, u64), Arc<PatchPlan>>,
}

impl SequencedApplier {
    /// An empty applier merging uploads through `shard_count` store shards.
    pub fn new(shard_count: usize) -> Self {
        SequencedApplier {
            dedupe: DedupeWindow::new(),
            shard_count,
            uploads: BTreeMap::new(),
            plans: BTreeMap::new(),
        }
    }

    /// Offer one envelope. Returns true if it was fresh (first delivery);
    /// duplicates are no-ops. Non-state payloads (pages, acks, sync blobs) are
    /// accepted but carry no folded state.
    pub fn offer(&mut self, envelope: &Envelope) -> bool {
        if !self.dedupe.accept(envelope) {
            return false;
        }
        match &envelope.payload {
            EnvelopePayload::Upload { invariants, .. } => {
                self.uploads.insert(
                    (envelope.epoch, envelope.seq, envelope.from),
                    Arc::clone(invariants),
                );
            }
            EnvelopePayload::PatchPush(plan) => {
                self.plans
                    .insert((envelope.epoch, envelope.seq), Arc::clone(plan));
            }
            _ => {}
        }
        true
    }

    /// Fold every accepted upload, in key order, through the sharded store —
    /// the coordinator's merge.
    pub fn database(&self) -> InvariantDatabase {
        let mut store = ShardedInvariantStore::new(self.shard_count);
        let databases: Vec<InvariantDatabase> =
            self.uploads.values().map(|db| (**db).clone()).collect();
        store.merge_uploads(&databases);
        store.snapshot()
    }

    /// Fold every accepted patch plan, in key order, into a net configuration
    /// — the member's apply.
    pub fn net_plan(&self) -> PatchPlan {
        let mut net = NetPatchState::new();
        for plan in self.plans.values() {
            net.apply(plan);
        }
        net.to_plan()
    }

    /// Duplicates suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.dedupe.suppressed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(from: PeerId, to: PeerId, epoch: u64, seq: u64) -> Envelope {
        Envelope {
            from,
            to,
            epoch,
            seq,
            payload: EnvelopePayload::Page(vec![seq as u32]),
        }
    }

    #[test]
    fn in_process_is_fifo_per_peer() {
        let mut t = InProcessTransport::new();
        t.send(page(COORDINATOR, 1, 1, 0));
        t.send(page(COORDINATOR, 2, 1, 1));
        t.send(page(COORDINATOR, 1, 1, 2));
        t.tick();
        let got = t.recv(1);
        assert_eq!(got.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(t.recv(1), vec![]);
        assert_eq!(t.recv(2).len(), 1);
        assert_eq!(t.stats().sent, 3);
        assert_eq!(t.stats().delivered, 3);
    }

    #[test]
    fn socket_round_trips_both_directions() {
        let mut t = SocketTransport::new().expect("loopback");
        t.send(page(COORDINATOR, 5, 1, 0));
        t.send(page(5, COORDINATOR, 1, 1));
        for _ in 0..t.flush_ticks() {
            t.tick();
        }
        let to_member = t.recv(5);
        assert_eq!(to_member.len(), 1);
        assert_eq!(to_member[0].seq, 0);
        let to_coord = t.recv(COORDINATOR);
        assert_eq!(to_coord.len(), 1);
        assert_eq!(to_coord[0].seq, 1);
        assert_eq!(t.stats().delivered, 2);
    }

    #[test]
    fn socket_survives_payloads_larger_than_kernel_buffers() {
        let mut t = SocketTransport::new().expect("loopback");
        let big = Envelope {
            from: COORDINATOR,
            to: 1,
            epoch: 1,
            seq: 0,
            payload: EnvelopePayload::Snapshot(Arc::new(vec![0xCD; 8 * 1024 * 1024])),
        };
        t.send(big.clone());
        t.tick();
        let got = t.recv(1);
        assert_eq!(got, vec![big]);
    }

    #[test]
    fn chaos_same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut t = ChaosTransport::new(
                Box::new(InProcessTransport::new()),
                ChaosConfig::standard(seed),
            );
            let mut delivered = Vec::new();
            for i in 0..200u64 {
                t.send(page(COORDINATOR, (i % 7) as PeerId, 1, i));
            }
            for _ in 0..t.flush_ticks() {
                t.tick();
            }
            for peer in 0..7 {
                delivered.extend(t.recv(peer).into_iter().map(|e| (e.to, e.seq)));
            }
            (delivered, t.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds, different schedules");
        let (_, stats) = run(42);
        assert!(stats.dropped > 0, "10% drop over 200 sends must drop some");
    }

    #[test]
    fn chaos_partition_cuts_both_directions_until_heal() {
        let mut t = ChaosTransport::new(
            Box::new(InProcessTransport::new()),
            ChaosConfig::lossless(1),
        );
        let controls = t.controls();
        controls.partition(&[3]);
        t.send(page(COORDINATOR, 3, 1, 0));
        t.send(page(3, COORDINATOR, 1, 1));
        t.send(page(COORDINATOR, 4, 1, 2));
        t.tick();
        assert_eq!(t.recv(3), vec![]);
        assert_eq!(t.recv(COORDINATOR), vec![]);
        assert_eq!(t.recv(4).len(), 1);
        assert_eq!(controls.partition_dropped(), 2);
        controls.heal();
        t.send(page(COORDINATOR, 3, 1, 3));
        t.tick();
        assert_eq!(t.recv(3).len(), 1);
    }

    #[test]
    fn dedupe_accepts_once_and_counts_suppression() {
        let mut w = DedupeWindow::new();
        let env = page(COORDINATOR, 1, 5, 9);
        assert!(w.accept(&env));
        assert!(!w.accept(&env));
        assert!(!w.accept(&env));
        assert_eq!(w.suppressed(), 2);
        // Same seq, different epoch or sender: distinct messages.
        assert!(w.accept(&page(COORDINATOR, 1, 6, 9)));
        assert!(w.accept(&page(2, 1, 5, 9)));
        w.retire_below(6);
        // Retired keys would be re-accepted — the sender no longer retransmits
        // them, so the window need not remember.
        assert!(w.accept(&env));
    }
}
