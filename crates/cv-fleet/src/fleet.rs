//! The fleet engine: the central ClearView manager for a large application community.
//!
//! A [`Fleet`] owns the member environments (behind an [`EpochScheduler`]), the
//! sharded community invariant store, one `FailureResponder` per failure location,
//! the batched console log, and the fleet metrics. Execution is epoch-batched: the
//! caller schedules a batch of presentations, workers run them in parallel, and the
//! central manager digests the batch, drives the per-failure responders, and pushes
//! the resulting patch operations to every member at the epoch boundary.
//!
//! **Batching semantics.** Within an epoch every member executes under the patch
//! configuration established at the previous boundary. The manager therefore feeds a
//! responder only digests consistent with that configuration: once a responder emits
//! directives mid-batch (its expected configuration changed), the remaining digests of
//! the same epoch for that location are dropped — they were produced under the old
//! patches. With one presentation per epoch this degenerates to exactly the seed
//! `cv-community` protocol, which is how the small-N facade preserves the paper's
//! presentation counts (e.g. four presentations to a patch).

use crate::metrics::FleetMetrics;
use crate::protocol::{
    BatchLog, FleetMessage, NodeId, PatchOp, PatchPush, PatchPushKind, Presentation,
};
use crate::scheduler::EpochScheduler;
use crate::shard::ShardedInvariantStore;
use cv_core::{ClearViewConfig, Directive, FailureResponder, Phase, RepairReport};
use cv_inference::{InvariantDatabase, LearnedModel, ProcedureDatabase};
use cv_isa::{Addr, BinaryImage, Word};
use cv_runtime::{MonitorConfig, RunStatus};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Construction knobs for a [`Fleet`].
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of community members.
    pub node_count: usize,
    /// Worker threads executing members (0 = one per available core).
    pub worker_count: usize,
    /// Shards of the community invariant store.
    pub shard_count: usize,
    /// Monitor configuration for every member.
    pub monitors: MonitorConfig,
    /// Run workers on real threads (`false` = same partitioning, one thread; the
    /// sequential baseline for benchmarks).
    pub parallel: bool,
}

impl FleetConfig {
    /// Defaults for `node_count` members: auto worker count, 8 shards, full monitors,
    /// parallel execution.
    pub fn new(node_count: usize) -> Self {
        FleetConfig {
            node_count,
            worker_count: 0,
            shard_count: 8,
            monitors: MonitorConfig::full(),
            parallel: true,
        }
    }

    /// Override the worker count.
    pub fn with_workers(mut self, worker_count: usize) -> Self {
        self.worker_count = worker_count;
        self
    }

    /// Override the shard count.
    pub fn with_shards(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count.max(1);
        self
    }

    /// Override the monitor configuration.
    pub fn with_monitors(mut self, monitors: MonitorConfig) -> Self {
        self.monitors = monitors;
        self
    }

    /// Force sequential (single-thread) execution.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }
}

/// The outcome of one presentation within an epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberOutcome {
    /// The member that processed the page.
    pub node: NodeId,
    /// How the run ended.
    pub status: RunStatus,
    /// What the member rendered.
    pub rendered: Vec<Word>,
    /// True if a monitor blocked the page.
    pub blocked: bool,
}

/// The outcome of one epoch.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The epoch number (1-based).
    pub epoch: u64,
    /// One outcome per presentation, in batch order.
    pub outcomes: Vec<MemberOutcome>,
}

impl EpochOutcome {
    /// Number of presentations a monitor blocked.
    pub fn blocked(&self) -> usize {
        self.outcomes.iter().filter(|o| o.blocked).count()
    }

    /// Number of presentations that completed normally.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, RunStatus::Completed))
            .count()
    }
}

/// A sharded, parallel application community under ClearView protection.
pub struct Fleet {
    image: BinaryImage,
    config: ClearViewConfig,
    monitors: MonitorConfig,
    scheduler: EpochScheduler,
    store: ShardedInvariantStore,
    model: LearnedModel,
    responses: BTreeMap<Addr, FailureResponder>,
    log: BatchLog,
    metrics: FleetMetrics,
    epoch: u64,
}

impl Fleet {
    /// Create a fleet of `fleet_config.node_count` members running `image`, with an
    /// empty model.
    pub fn new(image: BinaryImage, config: ClearViewConfig, fleet_config: FleetConfig) -> Self {
        let scheduler = EpochScheduler::new(
            &image,
            fleet_config.monitors,
            fleet_config.node_count,
            fleet_config.worker_count,
            fleet_config.parallel,
        );
        Fleet {
            model: LearnedModel {
                invariants: InvariantDatabase::new(),
                procedures: ProcedureDatabase::new(image.clone()),
            },
            store: ShardedInvariantStore::new(fleet_config.shard_count),
            monitors: fleet_config.monitors,
            image,
            config,
            scheduler,
            responses: BTreeMap::new(),
            log: BatchLog::new(),
            metrics: FleetMetrics::default(),
            epoch: 0,
        }
    }

    /// Number of community members.
    pub fn node_count(&self) -> usize {
        self.scheduler.node_count()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.scheduler.worker_count()
    }

    /// Number of shards in the community invariant store.
    pub fn shard_count(&self) -> usize {
        self.store.shard_count()
    }

    /// The batched console log.
    pub fn log(&self) -> &BatchLog {
        &self.log
    }

    /// The fleet metrics collected so far.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// The merged, community-wide learned model (the fused shard snapshot).
    pub fn model(&self) -> &LearnedModel {
        &self.model
    }

    /// The monitor configuration members run under.
    pub fn monitors(&self) -> MonitorConfig {
        self.monitors
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Maintainer-facing reports for every failure the fleet has responded to.
    pub fn reports(&self) -> Vec<RepairReport> {
        self.responses.values().map(|r| r.report()).collect()
    }

    /// True if a successful repair is distributed for the failure at `location`.
    pub fn is_protected_against(&self, location: Addr) -> bool {
        self.responses
            .get(&location)
            .map(|r| r.is_protected())
            .unwrap_or(false)
    }

    /// The response phase for the failure at `location`.
    pub fn phase_of(&self, location: Addr) -> Option<Phase> {
        self.responses.get(&location).map(|r| r.phase())
    }

    /// Replace the community model wholesale (centralized learning / experiments
    /// needing the exact single-machine model). Resets the sharded store to match.
    pub fn set_model(&mut self, model: LearnedModel) {
        self.store = ShardedInvariantStore::from_database(
            model.invariants.clone(),
            self.store.shard_count(),
        );
        self.model = model;
    }

    /// Amortized parallel learning (Section 3.1): the learning pages are divided among
    /// the members round-robin; each member traces only its share and uploads its
    /// locally inferred invariants; shard workers merge the uploads in parallel; the
    /// fused snapshot becomes the community model. Erroneous runs never contribute.
    pub fn distributed_learning(&mut self, pages: &[Vec<Word>]) {
        let locals = self.scheduler.learn(&self.image, pages);
        let mut uploads = Vec::with_capacity(locals.len());
        let mut databases = Vec::with_capacity(locals.len());
        for (node, local) in locals {
            uploads.push((node, local.invariants.len()));
            // The central manager re-discovers the procedure CFGs the members saw
            // (these are rebuilt from the image, not uploaded — as in the seed).
            for proc in local.procedures.procedures() {
                self.model.procedures.observe_block(proc.entry);
            }
            databases.push(local.invariants);
        }
        self.store.merge_uploads(&databases);
        self.model.invariants = self.store.snapshot();
        self.log.push(FleetMessage::InvariantUploads {
            epoch: self.epoch,
            uploads,
        });
        self.metrics.learning_pages += pages.len() as u64;
    }

    /// Execute one epoch: run `presentations` across the fleet in parallel, digest
    /// the batch centrally, and push resulting patch operations to every member.
    pub fn run_epoch(&mut self, presentations: &[Presentation]) -> EpochOutcome {
        self.epoch += 1;
        let epoch = self.epoch;
        let active: Vec<Addr> = self.responses.keys().copied().collect();

        let execution_start = Instant::now();
        let records = self.scheduler.run_epoch(presentations, &active);
        let execution = execution_start.elapsed();

        let manager_start = Instant::now();
        let mut ops: Vec<(Addr, PatchOp)> = Vec::new();
        let mut pushes: Vec<PatchPush> = Vec::new();
        let mut failures: Vec<(NodeId, Addr)> = Vec::new();
        let mut observation_batches: BTreeMap<Addr, Vec<(NodeId, usize)>> = BTreeMap::new();
        // Locations whose patch configuration changed mid-batch: the rest of this
        // epoch's digests for them ran under the old patches and are dropped.
        let mut reconfigured: BTreeSet<Addr> = BTreeSet::new();

        for record in &records {
            for (loc, digest) in &record.digests {
                if reconfigured.contains(loc) {
                    continue;
                }
                let Some(responder) = self.responses.get_mut(loc) else {
                    continue;
                };
                if !digest.observations.is_empty() {
                    let total = digest.observations.values().map(|v| v.len()).sum();
                    observation_batches
                        .entry(*loc)
                        .or_default()
                        .push((record.node, total));
                }
                let directives = responder.on_run(digest, &self.model);
                if !directives.is_empty() {
                    reconfigured.insert(*loc);
                    queue_directives(&mut ops, &mut pushes, *loc, directives, self.node_count());
                }
            }
            if let Some(failure) = &record.failure {
                failures.push((record.node, failure.location));
                self.metrics.record_first_failure(failure.location, epoch);
                if !self.responses.contains_key(&failure.location) {
                    // A failure at a new location starts a community-wide response.
                    // Same-epoch repeats of this failure predate the checking patches
                    // and are not fed to the new responder.
                    let (responder, directives) =
                        FailureResponder::new(failure, &self.model, self.config);
                    self.responses.insert(failure.location, responder);
                    reconfigured.insert(failure.location);
                    queue_directives(
                        &mut ops,
                        &mut pushes,
                        failure.location,
                        directives,
                        self.node_count(),
                    );
                }
            }
        }
        let manager = manager_start.elapsed();

        // Batch order mirrors the seed's within-browse order as far as batching
        // allows: observation reports first, then failure notifications, then patch
        // pushes (the seed interleaves pushes per location; a batch cannot).
        for (location, reports) in observation_batches {
            self.log.push(FleetMessage::Observations {
                epoch,
                location,
                reports,
            });
        }
        self.log.push(FleetMessage::Failures { epoch, failures });
        self.log.push(FleetMessage::PatchPushes { epoch, pushes });

        let push_start = Instant::now();
        self.scheduler.apply_ops(&ops);
        if !ops.is_empty() {
            self.metrics.record_patch_push(
                ops.len() as u64,
                self.node_count() as u64,
                push_start.elapsed(),
            );
        }

        for (loc, responder) in &self.responses {
            if responder.is_protected() {
                self.metrics.record_protected(*loc, epoch);
            }
        }
        self.metrics
            .record_epoch(records.len() as u64, execution, manager);

        EpochOutcome {
            epoch,
            outcomes: records
                .into_iter()
                .map(|r| MemberOutcome {
                    node: r.node,
                    blocked: matches!(r.status, RunStatus::Failure(_)),
                    status: r.status,
                    rendered: r.rendered,
                })
                .collect(),
        }
    }

    /// Convenience single-presentation epoch (the facade path): present `page` to
    /// `node` and return its outcome.
    pub fn present(&mut self, node: NodeId, page: &[Word]) -> MemberOutcome {
        assert!(node < self.node_count(), "unknown node {node}");
        let mut outcome = self.run_epoch(&[Presentation::new(node, page)]);
        outcome.outcomes.remove(0)
    }
}

/// Translate responder directives into fleet-wide patch operations plus their log
/// summaries.
fn queue_directives(
    ops: &mut Vec<(Addr, PatchOp)>,
    pushes: &mut Vec<PatchPush>,
    location: Addr,
    directives: Vec<Directive>,
    members: usize,
) {
    for directive in directives {
        let op = match directive {
            Directive::InstallChecks(checks) => PatchOp::InstallChecks(checks),
            Directive::RemoveChecks => PatchOp::RemoveChecks,
            Directive::InstallRepair(repair) => PatchOp::InstallRepair(repair),
            Directive::RemoveRepair => PatchOp::RemoveRepair,
        };
        pushes.push(PatchPush {
            location,
            kind: PatchPushKind::of(&op),
            members,
        });
        ops.push((location, op));
    }
}
