//! End-to-end tests of the ClearView pipeline on a small vulnerable guest program.
//!
//! The guest dispatches a "handler" through a function-pointer table indexed by an
//! unchecked selector read from the page — the same error class as the unchecked
//! JavaScript type exploits (Bugzilla 290162 / 295854). Benign pages use selectors 0 and
//! 1; the attack page uses an out-of-range selector, which makes the indirect call
//! target a non-code value and triggers a Memory Firewall failure.

use cv_core::{learn_model, ClearViewConfig, Phase, ProtectedApplication};
use cv_isa::{Addr, BinaryImage, MemRef, Operand, Port, ProgramBuilder, Reg};
use cv_runtime::{MonitorConfig, RunStatus};
use std::collections::BTreeMap;

fn vulnerable_browser() -> (BinaryImage, BTreeMap<String, Addr>) {
    let mut b = ProgramBuilder::new();
    let main = b.function("main");
    // eax <- selector
    b.input(Reg::Eax, Port::Input);
    // ecx <- a payload word the page controls (rendered by handlers)
    b.input(Reg::Ecx, Port::Input);
    let f0 = b.new_label("handler0");
    let f1 = b.new_label("handler1");
    let vtable = b.data_here();
    // ebx <- vtable[eax]  (no bounds check on the selector: the seeded defect)
    let load_site = b.mov(
        Reg::Ebx,
        Operand::Mem(MemRef {
            base: None,
            index: Some(Reg::Eax),
            scale: 1,
            disp: vtable as i32,
        }),
    );
    b.note_symbol("load_site", load_site);
    let call_site = b.call_indirect(Reg::Ebx);
    b.note_symbol("call_site", call_site);
    b.output(Reg::Eax, Port::Render);
    b.halt();
    b.bind(f0);
    b.output(Reg::Ecx, Port::Render);
    b.ret();
    b.bind(f1);
    b.mov(Reg::Edx, Reg::Ecx);
    b.add(Reg::Edx, Reg::Edx);
    b.output(Reg::Edx, Port::Render);
    b.ret();
    b.set_entry(main);
    b.data_code_ref(f0);
    b.data_code_ref(f1);
    b.build_with_symbols().unwrap()
}

fn benign_pages() -> Vec<Vec<u32>> {
    vec![vec![0, 7], vec![1, 9], vec![0, 3], vec![1, 11], vec![0, 21]]
}

/// An out-of-range selector: `vtable[40]` reads a zeroed data word, so the indirect call
/// targets address 0 — an illegal control transfer.
fn attack_page() -> Vec<u32> {
    vec![40, 0xBAD]
}

fn learned_app() -> (ProtectedApplication, BTreeMap<String, Addr>) {
    let (image, syms) = vulnerable_browser();
    let (model, _) = learn_model(&image, &benign_pages(), MonitorConfig::full());
    let app = ProtectedApplication::new(image, model, ClearViewConfig::default());
    (app, syms)
}

#[test]
fn benign_pages_pass_through_unmodified() {
    let (mut app, _) = learned_app();
    for page in benign_pages() {
        let out = app.present(&page);
        assert!(matches!(out.status, RunStatus::Completed));
        assert!(!out.blocked);
    }
    assert!(
        app.failure_locations().is_empty(),
        "no false positives: no responses started"
    );
    assert_eq!(
        app.applied_hook_count(),
        0,
        "no patches applied in the absence of failures"
    );
}

#[test]
fn attack_is_blocked_and_eventually_patched() {
    let (mut app, syms) = learned_app();
    let call_site = syms["call_site"];

    // Presentation 1: detection. The attack is blocked; checks get installed.
    let out = app.present(&attack_page());
    assert!(out.blocked, "the Memory Firewall blocks the attack");
    assert_eq!(app.failure_locations(), vec![call_site]);
    assert_eq!(app.phase_of(call_site), Some(Phase::Checking));
    assert!(
        app.applied_hook_count() > 0,
        "invariant-checking patches installed"
    );

    // Presentations 2 and 3: invariant checking over repeated attacks.
    let out = app.present(&attack_page());
    assert!(out.blocked);
    let out = app.present(&attack_page());
    assert!(out.blocked);
    assert_eq!(
        app.phase_of(call_site),
        Some(Phase::Repairing),
        "after two checked failures the checks come off and a repair goes on"
    );

    // Presentation 4: the repair corrects the error; the application survives.
    let out = app.present(&attack_page());
    assert!(
        matches!(out.status, RunStatus::Completed),
        "patched application survives the attack, got {:?}",
        out.status
    );
    assert!(out.newly_protected.contains(&call_site));
    assert!(app.is_protected_against(call_site));

    // Subsequent attacks are survived too, and benign pages still render correctly.
    let out = app.present(&attack_page());
    assert!(matches!(out.status, RunStatus::Completed));
    for page in benign_pages() {
        let out = app.present(&page);
        assert!(matches!(out.status, RunStatus::Completed));
    }
}

#[test]
fn patched_application_preserves_benign_behaviour() {
    // Autoimmune check: the rendered output of benign pages must be identical before
    // and after patching.
    let (image, _) = vulnerable_browser();
    let (model, _) = learn_model(&image, &benign_pages(), MonitorConfig::full());
    let mut unpatched =
        ProtectedApplication::new(image.clone(), model.clone(), ClearViewConfig::default());
    let baseline: Vec<Vec<u32>> = benign_pages()
        .iter()
        .map(|p| unpatched.present(p).rendered)
        .collect();

    let mut app = ProtectedApplication::new(image, model, ClearViewConfig::default());
    for _ in 0..4 {
        app.present(&attack_page());
    }
    assert!(!app.failure_locations().is_empty());
    let after: Vec<Vec<u32>> = benign_pages()
        .iter()
        .map(|p| app.present(p).rendered)
        .collect();
    assert_eq!(
        baseline, after,
        "bit-identical rendering on legitimate pages"
    );
}

#[test]
fn timeline_and_report_describe_the_response() {
    let (mut app, syms) = learned_app();
    for _ in 0..4 {
        app.present(&attack_page());
    }
    let timelines = app.timelines();
    assert_eq!(timelines.len(), 1);
    let t = &timelines[0];
    assert_eq!(t.failure_location, syms["call_site"]);
    assert!(t.detection_run_seconds > 0.0);
    assert!(t.check_build_seconds > 0.0);
    assert!(t.check_install_seconds > 0.0);
    assert!(t.check_run_seconds > 0.0);
    assert!(
        t.check_executions >= 2,
        "checks executed during the two replays"
    );
    assert!(
        t.check_violations >= 2,
        "the correlated invariant was violated in both"
    );
    assert!(t.repair_build_seconds > 0.0);
    assert!(t.repair_install_seconds > 0.0);
    assert!(
        t.successful_repair_seconds >= 10.0,
        "includes the evaluation window"
    );
    assert!(t.total_seconds() > 60.0);
    assert!(t.presentations >= 3);

    let reports = app.reports();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.failure_location, syms["call_site"]);
    assert!(
        !r.correlated.is_empty(),
        "correlated invariants reported to maintainers"
    );
    assert!(r.active_repair.is_some());
    let text = r.to_string();
    assert!(text.contains("active repair"));
}

#[test]
fn attacks_without_learning_are_blocked_but_not_patched() {
    // With an empty model there are no candidate invariants, so ClearView cannot repair
    // — but the monitor still blocks every attack (availability of the monitor does not
    // depend on learning).
    let (image, syms) = vulnerable_browser();
    let (model, _) = learn_model(&image, &[], MonitorConfig::full());
    let mut app = ProtectedApplication::new(image, model, ClearViewConfig::default());
    for _ in 0..5 {
        let out = app.present(&attack_page());
        assert!(out.blocked);
    }
    assert_eq!(app.phase_of(syms["call_site"]), Some(Phase::Unprotected));
    assert!(!app.is_protected_against(syms["call_site"]));
}
