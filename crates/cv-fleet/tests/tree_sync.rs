//! Per-tier delta sync through the manager tree.
//!
//! A fleet larger than its fan-out serves every membership sync — warm joins,
//! delta and full rejoins, resyncs, and transport-desync healing — from the
//! manager tree's **leaf tier**, never the root. These tests pin the two
//! properties that make that safe:
//!
//! * **Byte-identity**: a tier coordinator's `DeltaBuilder` cut is canonical in
//!   the base and the state, so tiered sync yields member state and a
//!   [`BatchLog`](cv_fleet::BatchLog) byte-identical to root-direct sync —
//!   randomized churn histories (kills, delta/full rejoins, warm/cold joins)
//!   replayed at fan-outs {2, 8, 32} against the flat fleet prove it.
//! * **The root is actually bypassed**: every [`SyncOutcome`] of a tiered fleet
//!   names a leaf-tier coordinator as its source peer, and the
//!   `root_sync_bypass_count` metric stays zero — including while healing a
//!   partition on the chaos transport.
//!
//! Plus the typed misrouting guard: a delta relayed across tiers with the wrong
//! shard routing is rejected with [`TierSyncError::CrossTierMisroute`] before it
//! can corrupt a coordinator mirror.

use cv_apps::{evaluation_suite, learning_suite, red_team_exploits, Browser};
use cv_core::ClearViewConfig;
use cv_fleet::{
    tier_peer, ChaosConfig, DeltaSnapshot, Fleet, FleetConfig, MembershipOp, Presentation,
    Snapshot, SyncOutcome, SyncSource, TierRow, TierSyncError, TransportKind, COORDINATOR,
};
use cv_isa::Word;
use proptest::prelude::*;

const NODES: usize = 40;

/// One epoch of randomized churn history. Raw picks are reduced against the
/// alive (or down) member list at the moment the epoch runs, so every generated
/// plan is valid against every reachable fleet state.
#[derive(Debug, Clone)]
struct EpochPlan {
    /// (member pick, page pick) per presentation, in batch order.
    presentations: Vec<(usize, usize)>,
    /// Members killed mid-epoch (they miss the boundary push).
    kills: Vec<usize>,
    /// Rejoins at the boundary: `true` = delta against the pre-kill checkpoint,
    /// `false` = full-snapshot bootstrap.
    rejoins: Vec<bool>,
    /// Brand-new members: `true` = warm join, `false` = cold join + resync.
    joins: Vec<bool>,
}

fn arb_epoch() -> impl Strategy<Value = EpochPlan> {
    (
        prop::collection::vec((0usize..1024, 0usize..1024), 1..8),
        prop::collection::vec(0usize..1024, 0..3),
        prop::collection::vec(any::<bool>(), 0..3),
        prop::collection::vec(any::<bool>(), 0..2),
    )
        .prop_map(|(presentations, kills, rejoins, joins)| EpochPlan {
            presentations,
            kills,
            rejoins,
            joins,
        })
}

/// The page pool a history draws from: benign pages plus exploit pages repeated,
/// so failures (and patch pushes — state churn for the deltas) are common.
fn page_pool(browser: &Browser) -> Vec<Vec<Word>> {
    let mut pool = evaluation_suite();
    for exploit in red_team_exploits(browser) {
        for _ in 0..3 {
            pool.push(exploit.page().to_vec());
        }
    }
    pool
}

/// Replay one generated history at one manager-tree fan-out (0 = flat,
/// root-direct sync), collecting every [`SyncOutcome`] in op order.
fn run_history(
    fanout: usize,
    browser: &Browser,
    pool: &[Vec<Word>],
    epochs: &[EpochPlan],
) -> (Fleet, Vec<SyncOutcome>) {
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(NODES)
            .with_workers(2)
            .with_tree_fanout(fanout),
    );
    fleet.distributed_learning(&learning_suite());
    let mut outcomes = Vec::new();
    for plan in epochs {
        let alive: Vec<usize> = (0..fleet.node_count())
            .filter(|&n| fleet.is_member_alive(n))
            .collect();
        let batch: Vec<Presentation> = plan
            .presentations
            .iter()
            .map(|&(m, p)| Presentation::new(alive[m % alive.len()], pool[p % pool.len()].clone()))
            .collect();
        let mut kills: Vec<usize> = Vec::new();
        for &k in &plan.kills {
            let node = alive[k % alive.len()];
            if !kills.contains(&node) {
                kills.push(node);
            }
        }
        // Never take the whole fleet down: the next epoch needs someone alive.
        if kills.len() >= alive.len() {
            kills.pop();
        }
        // The pre-kill checkpoint is the base the delta rejoins advance from.
        let base = fleet.checkpoint();
        fleet.run_epoch_churn(&batch, &kills);
        for (i, &delta) in plan.rejoins.iter().enumerate() {
            let down: Vec<usize> = (0..fleet.node_count())
                .filter(|&n| !fleet.is_member_alive(n))
                .collect();
            if down.is_empty() {
                break;
            }
            let node = down[i % down.len()];
            outcomes.push(fleet.apply_membership(MembershipOp::Rejoin {
                node,
                checkpoint: delta.then_some(&base),
            }));
        }
        for &warm in &plan.joins {
            if warm {
                outcomes.push(fleet.apply_membership(MembershipOp::JoinWarm));
            } else {
                let cold = fleet.apply_membership(MembershipOp::JoinCold);
                let node = cold.nodes[0];
                outcomes.push(cold);
                outcomes.push(fleet.apply_membership(MembershipOp::Resync(node)));
            }
        }
    }
    // A deterministic tail so every history exercises the delta path at least
    // once: two members die mid-epoch and rejoin by delta from the pre-kill
    // checkpoint.
    let base = fleet.checkpoint();
    let tail: Vec<usize> = (0..fleet.node_count())
        .filter(|&n| fleet.is_member_alive(n))
        .take(2)
        .collect();
    fleet.run_epoch_churn(&[Presentation::new(tail[0], pool[0].clone())], &tail);
    for &node in &tail {
        outcomes.push(fleet.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: Some(&base),
        }));
    }
    (fleet, outcomes)
}

/// The leaf tier a fleet of `members` serves member sync from at `fanout`
/// (the deepest coordinator row the push tiers produce).
fn leaf_tier(members: usize, fanout: usize) -> u32 {
    cv_core::ManagerTree::new(fanout)
        .coordinator_rows(members)
        .last()
        .expect("fleet outgrew the fan-out, so coordinator rows exist")
        .tier
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline byte-identity discipline: for every fan-out in {2, 8, 32},
    /// the same churn history replayed tiered and root-direct yields (a) a
    /// byte-identical `BatchLog`, (b) byte-identical final coordinator state,
    /// (c) identical per-op sync outcomes (nodes, delta-ness, byte counts) —
    /// while every tiered sync names a **leaf-tier coordinator**, not the
    /// root, as its source, and the root-bypass counter stays zero.
    #[test]
    fn tiered_sync_is_byte_identical_to_root_direct(
        epochs in prop::collection::vec(arb_epoch(), 1..4),
    ) {
        let browser = Browser::build();
        let pool = page_pool(&browser);
        let (mut flat, flat_outcomes) = run_history(0, &browser, &pool, &epochs);
        let flat_ckpt = flat.checkpoint().encode();

        for fanout in [2usize, 8, 32] {
            let (mut tiered, tiered_outcomes) = run_history(fanout, &browser, &pool, &epochs);

            // (a) Protocol history byte-identical.
            prop_assert_eq!(flat.log(), tiered.log());
            prop_assert_eq!(
                format!("{:?}", flat.log()),
                format!("{:?}", tiered.log())
            );
            // (b) Final member-visible state byte-identical.
            prop_assert_eq!(flat.model().invariants.clone(), tiered.model().invariants.clone());
            prop_assert_eq!(
                format!("{:?}", flat.net_state().to_plan()),
                format!("{:?}", tiered.net_state().to_plan())
            );
            // (c) Same ops, same deltas, same bytes — only the source differs.
            prop_assert_eq!(flat_outcomes.len(), tiered_outcomes.len());
            let leaf = leaf_tier(tiered.node_count(), fanout);
            for (f, t) in flat_outcomes.iter().zip(&tiered_outcomes) {
                prop_assert_eq!(&f.nodes, &t.nodes);
                prop_assert_eq!(f.delta, t.delta);
                prop_assert_eq!(f.bytes, t.bytes);
                if f.source_peer.is_some() {
                    // Root-direct syncs come from the coordinator peer...
                    prop_assert_eq!(f.source_peer, Some(COORDINATOR));
                    prop_assert_eq!(f.source_tier, Some(0));
                    // ...tiered syncs from the leaf coordinator row, never the
                    // root (NODES > fanout for every fan-out here).
                    prop_assert_eq!(t.source_peer, Some(tier_peer(leaf)));
                    prop_assert_eq!(t.source_tier, Some(leaf));
                }
            }
            // The tree carried real sync traffic; the root served none of it.
            prop_assert_eq!(tiered.metrics().root_sync_bypass_count, 0);
            prop_assert!(tiered.metrics().tier_sync_bytes > 0);
            prop_assert!(tiered.metrics().tier_delta_cuts > 0);
            prop_assert_eq!(flat.metrics().tier_sync_bytes, 0);
            prop_assert_eq!(flat.metrics().tier_delta_cuts, 0);
            prop_assert_eq!(flat.metrics().root_sync_bypass_count, 0);
            // And the tiered coordinator still checkpoints byte-identically.
            prop_assert_eq!(flat_ckpt.clone(), tiered.checkpoint().encode());
        }
    }
}

/// Partition healing at fan-out 8 on the chaos transport: the cut members
/// desync, heal through the transport resync pass — and that pass is served by
/// their **parent tier**, not the root. Delta resyncs flow, the bypass counter
/// stays zero, and the healed members are synced and immune.
#[test]
fn partition_heals_from_the_parent_tier_not_the_root() {
    let browser = Browser::build();
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");
    let cut: Vec<usize> = (8..16).collect();

    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(NODES)
            .with_workers(2)
            .with_tree_fanout(8)
            // No background loss: this test isolates the partition fault.
            .with_transport(TransportKind::Chaos(ChaosConfig::lossless(0x9A47))),
    );
    fleet.distributed_learning(&learning_suite());

    // One benign epoch so the partitioned members have a synced base > 0 to
    // delta from.
    let benign = evaluation_suite();
    fleet.run_epoch(&[Presentation::new(0, benign[0].clone())]);

    fleet.partition_members(&cut);
    let batch: Vec<Presentation> = [0usize, 20, 31]
        .iter()
        .map(|&node| Presentation::new(node, exploit.page()))
        .collect();
    for _ in 0..12 {
        fleet.run_epoch(&batch);
        if fleet.is_protected_against(location) {
            break;
        }
    }
    assert!(fleet.is_protected_against(location));
    assert!(
        !fleet.transport_desynced().is_empty(),
        "partitioned members should have missed the patch push"
    );

    fleet.heal_partition();
    for _ in 0..8 {
        if fleet.transport_desynced().is_empty() {
            break;
        }
        fleet.run_epoch(&[Presentation::new(0, benign[0].clone())]);
    }
    assert!(
        fleet.transport_desynced().is_empty(),
        "members still desynced after healing: {:?}",
        fleet.transport_desynced()
    );

    let m = fleet.metrics();
    assert!(m.transport_resyncs > 0, "healed members never resynced");
    assert!(
        m.transport_delta_resyncs > 0,
        "healing should have used the delta plane, not full snapshots"
    );
    // The healing traffic flowed through the tree, never the root.
    assert_eq!(m.root_sync_bypass_count, 0);
    assert!(m.tier_sync_bytes > 0);
    assert!(m.tier_delta_cuts > 0);

    // The healed members are immune too.
    let verify: Vec<Presentation> = cut
        .iter()
        .map(|&node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    assert_eq!(outcome.blocked(), 0);
    assert_eq!(outcome.completed(), cut.len());
}

/// Build a small real snapshot pair (base, advanced) by driving a fleet one
/// protected epoch past its checkpoint.
fn snapshot_pair(browser: &Browser) -> (Snapshot, Snapshot, Fleet) {
    let exploit = red_team_exploits(browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(8).with_workers(2),
    );
    let base = fleet.checkpoint();
    fleet.distributed_learning(&learning_suite());
    let batch = vec![Presentation::new(0, exploit.page())];
    for _ in 0..12 {
        fleet.run_epoch(&batch);
        if fleet.is_protected_against(location) {
            break;
        }
    }
    let current = fleet.checkpoint();
    (base, current, fleet)
}

/// A delta whose shard routing disagrees with the receiving coordinator — the
/// cross-tier misrouting fault — is rejected with a typed error *before* any
/// state is touched.
#[test]
fn cross_tier_misrouted_delta_is_rejected() {
    let browser = Browser::build();
    let (base, current, _fleet) = snapshot_pair(&browser);
    let mut row = TierRow::new(1, 4, base.clone());

    // Wrong shard count outright: the delta claims a different routing space.
    let mut wrong_count = DeltaSnapshot::diff(&base, &current);
    wrong_count.shard_count += 1;
    match row.apply_relayed(&wrong_count) {
        Err(TierSyncError::CrossTierMisroute { tier: 1, .. }) => {}
        other => panic!("expected CrossTierMisroute, got {other:?}"),
    }

    // Right shard count, but an entry filed under the wrong shard: the
    // per-entry routing validation catches the corruption.
    let mut misfiled = DeltaSnapshot::diff(&base, &current);
    let from = misfiled
        .shards
        .iter()
        .position(|s| !s.entries.is_empty())
        .expect("a protected epoch changes at least one entry");
    let to = (from + 1) % misfiled.shards.len();
    let entry = misfiled.shards[from].entries.remove(0);
    misfiled.shards[to].entries.push(entry);
    match row.apply_relayed(&misfiled) {
        Err(TierSyncError::CrossTierMisroute { tier: 1, .. }) => {}
        other => panic!("expected CrossTierMisroute, got {other:?}"),
    }

    // The row state is untouched by either rejected relay, and a clean delta
    // still applies and lands the row on the coordinator's exact state.
    assert_eq!(row.state(), &base);
    let clean = DeltaSnapshot::diff(&base, &current);
    row.apply_relayed(&clean).expect("clean delta applies");
    assert_eq!(row.state(), &current);
}

/// A relayed delta cut against a checkpoint the row does not hold is a stale
/// base — typed, with both epochs named.
#[test]
fn stale_base_relay_is_rejected() {
    let browser = Browser::build();
    let (base, current, mut fleet) = snapshot_pair(&browser);
    let mut row = TierRow::new(2, 3, current.clone());

    let stale = DeltaSnapshot::diff(&base, &current);
    match row.apply_relayed(&stale) {
        Err(TierSyncError::StaleBase {
            tier: 2,
            expected,
            found,
        }) => {
            assert_eq!(expected, current.epoch);
            assert_eq!(found, base.epoch);
        }
        other => panic!("expected StaleBase, got {other:?}"),
    }

    // A tier row is a `SyncSource` like the root: its cut against the same
    // base is byte-identical to the root's cut.
    let row_delta = row.delta_since(&base);
    let root_delta = fleet.delta_since(&base);
    assert_eq!(row_delta.encode(), root_delta.encode());
}

/// The five legacy membership methods survive as deprecated wrappers over
/// `apply_membership` — same observable behavior, one routing underneath.
#[test]
#[allow(deprecated)]
fn legacy_membership_wrappers_route_through_apply_membership() {
    let browser = Browser::build();
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(8).with_workers(2),
    );
    fleet.distributed_learning(&learning_suite());
    let base = fleet.checkpoint();
    let benign = evaluation_suite();
    fleet.run_epoch(&[Presentation::new(0, benign[0].clone())]);

    fleet.crash_member(3);
    fleet.crash_members(&[4, 5]);
    assert_eq!(fleet.alive_count(), 5);

    fleet.rejoin_member(3, Some(&base));
    fleet.rejoin_member(4, None);
    fleet.rejoin_member(5, None);
    assert_eq!(fleet.alive_count(), 8);
    assert!(fleet.is_member_synced(3));

    let warm = fleet.join_member_warm();
    assert!(fleet.is_member_synced(warm));
    let cold = fleet.join_member_cold();
    assert!(!fleet.is_member_synced(cold));
    fleet.resync_member(cold);
    assert!(fleet.is_member_synced(cold));

    let m = fleet.metrics();
    assert_eq!(m.crashes, 3);
    assert_eq!(m.rejoins, 3);
    assert_eq!(m.delta_syncs, 1);
    assert_eq!(m.warm_joins, 1);
    assert_eq!(m.cold_joins, 1);
}
