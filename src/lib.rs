//! # ClearView reproduction facade
//!
//! This crate re-exports the public API of the ClearView (SOSP 2009) reproduction so
//! that downstream users can depend on a single crate:
//!
//! * [`isa`] — the simulated x86-like instruction set and assembler.
//! * [`runtime`] — the managed program execution environment and monitors.
//! * [`inference`] — the Daikon-like invariant learning engine.
//! * [`patch`] — invariant-check and repair patches.
//! * [`core`] — the ClearView orchestration pipeline.
//! * [`store`] — the snapshot + delta-sync persistence plane (durability & churn).
//! * [`community`] — the application-community layer (small-N facade).
//! * [`fleet`] — the sharded, parallel application-community engine (1,000+ members).
//! * [`obs`] — the structured tracing + telemetry plane (spans, counters, traces).
//! * [`apps`] — the synthetic vulnerable browser and its workloads.
//!
//! See `examples/quickstart.rs` for an end-to-end walk through the Figure 1 pipeline,
//! and `examples/fleet_demo.rs` for community-scale immunity.

pub use cv_apps as apps;
pub use cv_community as community;
pub use cv_core as core;
pub use cv_fleet as fleet;
pub use cv_inference as inference;
pub use cv_isa as isa;
pub use cv_obs as obs;
pub use cv_patch as patch;
pub use cv_runtime as runtime;
pub use cv_store as store;
