//! Property tests for the snapshot format: encode → decode → byte-identical
//! re-encode over randomized invariant databases and patch plans, delta
//! diff/apply correctness, and corruption rejection (truncation, flipped bytes,
//! wrong version, bad magic).

use cv_core::{Directive, PatchPlan};
use cv_inference::{Invariant, InvariantDatabase, Variable};
use cv_isa::{MemRef, Operand, Reg};
use cv_patch::{CheckPatch, RepairPatch, RepairStrategy};
use cv_store::{DeltaSnapshot, Snapshot, StoreError};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

fn reg(raw: u8) -> Reg {
    Reg::ALL[(raw % 8) as usize]
}

fn operand_strategy() -> BoxedStrategy<Operand> {
    prop_oneof![
        (any::<u8>()).prop_map(|r| Operand::Reg(reg(r))),
        (any::<u32>()).prop_map(Operand::Imm),
        (any::<u8>(), any::<u8>(), 0u8..4, -512i32..512).prop_map(|(b, i, scale_pow, disp)| {
            Operand::Mem(MemRef {
                base: if b % 3 == 0 { None } else { Some(reg(b)) },
                index: if i % 3 == 0 { None } else { Some(reg(i)) },
                scale: 1 << scale_pow,
                disp,
            })
        }),
    ]
    .boxed()
}

fn variable_strategy() -> BoxedStrategy<Variable> {
    (0x4_0000u32..0x4_4000, 0u8..3, operand_strategy())
        .prop_map(|(addr, slot, op)| match slot {
            0 => Variable::read(addr, slot, op),
            1 => Variable::computed_addr(addr, slot),
            _ => Variable::stack_pointer(addr),
        })
        .boxed()
}

fn invariant_strategy() -> BoxedStrategy<Invariant> {
    prop_oneof![
        (
            variable_strategy(),
            prop::collection::vec(any::<u32>(), 1..6)
        )
            .prop_map(|(var, values)| Invariant::OneOf {
                var,
                values: values.into_iter().collect(),
            }),
        (variable_strategy(), any::<i32>())
            .prop_map(|(var, min)| Invariant::LowerBound { var, min }),
        (variable_strategy(), variable_strategy()).prop_map(|(a, b)| Invariant::LessThan { a, b }),
        (0x4_0000u32..0x4_4000, 0x4_0000u32..0x4_4000, -128i32..128).prop_map(
            |(proc_entry, at, offset)| Invariant::StackPointerOffset {
                proc_entry,
                at,
                offset,
            }
        ),
    ]
    .boxed()
}

fn database_strategy(max_invariants: usize) -> BoxedStrategy<InvariantDatabase> {
    (
        prop::collection::vec(invariant_strategy(), 1..max_invariants),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(invs, events, committed)| {
            let mut db = InvariantDatabase::new();
            for inv in invs {
                db.insert(inv);
            }
            db.stats.events_processed = events as u64;
            db.stats.runs_committed = committed as u64;
            db.recount();
            db
        })
        .boxed()
}

fn plan_strategy() -> BoxedStrategy<PatchPlan> {
    let directive = prop_oneof![
        prop::collection::vec(invariant_strategy(), 0..4).prop_map(
            |invs| Directive::InstallChecks(invs.into_iter().map(CheckPatch::new).collect())
        ),
        Just(Directive::RemoveChecks),
        (invariant_strategy(), any::<u8>(), any::<u32>(), -64i32..64).prop_map(
            |(invariant, which, value, adj)| {
                let strategy = match which % 5 {
                    0 => RepairStrategy::SetValue { value },
                    1 => RepairStrategy::SkipCall,
                    2 => RepairStrategy::ReturnFromProcedure { sp_adjust: adj },
                    3 => RepairStrategy::ClampToLowerBound,
                    _ => RepairStrategy::EnforceLessThan,
                };
                Directive::InstallRepair(RepairPatch {
                    invariant,
                    strategy,
                })
            }
        ),
        Just(Directive::RemoveRepair),
    ];
    prop::collection::vec((0x4_0000u32..0x4_4000, directive), 0..8)
        .prop_map(|ops| {
            let mut plan = PatchPlan::new();
            for (loc, dir) in ops {
                plan.push(loc, dir);
            }
            plan
        })
        .boxed()
}

fn snapshot_strategy(max_invariants: usize) -> BoxedStrategy<Snapshot> {
    (
        database_strategy(max_invariants),
        plan_strategy(),
        prop::collection::vec(0x4_0000u32..0x4_4000, 0..6),
        1u64..100,
    )
        .prop_map(|(invariants, plan, mut procedures, epoch)| {
            procedures.sort_unstable();
            procedures.dedup();
            Snapshot {
                epoch,
                shard_count: 8,
                invariants,
                procedures,
                plan,
            }
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_round_trip_is_byte_identical(snap in snapshot_strategy(120)) {
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).expect("well-formed snapshot decodes");
        prop_assert_eq!(&decoded, &snap);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn delta_diff_apply_reaches_the_target(
        base in snapshot_strategy(80),
        target in snapshot_strategy(80),
    ) {
        // Procedure discovery is monotone in the live system; deltas only add.
        let mut target = target;
        target.procedures.extend(base.procedures.iter().copied());
        target.procedures.sort_unstable();
        target.procedures.dedup();
        let delta = DeltaSnapshot::diff(&base, &target);
        // The delta itself round-trips byte-identically.
        let bytes = delta.encode();
        let decoded = DeltaSnapshot::decode(&bytes).expect("well-formed delta decodes");
        prop_assert_eq!(&decoded, &delta);
        prop_assert_eq!(decoded.encode(), bytes);
        // Applying it to the base reproduces the target exactly.
        let mut advanced = base.clone();
        advanced.apply_delta(&decoded).expect("delta applies to its base");
        prop_assert_eq!(advanced, target);
    }

    #[test]
    fn payload_corruption_is_always_rejected(
        snap in snapshot_strategy(60),
        seed in any::<u32>(),
    ) {
        let bytes = snap.encode();
        // Flip one byte inside the payload region (past the header + section
        // table, which for 4 sections is 12 + 4*24 bytes): the per-section CRC
        // must catch it.
        let payload_start = 12 + 4 * 24;
        let idx = payload_start + (seed as usize) % (bytes.len() - payload_start);
        let mut corrupt = bytes.clone();
        corrupt[idx] ^= 0x01;
        prop_assert!(
            matches!(Snapshot::decode(&corrupt), Err(StoreError::ChecksumMismatch { .. })),
            "flipped payload byte {} must fail its section checksum", idx
        );
    }

    #[test]
    fn truncation_is_always_rejected(snap in snapshot_strategy(40), seed in any::<u32>()) {
        let bytes = snap.encode();
        let cut = (seed as usize) % bytes.len();
        prop_assert!(Snapshot::decode(&bytes[..cut]).is_err());
    }
}

#[test]
fn wrong_version_and_magic_are_rejected() {
    let snap = Snapshot {
        epoch: 1,
        shard_count: 4,
        invariants: InvariantDatabase::new(),
        procedures: vec![],
        plan: PatchPlan::new(),
    };
    let bytes = snap.encode();

    let mut wrong_version = bytes.clone();
    wrong_version[4] = 99;
    assert!(matches!(
        Snapshot::decode(&wrong_version),
        Err(StoreError::UnsupportedVersion { found: 99, .. })
    ));

    let mut wrong_magic = bytes.clone();
    wrong_magic[..4].copy_from_slice(b"JUNK");
    assert!(matches!(
        Snapshot::decode(&wrong_magic),
        Err(StoreError::BadMagic { .. })
    ));

    // A delta container is not a snapshot container and vice versa.
    let delta = DeltaSnapshot::diff(&snap, &snap);
    assert!(matches!(
        Snapshot::decode(&delta.encode()),
        Err(StoreError::BadMagic { .. })
    ));
    assert!(matches!(
        DeltaSnapshot::decode(&bytes),
        Err(StoreError::BadMagic { .. })
    ));
}

#[test]
fn every_truncation_of_a_small_snapshot_is_rejected() {
    let mut invariants = InvariantDatabase::new();
    invariants.insert(Invariant::LowerBound {
        var: Variable::read(0x4_0000, 0, Operand::Reg(Reg::Ecx)),
        min: 3,
    });
    invariants.recount();
    let snap = Snapshot {
        epoch: 7,
        shard_count: 8,
        invariants,
        procedures: vec![0x4_0000],
        plan: PatchPlan::new(),
    };
    let bytes = snap.encode();
    for cut in 0..bytes.len() {
        assert!(
            Snapshot::decode(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    assert!(Snapshot::decode(&bytes).is_ok());
}
