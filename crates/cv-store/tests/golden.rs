//! Golden-snapshot compatibility: a version-1 snapshot committed to the repo must
//! decode to exactly the known state on every run. An accidental format change —
//! reordered columns, a widened field, a different checksum — fails this test
//! before it can strand real checkpoints.
//!
//! To regenerate after an *intentional* format bump (which must also bump
//! `FORMAT_VERSION` and keep a decoder for the old version or re-cut fixtures):
//!
//! ```text
//! cargo test -p cv-store --test golden regenerate_golden_fixture -- --ignored
//! ```

use cv_core::{Directive, PatchPlan};
use cv_inference::{Invariant, InvariantDatabase, Variable};
use cv_isa::{MemRef, Operand, Reg};
use cv_patch::{RepairPatch, RepairStrategy};
use cv_store::Snapshot;

const FIXTURE: &[u8] = include_bytes!("golden_snapshot_v1.bin");

/// The exact state the committed fixture encodes. Every construct the format can
/// carry appears at least once: all four invariant kinds, all operand shapes, a
/// multi-directive plan, procedures, and non-trivial learning counters.
fn golden_state() -> Snapshot {
    let reg_var = Variable::read(0x4_0000, 0, Operand::Reg(Reg::Ebx));
    let mem_var = Variable::read(
        0x4_0010,
        1,
        Operand::Mem(MemRef::indexed(Reg::Ebp, Reg::Esi, 4, -12)),
    );
    let addr_var = Variable::computed_addr(0x4_0020, 0);
    let sp_var = Variable::stack_pointer(0x4_0030);

    let mut invariants = InvariantDatabase::new();
    invariants.insert(Invariant::OneOf {
        var: reg_var,
        values: [0x4_1000u32, 0x4_2000, 0xFFFF_FFFF].into_iter().collect(),
    });
    invariants.insert(Invariant::LowerBound {
        var: reg_var,
        min: -7,
    });
    invariants.insert(Invariant::LowerBound {
        var: mem_var,
        min: 1,
    });
    invariants.insert(Invariant::LessThan {
        a: mem_var,
        b: addr_var,
    });
    invariants.insert(Invariant::OneOf {
        var: sp_var,
        values: [12u32].into_iter().collect(),
    });
    invariants.insert(Invariant::StackPointerOffset {
        proc_entry: 0x4_0000,
        at: 0x4_0040,
        offset: -3,
    });
    invariants.stats.events_processed = 123_456;
    invariants.stats.runs_committed = 789;
    invariants.stats.runs_discarded = 21;
    invariants.stats.variables_observed = 4;
    invariants.stats.duplicates_removed = 2;
    invariants.stats.pointers_classified = 1;
    invariants.recount();

    let repair_inv = Invariant::OneOf {
        var: reg_var,
        values: [0x4_1000u32].into_iter().collect(),
    };
    let mut plan = PatchPlan::new();
    plan.push(
        0x4_0000,
        Directive::InstallChecks(vec![
            cv_patch::CheckPatch::new(Invariant::LowerBound {
                var: reg_var,
                min: -7,
            }),
            cv_patch::CheckPatch::new(repair_inv.clone()),
        ]),
    );
    plan.push(0x4_0000, Directive::RemoveChecks);
    plan.push(
        0x4_0000,
        Directive::InstallRepair(RepairPatch {
            invariant: repair_inv,
            strategy: RepairStrategy::SetValue { value: 0x4_1000 },
        }),
    );
    plan.push(
        0x4_0040,
        Directive::InstallRepair(RepairPatch {
            invariant: Invariant::OneOf {
                var: sp_var,
                values: [12u32].into_iter().collect(),
            },
            strategy: RepairStrategy::ReturnFromProcedure { sp_adjust: -3 },
        }),
    );
    plan.push(0x4_0050, Directive::RemoveRepair);

    Snapshot {
        epoch: 42,
        shard_count: 8,
        invariants,
        procedures: vec![0x4_0000, 0x4_0100, 0x4_0200],
        plan,
    }
}

#[test]
fn committed_golden_snapshot_still_decodes() {
    let decoded = Snapshot::decode(FIXTURE).expect("the committed v1 fixture must decode");
    assert_eq!(
        decoded,
        golden_state(),
        "fixture decodes to the known state"
    );
    assert_eq!(
        decoded.encode(),
        FIXTURE,
        "re-encoding the fixture is byte-identical (format unchanged)"
    );
}

#[test]
#[ignore = "writes the fixture; run only on an intentional format change"]
fn regenerate_golden_fixture() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_snapshot_v1.bin");
    std::fs::write(path, golden_state().encode()).expect("write fixture");
}
