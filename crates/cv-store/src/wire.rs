//! The byte-level wire layer: little-endian primitive encoding, flat column
//! read/write, CRC-32 checksums, and the sectioned container shared by full
//! snapshots and deltas.
//!
//! A container is:
//!
//! ```text
//! magic (4) | version u32 | section_count u32
//! section table: section_count x { id u32 | offset u64 | len u64 | crc32 u32 }
//! payloads, concatenated (offsets are absolute)
//! ```
//!
//! Every multi-byte integer is little-endian. Columns (`u32`/`i32` arrays) are
//! written as one contiguous byte run each, so encoding a columnar section is a
//! sequence of flat copies rather than a per-record traversal.

use crate::error::StoreError;
use std::sync::OnceLock;

/// Hard cap on section-table entries — a sanity bound so a corrupt header cannot
/// drive a huge allocation before checksums are even looked at.
const MAX_SECTIONS: usize = 4096;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected)
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// The CRC-32 checksum of `bytes` (IEEE polynomial — the zlib/PNG crc).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends little-endian primitives and flat columns to a byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a whole `u32` column as one contiguous byte run.
    pub fn u32_column(&mut self, col: &[u32]) {
        self.buf.reserve(col.len() * 4);
        for &v in col {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a whole `i32` column as one contiguous byte run.
    pub fn i32_column(&mut self, col: &[i32]) {
        self.buf.reserve(col.len() * 4);
        for &v in col {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a whole `u16` column as one contiguous byte run.
    pub fn u16_column(&mut self, col: &[u16]) {
        self.buf.reserve(col.len() * 2);
        for &v in col {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a whole `u8` column.
    pub fn u8_column(&mut self, col: &[u8]) {
        self.buf.extend_from_slice(col);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reads over a byte slice. Every read either
/// succeeds completely or returns [`StoreError::Truncated`].
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, StoreError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `i32`.
    pub fn i32(&mut self, context: &'static str) -> Result<i32, StoreError> {
        let b = self.take(4, context)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a length previously written as `u32`, bounded so a corrupt count can
    /// never drive an allocation larger than the bytes that could back it.
    pub fn len_u32(
        &mut self,
        elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, StoreError> {
        let n = self.u32(context)? as usize;
        if n.saturating_mul(elem_bytes.max(1)) > self.remaining() {
            return Err(StoreError::Truncated {
                context,
                needed: n * elem_bytes.max(1),
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Read a `u32` column of `n` elements.
    pub fn u32_column(&mut self, n: usize, context: &'static str) -> Result<Vec<u32>, StoreError> {
        let b = self.take(n * 4, context)?;
        Ok(b.chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Read an `i32` column of `n` elements.
    pub fn i32_column(&mut self, n: usize, context: &'static str) -> Result<Vec<i32>, StoreError> {
        let b = self.take(n * 4, context)?;
        Ok(b.chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Read a `u16` column of `n` elements.
    pub fn u16_column(&mut self, n: usize, context: &'static str) -> Result<Vec<u16>, StoreError> {
        let b = self.take(n * 2, context)?;
        Ok(b.chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect())
    }

    /// Read a `u8` column of `n` elements.
    pub fn u8_column(&mut self, n: usize, context: &'static str) -> Result<Vec<u8>, StoreError> {
        Ok(self.take(n, context)?.to_vec())
    }
}

// ---------------------------------------------------------------------------
// Sectioned container
// ---------------------------------------------------------------------------

/// Assemble a container from `(section id, payload)` pairs: magic, version, the
/// section table (with per-section CRC-32), then the payloads.
pub fn write_container(magic: [u8; 4], version: u32, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let header_len = 4 + 4 + 4 + sections.len() * (4 + 8 + 8 + 4);
    let mut w = Writer::new();
    w.bytes(&magic);
    w.u32(version);
    w.u32(sections.len() as u32);
    let mut offset = header_len as u64;
    for (id, payload) in sections {
        w.u32(*id);
        w.u64(offset);
        w.u64(payload.len() as u64);
        w.u32(crc32(payload));
        offset += payload.len() as u64;
    }
    for (_, payload) in sections {
        w.bytes(payload);
    }
    w.into_bytes()
}

/// Parse a container: verify magic and version, bounds-check the section table,
/// verify every section's checksum, and return `(id, payload)` pairs in table
/// order.
pub fn read_container(
    bytes: &[u8],
    magic: [u8; 4],
    supported_version: u32,
) -> Result<Vec<(u32, &[u8])>, StoreError> {
    let mut r = Reader::new(bytes);
    let found = r.take(4, "container magic")?;
    if found != magic {
        return Err(StoreError::BadMagic {
            found: [found[0], found[1], found[2], found[3]],
        });
    }
    let version = r.u32("format version")?;
    if version != supported_version {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: supported_version,
        });
    }
    let count = r.u32("section count")? as usize;
    if count > MAX_SECTIONS {
        return Err(StoreError::Corrupt {
            context: "section count exceeds the format's sanity bound",
        });
    }
    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u32("section id")?;
        let offset = r.u64("section offset")? as usize;
        let len = r.u64("section length")? as usize;
        let expected = r.u32("section checksum")?;
        let end = offset.checked_add(len).ok_or(StoreError::Corrupt {
            context: "section extent overflows",
        })?;
        if end > bytes.len() {
            return Err(StoreError::Truncated {
                context: "section payload",
                needed: end,
                available: bytes.len(),
            });
        }
        let payload = &bytes[offset..end];
        let found = crc32(payload);
        if found != expected {
            return Err(StoreError::ChecksumMismatch {
                section: id,
                expected,
                found,
            });
        }
        sections.push((id, payload));
    }
    Ok(sections)
}

/// Find a required section by id.
pub fn require_section<'a>(sections: &[(u32, &'a [u8])], id: u32) -> Result<&'a [u8], StoreError> {
    sections
        .iter()
        .find(|(sid, _)| *sid == id)
        .map(|(_, payload)| *payload)
        .ok_or(StoreError::MissingSection { section: id })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE crc32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.i32(-42);
        w.u32_column(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert_eq!(r.u16("t").unwrap(), 0xBEEF);
        assert_eq!(r.u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("t").unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.i32("t").unwrap(), -42);
        assert_eq!(r.u32_column(3, "t").unwrap(), vec![1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn reads_past_the_end_are_truncation_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(
            r.u32("four bytes"),
            Err(StoreError::Truncated { needed: 4, .. })
        ));
    }

    #[test]
    fn container_round_trips_and_rejects_corruption() {
        let sections = vec![(1u32, vec![1u8, 2, 3]), (2u32, vec![9u8; 100])];
        let bytes = write_container(*b"TEST", 3, &sections);
        let parsed = read_container(&bytes, *b"TEST", 3).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], (1, &[1u8, 2, 3][..]));
        assert_eq!(require_section(&parsed, 2).unwrap().len(), 100);
        assert!(matches!(
            require_section(&parsed, 9),
            Err(StoreError::MissingSection { section: 9 })
        ));

        // Wrong magic.
        assert!(matches!(
            read_container(&bytes, *b"NOPE", 3),
            Err(StoreError::BadMagic { .. })
        ));
        // Wrong version.
        assert!(matches!(
            read_container(&bytes, *b"TEST", 4),
            Err(StoreError::UnsupportedVersion { found: 3, .. })
        ));
        // Truncation at every prefix either fails or never misreads.
        for k in 0..bytes.len() {
            assert!(read_container(&bytes[..k], *b"TEST", 3).is_err());
        }
        // A flipped payload byte fails its section checksum.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(matches!(
            read_container(&corrupt, *b"TEST", 3),
            Err(StoreError::ChecksumMismatch { section: 2, .. })
        ));
    }
}
