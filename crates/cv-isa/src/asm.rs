//! A small assembler for constructing guest programs.
//!
//! `cv-apps` uses [`ProgramBuilder`] to assemble the synthetic vulnerable browser. The
//! builder produces a [`BinaryImage`] — a stripped binary — plus an optional *side
//! table* of symbols that exists purely for tests and debugging. ClearView itself never
//! consumes the symbol table; it sees only the image, exactly as the real system sees
//! only a stripped executable.

use crate::{encode, Addr, BinaryImage, Cond, Inst, IsaError, MemRef, Operand, Reg, Word};
use std::collections::BTreeMap;

/// A forward-referenceable code or data label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(usize);

#[derive(Debug, Clone)]
struct LabelState {
    name: String,
    addr: Option<Addr>,
}

/// Where a fixup must be written once the referenced label is bound.
#[derive(Debug, Clone, Copy)]
enum FixupSite {
    /// Index into the code word vector.
    Code(usize),
    /// Index into the data word vector.
    Data(usize),
}

/// Builds a [`BinaryImage`] incrementally.
///
/// Instructions are emitted at monotonically increasing addresses starting at the code
/// base of the layout, so [`ProgramBuilder::here`] is always the address the *next*
/// instruction will occupy, and emit methods return the address of the instruction they
/// emitted — which lets guest-application authors record the addresses of seeded defect
/// sites for test assertions without giving ClearView any symbol information.
#[derive(Debug)]
pub struct ProgramBuilder {
    layout: crate::MemoryLayout,
    code: Vec<Word>,
    data: Vec<Word>,
    labels: Vec<LabelState>,
    fixups: Vec<(FixupSite, Label)>,
    symbols: BTreeMap<String, Addr>,
    entry: Option<Label>,
}

impl ProgramBuilder {
    /// Create a builder against the default [`crate::MemoryLayout`].
    pub fn new() -> Self {
        Self::with_layout(crate::MemoryLayout::default())
    }

    /// Create a builder against an explicit layout.
    pub fn with_layout(layout: crate::MemoryLayout) -> Self {
        ProgramBuilder {
            layout,
            code: Vec::new(),
            data: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            symbols: BTreeMap::new(),
            entry: None,
        }
    }

    /// The layout this builder assembles against.
    pub fn layout(&self) -> crate::MemoryLayout {
        self.layout
    }

    /// The address at which the next instruction will be emitted.
    pub fn here(&self) -> Addr {
        self.layout.code_base + self.code.len() as u32
    }

    /// The address at which the next data word will be placed.
    pub fn data_here(&self) -> Addr {
        self.layout.data_base + self.data.len() as u32
    }

    /// Create a new, unbound label.
    pub fn new_label(&mut self, name: &str) -> Label {
        let l = Label(self.labels.len());
        self.labels.push(LabelState {
            name: name.to_string(),
            addr: None,
        });
        l
    }

    /// Bind `label` to the current code address.
    ///
    /// Returns the bound address. Binding the same label twice is an error surfaced at
    /// [`ProgramBuilder::build`] time via [`IsaError::DuplicateLabel`].
    pub fn bind(&mut self, label: Label) -> Addr {
        let here = self.here();
        let state = &mut self.labels[label.0];
        if state.addr.is_some() {
            // Record the duplicate by clearing the address; build() reports it.
            self.fixups.push((FixupSite::Code(usize::MAX), label));
        }
        state.addr = Some(here);
        here
    }

    /// Create a label, bind it here, and record it in the debug symbol table.
    pub fn function(&mut self, name: &str) -> Label {
        let l = self.new_label(name);
        let addr = self.bind(l);
        self.symbols.insert(name.to_string(), addr);
        l
    }

    /// The address a label is bound to, if bound.
    pub fn label_addr(&self, label: Label) -> Option<Addr> {
        self.labels[label.0].addr
    }

    /// Set the entry point of the program.
    pub fn set_entry(&mut self, label: Label) {
        self.entry = Some(label);
    }

    /// Emit a raw instruction and return its address.
    pub fn emit(&mut self, inst: Inst) -> Addr {
        let addr = self.here();
        self.code.extend(encode(inst));
        addr
    }

    /// Emit an instruction whose last encoded word is a code-label reference
    /// (direct jumps and calls). The word is fixed up at build time.
    fn emit_with_target_fixup(&mut self, inst: Inst, label: Label) -> Addr {
        let addr = self.here();
        let words = encode(inst);
        let target_pos = self.code.len() + words.len() - 1;
        self.code.extend(words);
        self.fixups.push((FixupSite::Code(target_pos), label));
        addr
    }

    // ----- Convenience emitters -------------------------------------------------

    /// `mov dst, src`.
    pub fn mov(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> Addr {
        self.emit(Inst::Mov {
            dst: dst.into(),
            src: src.into(),
        })
    }

    /// `lea dst, mem`.
    pub fn lea(&mut self, dst: Reg, mem: MemRef) -> Addr {
        self.emit(Inst::Lea { dst, mem })
    }

    /// `add dst, src`.
    pub fn add(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> Addr {
        self.emit(Inst::Add {
            dst: dst.into(),
            src: src.into(),
        })
    }

    /// `sub dst, src`.
    pub fn sub(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> Addr {
        self.emit(Inst::Sub {
            dst: dst.into(),
            src: src.into(),
        })
    }

    /// `imul dst, src`.
    pub fn mul(&mut self, dst: Reg, src: impl Into<Operand>) -> Addr {
        self.emit(Inst::Mul {
            dst,
            src: src.into(),
        })
    }

    /// `and dst, src`.
    pub fn and(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> Addr {
        self.emit(Inst::And {
            dst: dst.into(),
            src: src.into(),
        })
    }

    /// `shl dst, amount`.
    pub fn shl(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> Addr {
        self.emit(Inst::Shl {
            dst: dst.into(),
            src: src.into(),
        })
    }

    /// `shr dst, amount`.
    pub fn shr(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> Addr {
        self.emit(Inst::Shr {
            dst: dst.into(),
            src: src.into(),
        })
    }

    /// `cmp a, b`.
    pub fn cmp(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Addr {
        self.emit(Inst::Cmp {
            a: a.into(),
            b: b.into(),
        })
    }

    /// `test a, b`.
    pub fn test(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Addr {
        self.emit(Inst::Test {
            a: a.into(),
            b: b.into(),
        })
    }

    /// `push src`.
    pub fn push(&mut self, src: impl Into<Operand>) -> Addr {
        self.emit(Inst::Push { src: src.into() })
    }

    /// `pop dst`.
    pub fn pop(&mut self, dst: impl Into<Operand>) -> Addr {
        self.emit(Inst::Pop { dst: dst.into() })
    }

    /// `jmp label`.
    pub fn jmp(&mut self, label: Label) -> Addr {
        self.emit_with_target_fixup(Inst::Jmp { target: 0 }, label)
    }

    /// `jmp *target`.
    pub fn jmp_indirect(&mut self, target: impl Into<Operand>) -> Addr {
        self.emit(Inst::JmpIndirect {
            target: target.into(),
        })
    }

    /// `jcc label`.
    pub fn jcc(&mut self, cond: Cond, label: Label) -> Addr {
        self.emit_with_target_fixup(Inst::Jcc { cond, target: 0 }, label)
    }

    /// `call label`.
    pub fn call(&mut self, label: Label) -> Addr {
        self.emit_with_target_fixup(Inst::Call { target: 0 }, label)
    }

    /// `call *target`.
    pub fn call_indirect(&mut self, target: impl Into<Operand>) -> Addr {
        self.emit(Inst::CallIndirect {
            target: target.into(),
        })
    }

    /// `ret`.
    pub fn ret(&mut self) -> Addr {
        self.emit(Inst::Ret)
    }

    /// `alloc dst, size`.
    pub fn alloc(&mut self, dst: Reg, size: impl Into<Operand>) -> Addr {
        self.emit(Inst::Alloc {
            size: size.into(),
            dst,
        })
    }

    /// `free ptr`.
    pub fn free(&mut self, ptr: impl Into<Operand>) -> Addr {
        self.emit(Inst::Free { ptr: ptr.into() })
    }

    /// `copy dst, src, len`.
    pub fn copy(
        &mut self,
        dst: impl Into<Operand>,
        src: impl Into<Operand>,
        len: impl Into<Operand>,
    ) -> Addr {
        self.emit(Inst::Copy {
            dst: dst.into(),
            src: src.into(),
            len: len.into(),
        })
    }

    /// `in dst, port`.
    pub fn input(&mut self, dst: Reg, port: crate::Port) -> Addr {
        self.emit(Inst::In { dst, port })
    }

    /// `out src, port`.
    pub fn output(&mut self, src: impl Into<Operand>, port: crate::Port) -> Addr {
        self.emit(Inst::Out {
            src: src.into(),
            port,
        })
    }

    /// `halt`.
    pub fn halt(&mut self) -> Addr {
        self.emit(Inst::Halt)
    }

    /// `nop`.
    pub fn nop(&mut self) -> Addr {
        self.emit(Inst::Nop)
    }

    // ----- Data section ----------------------------------------------------------

    /// Append one word of static data; returns its address.
    pub fn data_word(&mut self, w: Word) -> Addr {
        let addr = self.data_here();
        self.data.push(w);
        addr
    }

    /// Append several words of static data; returns the address of the first.
    pub fn data_words(&mut self, ws: &[Word]) -> Addr {
        let addr = self.data_here();
        self.data.extend_from_slice(ws);
        addr
    }

    /// Append a data word holding the (eventual) address of a code label — how the
    /// guest applications build virtual-function tables. Returns the word's address.
    pub fn data_code_ref(&mut self, label: Label) -> Addr {
        let addr = self.data_here();
        self.fixups.push((FixupSite::Data(self.data.len()), label));
        self.data.push(0);
        addr
    }

    /// Record a named address in the debug symbol table (tests only).
    pub fn note_symbol(&mut self, name: &str, addr: Addr) {
        self.symbols.insert(name.to_string(), addr);
    }

    /// Assemble the program into a stripped [`BinaryImage`].
    pub fn build(self) -> Result<BinaryImage, IsaError> {
        self.build_with_symbols().map(|(image, _)| image)
    }

    /// Assemble and also return the debug symbol table (used only by tests and the
    /// experiment harnesses; never by ClearView components).
    pub fn build_with_symbols(mut self) -> Result<(BinaryImage, BTreeMap<String, Addr>), IsaError> {
        if self.code.len() > self.layout.code_size as usize {
            return Err(IsaError::CodeTooLarge {
                required: self.code.len(),
                available: self.layout.code_size as usize,
            });
        }
        if self.data.len() > self.layout.data_size as usize {
            return Err(IsaError::DataTooLarge {
                required: self.data.len(),
                available: self.layout.data_size as usize,
            });
        }
        for (site, label) in &self.fixups {
            let state = &self.labels[label.0];
            if let FixupSite::Code(usize::MAX) = site {
                return Err(IsaError::DuplicateLabel(state.name.clone()));
            }
            let addr = state
                .addr
                .ok_or_else(|| IsaError::UndefinedLabel(state.name.clone()))?;
            match *site {
                FixupSite::Code(pos) => self.code[pos] = addr,
                FixupSite::Data(pos) => self.data[pos] = addr,
            }
        }
        let entry = match self.entry {
            Some(l) => self.labels[l.0]
                .addr
                .ok_or_else(|| IsaError::UndefinedLabel(self.labels[l.0].name.clone()))?,
            None => self.layout.code_base,
        };
        Ok((
            BinaryImage {
                layout: self.layout,
                code: self.code,
                data: self.data,
                entry,
            },
            self.symbols,
        ))
    }
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_all, Port};

    #[test]
    fn assembles_a_simple_loop() {
        let mut b = ProgramBuilder::new();
        let entry = b.function("main");
        b.mov(Reg::Ecx, 3u32);
        let loop_top = b.new_label("loop");
        b.bind(loop_top);
        b.sub(Reg::Ecx, 1u32);
        b.cmp(Reg::Ecx, 0u32);
        b.jcc(Cond::Ne, loop_top);
        b.halt();
        b.set_entry(entry);
        let image = b.build().expect("build");
        assert_eq!(image.entry, image.layout.code_base);
        let decoded = decode_all(&image.code, image.layout.code_base).expect("decode");
        // mov, sub, cmp, jcc, halt
        assert_eq!(decoded.len(), 5);
        // The jcc target must point back at the sub instruction.
        let sub_addr = decoded[1].addr;
        match decoded[3].inst {
            Inst::Jcc { target, .. } => assert_eq!(target, sub_addr),
            other => panic!("expected jcc, got {other}"),
        }
    }

    #[test]
    fn forward_references_are_fixed_up() {
        let mut b = ProgramBuilder::new();
        let entry = b.function("main");
        let done = b.new_label("done");
        b.jmp(done);
        b.nop();
        b.nop();
        let done_addr_expected = b.here();
        b.bind(done);
        b.halt();
        b.set_entry(entry);
        let image = b.build().expect("build");
        let decoded = decode_all(&image.code, image.layout.code_base).expect("decode");
        match decoded[0].inst {
            Inst::Jmp { target } => assert_eq!(target, done_addr_expected),
            other => panic!("expected jmp, got {other}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let entry = b.function("main");
        let nowhere = b.new_label("nowhere");
        b.jmp(nowhere);
        b.set_entry(entry);
        assert!(matches!(b.build(), Err(IsaError::UndefinedLabel(name)) if name == "nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let entry = b.function("main");
        let l = b.new_label("twice");
        b.bind(l);
        b.nop();
        b.bind(l);
        b.halt();
        b.set_entry(entry);
        assert!(matches!(b.build(), Err(IsaError::DuplicateLabel(name)) if name == "twice"));
    }

    #[test]
    fn data_code_refs_hold_function_addresses() {
        let mut b = ProgramBuilder::new();
        let entry = b.function("main");
        b.halt();
        let callee = b.function("callee");
        b.ret();
        let vtable = b.data_code_ref(callee);
        b.set_entry(entry);
        let callee_addr = b.label_addr(callee).unwrap();
        let image = b.build().expect("build");
        let data_index = (vtable - image.layout.data_base) as usize;
        assert_eq!(image.data[data_index], callee_addr);
    }

    #[test]
    fn symbols_are_returned_separately_from_the_image() {
        let mut b = ProgramBuilder::new();
        let entry = b.function("main");
        b.input(Reg::Eax, Port::Input);
        b.output(Reg::Eax, Port::Render);
        b.halt();
        b.set_entry(entry);
        let (image, symbols) = b.build_with_symbols().expect("build");
        assert!(symbols.contains_key("main"));
        assert_eq!(symbols["main"], image.entry);
        // The image itself carries no symbol data; its public fields are only
        // layout, code, data, and entry.
        assert!(!image.code.is_empty());
    }

    #[test]
    fn code_too_large_is_reported() {
        let layout = crate::MemoryLayout {
            code_size: 4,
            ..Default::default()
        };
        let mut b = ProgramBuilder::with_layout(layout);
        let entry = b.function("main");
        for _ in 0..8 {
            b.nop();
        }
        b.set_entry(entry);
        assert!(matches!(b.build(), Err(IsaError::CodeTooLarge { .. })));
    }
}
