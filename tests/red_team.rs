//! The Red Team exercise (Section 4 of the paper), reproduced end to end.
//!
//! These tests drive the full ClearView pipeline — learning, monitoring, correlated
//! invariant identification, repair generation, and repair evaluation — against the ten
//! exploits of Table 1 and check the paper's headline results:
//!
//! * every attack is detected and blocked;
//! * seven of the ten exploits are patched under the Red Team configuration;
//! * two more are patched after reconfiguration (deeper stack walk, expanded learning);
//! * exploit 307259 is never patched (its invariant is outside the template set);
//! * interleaved exploit variants produce the same patch after the same number of
//!   attacks;
//! * the final patched browser renders every evaluation page identically to the
//!   unpatched browser (no induced autoimmune behaviour);
//! * legitimate pages never trigger patch generation (no false positives).

use clearview::apps::{
    evaluation_suite, expanded_learning_suite, learning_suite, red_team_exploits, Browser, Exploit,
    Reconfiguration,
};
use clearview::core::{learn_model, ClearViewConfig, ProtectedApplication};
use clearview::inference::LearnedModel;
use clearview::runtime::{MonitorConfig, RunStatus};

const MAX_PRESENTATIONS: u32 = 40;

fn model_from(pages: &[Vec<u32>]) -> (Browser, LearnedModel) {
    let browser = Browser::build();
    let (model, _) = learn_model(&browser.image, pages, MonitorConfig::full());
    (browser, model)
}

/// Present the exploit repeatedly until the patched application survives it. Returns the
/// number of presentations when a presentation finally completes normally, or `None`
/// if ClearView never finds a successful patch.
fn presentations_to_survive(app: &mut ProtectedApplication, pages: &[Vec<u32>]) -> Option<u32> {
    for i in 1..=MAX_PRESENTATIONS {
        let page = &pages[(i as usize - 1) % pages.len()];
        let out = app.present(page);
        match out.status {
            RunStatus::Completed => return Some(i),
            RunStatus::Failure(_) | RunStatus::Crash(_) => {}
        }
    }
    None
}

fn protect_against(
    exploit: &Exploit,
    config: ClearViewConfig,
    learning: &[Vec<u32>],
) -> Option<u32> {
    let (browser, model) = model_from(learning);
    let mut app = ProtectedApplication::new(browser.image.clone(), model, config);
    presentations_to_survive(&mut app, &[exploit.page().to_vec()])
}

#[test]
fn every_attack_is_detected_and_blocked() {
    let (browser, model) = model_from(&learning_suite());
    for exploit in red_team_exploits(&browser) {
        let mut app = ProtectedApplication::new(
            browser.image.clone(),
            model.clone(),
            ClearViewConfig::default(),
        );
        let out = app.present(exploit.page());
        assert!(
            out.blocked,
            "exploit {} must be blocked on first presentation",
            exploit.bugzilla
        );
        assert!(
            out.rendered.is_empty(),
            "exploit {} terminated before rendering anything",
            exploit.bugzilla
        );
    }
}

#[test]
fn seven_of_ten_exploits_are_patched_under_the_red_team_configuration() {
    let browser = Browser::build();
    let exploits = red_team_exploits(&browser);
    let mut patched = Vec::new();
    let mut unpatched = Vec::new();
    for exploit in &exploits {
        let presentations = protect_against(exploit, ClearViewConfig::default(), &learning_suite());
        match presentations {
            Some(n) => patched.push((exploit.bugzilla, n)),
            None => unpatched.push(exploit.bugzilla),
        }
    }
    let patched_ids: Vec<u32> = patched.iter().map(|(b, _)| *b).collect();
    for exploit in &exploits {
        if exploit.patched_in_exercise() {
            assert!(
                patched_ids.contains(&exploit.bugzilla),
                "exploit {} should be patched under the default configuration (patched: {patched:?})",
                exploit.bugzilla
            );
        } else {
            assert!(
                unpatched.contains(&exploit.bugzilla),
                "exploit {} should NOT be patched under the default configuration",
                exploit.bugzilla
            );
        }
    }
    assert_eq!(
        patched.len(),
        7,
        "seven of ten exploits patched: {patched:?}"
    );
    assert_eq!(unpatched.len(), 3, "three remain unpatched: {unpatched:?}");
}

#[test]
fn presentation_counts_have_the_shape_of_table_1() {
    // The paper's minimum is four presentations (detect, two checked replays, one
    // successful repair evaluation); exploits whose first repairs fail take more; the
    // three-defect exploit 311710 takes the most.
    let browser = Browser::build();
    let exploits = red_team_exploits(&browser);
    let mut counts = std::collections::BTreeMap::new();
    for exploit in exploits.iter().filter(|e| e.patched_in_exercise()) {
        let n = protect_against(exploit, ClearViewConfig::default(), &learning_suite())
            .unwrap_or_else(|| panic!("exploit {} should be patched", exploit.bugzilla));
        counts.insert(exploit.bugzilla, n);
    }
    for (bugzilla, n) in &counts {
        assert!(
            *n >= 4,
            "exploit {bugzilla}: at least four presentations are required, got {n}"
        );
    }
    // First-repair-works exploits need exactly the minimum.
    assert_eq!(counts[&290162], 4);
    assert_eq!(counts[&312278], 4);
    assert_eq!(counts[&296134], 4);
    // Exploits whose earlier candidate repairs fail need more presentations.
    assert!(
        counts[&295854] > 4,
        "295854's first repair fails: {}",
        counts[&295854]
    );
    assert!(
        counts[&269095] > 4,
        "269095 needs a control-flow repair: {}",
        counts[&269095]
    );
    assert!(
        counts[&320182] > 4,
        "320182 needs a control-flow repair: {}",
        counts[&320182]
    );
    // The three chained defects of 311710 dominate the table.
    assert!(
        counts[&311710] >= 10,
        "311710 repairs three defects in sequence: {}",
        counts[&311710]
    );
    let max = counts.values().max().unwrap();
    assert_eq!(
        counts[&311710], *max,
        "311710 is the outlier, as in Table 1"
    );
}

#[test]
fn stack_walk_reconfiguration_patches_285595() {
    let browser = Browser::build();
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 285595)
        .unwrap();
    assert_eq!(exploit.reconfiguration, Reconfiguration::StackWalk);
    // Default configuration: not patched.
    assert_eq!(
        protect_against(&exploit, ClearViewConfig::default(), &learning_suite()),
        None
    );
    // Considering one more procedure up the call stack finds the caller's invariant.
    let n = protect_against(
        &exploit,
        ClearViewConfig::with_stack_walk(2),
        &learning_suite(),
    );
    assert!(
        n.is_some(),
        "285595 is patched once the stack walk is enabled"
    );
}

#[test]
fn expanded_learning_suite_patches_325403() {
    let browser = Browser::build();
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 325403)
        .unwrap();
    assert_eq!(exploit.reconfiguration, Reconfiguration::ExpandedLearning);
    assert_eq!(
        protect_against(&exploit, ClearViewConfig::default(), &learning_suite()),
        None,
        "the default learning suite lacks coverage of the vulnerable feature"
    );
    let n = protect_against(
        &exploit,
        ClearViewConfig::default(),
        &expanded_learning_suite(),
    );
    assert!(
        n.is_some(),
        "325403 is patched once learning covers the feature"
    );
}

#[test]
fn exploit_307259_is_never_patched_but_always_blocked() {
    let browser = Browser::build();
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 307259)
        .unwrap();
    assert_eq!(exploit.reconfiguration, Reconfiguration::NotRepairable);
    for learning in [learning_suite(), expanded_learning_suite()] {
        let (b, model) = model_from(&learning);
        let _ = b;
        let browser = Browser::build();
        let mut app = ProtectedApplication::new(
            browser.image.clone(),
            model,
            ClearViewConfig::with_stack_walk(3),
        );
        for _ in 0..12 {
            let out = app.present(exploit.page());
            assert!(
                !matches!(out.status, RunStatus::Completed),
                "307259 must keep being blocked, never survived"
            );
            assert!(out.blocked || matches!(out.status, RunStatus::Crash(_)));
        }
    }
}

#[test]
fn multiple_variant_attacks_yield_one_patch_covering_all_variants() {
    let (browser, model) = model_from(&learning_suite());
    for bugzilla in [269095u32, 290162, 296134] {
        let exploit = red_team_exploits(&browser)
            .into_iter()
            .find(|e| e.bugzilla == bugzilla)
            .unwrap();
        assert!(exploit.pages.len() >= 2, "exploit {bugzilla} has variants");

        // Baseline: single-variant attack.
        let mut app = ProtectedApplication::new(
            browser.image.clone(),
            model.clone(),
            ClearViewConfig::default(),
        );
        let single = presentations_to_survive(&mut app, &[exploit.page().to_vec()])
            .expect("single-variant attack is patched");

        // Interleaved variants.
        let mut app = ProtectedApplication::new(
            browser.image.clone(),
            model.clone(),
            ClearViewConfig::default(),
        );
        let interleaved = presentations_to_survive(&mut app, &exploit.pages)
            .expect("interleaved variants are patched");
        assert_eq!(
            single, interleaved,
            "exploit {bugzilla}: the same patch arrives after the same number of attacks"
        );
        // And the resulting patch protects every variant.
        for page in &exploit.pages {
            let out = app.present(page);
            assert!(
                matches!(out.status, RunStatus::Completed),
                "exploit {bugzilla}: patched browser survives every variant"
            );
        }
    }
}

#[test]
fn autoimmune_evaluation_rendering_is_bit_identical() {
    let (browser, model) = model_from(&expanded_learning_suite());
    // Unpatched baseline rendering of the 57 evaluation pages.
    let mut baseline_app = ProtectedApplication::new(
        browser.image.clone(),
        model.clone(),
        ClearViewConfig::default(),
    );
    let baseline: Vec<Vec<u32>> = evaluation_suite()
        .iter()
        .map(|p| baseline_app.present(p).rendered)
        .collect();

    // Attack with every patchable exploit until patched, accumulating patches.
    let mut app = ProtectedApplication::new(
        browser.image.clone(),
        model,
        ClearViewConfig::with_stack_walk(2),
    );
    for exploit in red_team_exploits(&browser) {
        if exploit.reconfiguration == Reconfiguration::NotRepairable {
            continue;
        }
        presentations_to_survive(&mut app, &[exploit.page().to_vec()]);
    }
    assert!(app.applied_hook_count() > 0, "patches are in place");

    // The Red Team then displayed all evaluation pages on the patched browser.
    let patched: Vec<Vec<u32>> = evaluation_suite()
        .iter()
        .map(|p| app.present(p).rendered)
        .collect();
    assert_eq!(
        baseline, patched,
        "bit-identical displays on all 57 evaluation pages"
    );
}

#[test]
fn false_positive_evaluation_no_patches_for_legitimate_pages() {
    let (browser, model) = model_from(&learning_suite());
    let mut app =
        ProtectedApplication::new(browser.image.clone(), model, ClearViewConfig::default());
    for page in evaluation_suite() {
        let out = app.present(&page);
        assert!(matches!(out.status, RunStatus::Completed));
        assert!(!out.blocked);
    }
    assert!(
        app.failure_locations().is_empty(),
        "no failure response was ever started"
    );
    assert_eq!(app.applied_hook_count(), 0, "no patches were generated");
}
