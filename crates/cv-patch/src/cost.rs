//! Simulated patch build and install costs.
//!
//! In the real system, ClearView generates a snippet of C code per invariant check or
//! repair, compiles it into a DLL, and pushes it through the Determina patch management
//! system to the client machines (Section 3.2); Table 3 reports those build and install
//! times per exploit. Our patches are compiled Rust hooks, so the real cost is
//! negligible — this model assigns simulated seconds to the same activities so the
//! Table 3 harness can reproduce the per-phase breakdown's shape.

use cv_inference::Invariant;
use serde::{Deserialize, Serialize};

/// Per-kind counts of invariants (the `[x, y, z]` annotations in Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvariantCounts {
    /// One-of invariants.
    pub one_of: u32,
    /// Lower-bound invariants.
    pub lower_bound: u32,
    /// Less-than invariants.
    pub less_than: u32,
}

impl InvariantCounts {
    /// Count invariants by kind.
    pub fn of<'a>(invariants: impl IntoIterator<Item = &'a Invariant>) -> Self {
        let mut c = InvariantCounts::default();
        for inv in invariants {
            match inv {
                Invariant::OneOf { .. } => c.one_of += 1,
                Invariant::LowerBound { .. } => c.lower_bound += 1,
                Invariant::LessThan { .. } => c.less_than += 1,
                Invariant::StackPointerOffset { .. } => {}
            }
        }
        c
    }

    /// Total invariants counted.
    pub fn total(&self) -> u32 {
        self.one_of + self.lower_bound + self.less_than
    }

    /// The Table 3 annotation form `[one-of, lower-bound, less-than]`.
    pub fn annotation(&self) -> String {
        format!("[{},{},{}]", self.one_of, self.lower_bound, self.less_than)
    }
}

/// Simulated costs (in seconds) for generating, compiling, and installing patches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatchCostModel {
    /// Fixed cost per batch of patches built (code generation + compiler start-up).
    pub build_base: f64,
    /// Additional cost per one-of invariant in a batch.
    pub build_one_of: f64,
    /// Additional cost per lower-bound invariant in a batch.
    pub build_lower_bound: f64,
    /// Additional cost per less-than invariant in a batch.
    pub build_less_than: f64,
    /// Fixed cost per batch pushed through the patch management system.
    pub install_base: f64,
    /// Additional install cost per patch in the batch.
    pub install_per_patch: f64,
}

impl Default for PatchCostModel {
    fn default() -> Self {
        PatchCostModel {
            build_base: 7.5,
            build_one_of: 2.2,
            build_lower_bound: 1.0,
            build_less_than: 1.6,
            install_base: 5.5,
            install_per_patch: 0.6,
        }
    }
}

impl PatchCostModel {
    /// Simulated seconds to build a batch of patches for `counts` invariants.
    pub fn build_time(&self, counts: InvariantCounts) -> f64 {
        if counts.total() == 0 {
            return 0.0;
        }
        self.build_base
            + counts.one_of as f64 * self.build_one_of
            + counts.lower_bound as f64 * self.build_lower_bound
            + counts.less_than as f64 * self.build_less_than
    }

    /// Simulated seconds to install a batch of `patches` patches on a client.
    pub fn install_time(&self, patches: u32) -> f64 {
        if patches == 0 {
            return 0.0;
        }
        self.install_base + patches as f64 * self.install_per_patch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_inference::Variable;
    use cv_isa::{Operand, Reg};

    #[test]
    fn counts_and_annotation() {
        let var = Variable::read(0x41000, 0, Operand::Reg(Reg::Ecx));
        let invs = vec![
            Invariant::OneOf {
                var,
                values: [1u32].into_iter().collect(),
            },
            Invariant::LowerBound { var, min: 0 },
            Invariant::LowerBound { var, min: 1 },
            Invariant::LessThan { a: var, b: var },
            Invariant::StackPointerOffset {
                proc_entry: 1,
                at: 2,
                offset: 0,
            },
        ];
        let c = InvariantCounts::of(&invs);
        assert_eq!((c.one_of, c.lower_bound, c.less_than), (1, 2, 1));
        assert_eq!(c.total(), 4);
        assert_eq!(c.annotation(), "[1,2,1]");
    }

    #[test]
    fn build_time_scales_with_counts_and_is_zero_for_empty_batches() {
        let m = PatchCostModel::default();
        assert_eq!(m.build_time(InvariantCounts::default()), 0.0);
        let small = m.build_time(InvariantCounts {
            one_of: 1,
            lower_bound: 0,
            less_than: 1,
        });
        let large = m.build_time(InvariantCounts {
            one_of: 1,
            lower_bound: 40,
            less_than: 10,
        });
        assert!(small > 5.0, "includes the compiler start-up base cost");
        assert!(large > small * 2.0, "large batches take appreciably longer");
    }

    #[test]
    fn install_time_scales_with_patch_count() {
        let m = PatchCostModel::default();
        assert_eq!(m.install_time(0), 0.0);
        assert!(m.install_time(1) > 5.0);
        assert!(m.install_time(10) > m.install_time(1));
    }
}
