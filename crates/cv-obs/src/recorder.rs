//! The event recorder: spans, instants, counters, and the process-wide handle.

use crate::histogram::FixedHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum numeric arguments a single event carries. Events are stamped with a
/// handful of small identifiers (epoch, shard, member counts); a fixed inline
/// capacity keeps argument handling allocation-free on the recording path.
const MAX_ARGS: usize = 6;

/// A small inline list of `(key, value)` arguments.
pub(crate) type ArgList = Vec<(&'static str, u64)>;

/// What kind of event a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: something with a beginning and a duration.
    Span {
        /// The span's duration in nanoseconds.
        dur_nanos: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A monotonic counter sample (the counter's value at this timestamp).
    Counter {
        /// The sampled counter value.
        value: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Static event name (`"fleet.execution"`, `"store.snapshot_encode"`, …).
    pub name: &'static str,
    /// Static category (`"fleet"`, `"store"`, `"churn"`, `"timeline"`, …).
    pub cat: &'static str,
    /// Span / instant / counter payload.
    pub kind: EventKind,
    /// Start time (spans) or occurrence time (instants, counters) in nanoseconds
    /// since the recorder's time base.
    pub ts_nanos: u64,
    /// Dense id of the recording thread (assigned on each thread's first event).
    pub tid: u64,
    /// Small numeric arguments (epoch, shard, member counts, …).
    pub args: ArgList,
}

impl TraceEvent {
    /// The value of argument `key`, if the event carries it.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// The span duration, if this event is a span.
    pub fn span_duration(&self) -> Option<Duration> {
        match self.kind {
            EventKind::Span { dur_nanos } => Some(Duration::from_nanos(dur_nanos)),
            _ => None,
        }
    }
}

/// The mutable recorder state, behind one mutex. Recording only takes the lock
/// while enabled; the disabled fast path never touches it.
#[derive(Default)]
struct Inner {
    events: Vec<TraceEvent>,
    /// Per-span-name latency histograms (maintained while enabled): O(1) memory
    /// live statistics even when the event buffer is periodically drained.
    histograms: BTreeMap<&'static str, FixedHistogram>,
}

/// A thread-safe event recorder.
///
/// Most code records through the process-wide handle ([`recorder()`]); tests can
/// construct private instances. The recorder starts **disabled**: spans,
/// instants, and counters are dropped on the floor (without locking or
/// allocating) until [`Recorder::set_enabled`]`(true)`.
pub struct Recorder {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
    base: OnceLock<Instant>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A new, disabled recorder with an empty buffer.
    pub const fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                events: Vec::new(),
                histograms: BTreeMap::new(),
            }),
            base: OnceLock::new(),
        }
    }

    /// Enable or disable event retention. Disabling does not clear what was
    /// already recorded.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// True if events are currently being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The recorder's time base (first use pins it).
    fn base(&self) -> Instant {
        *self.base.get_or_init(Instant::now)
    }

    fn now_nanos(&self) -> u64 {
        self.base().elapsed().as_nanos() as u64
    }

    /// Start a **trace-only** span: while the recorder is disabled this is one
    /// relaxed atomic load — no lock, no allocation, not even a clock read — and
    /// the returned guard is inert. Use for instrumentation whose duration
    /// nobody consumes besides the trace (the cv-store codecs).
    pub fn span(&self, name: &'static str, cat: &'static str) -> SpanGuard<'_> {
        if self.is_enabled() {
            SpanGuard {
                rec: Some(self),
                start: Some(Instant::now()),
                name,
                cat,
                args: Vec::new(),
            }
        } else {
            SpanGuard {
                rec: None,
                start: None,
                name,
                cat,
                args: Vec::new(),
            }
        }
    }

    /// Start a span whose measured duration the caller needs **regardless** of
    /// whether tracing is on: the clock is always read and
    /// [`SpanGuard::finish`] always returns the true elapsed time, but the event
    /// is only retained while enabled. This is the accounting-plane primitive —
    /// one measurement feeds both the trace and the derived metrics, so the two
    /// can never disagree.
    pub fn timed_span(&self, name: &'static str, cat: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            rec: if self.is_enabled() { Some(self) } else { None },
            start: Some(Instant::now()),
            name,
            cat,
            args: Vec::new(),
        }
    }

    /// Record a point-in-time marker with arguments. Dropped while disabled.
    pub fn instant(&self, name: &'static str, cat: &'static str, args: &[(&'static str, u64)]) {
        if !self.is_enabled() {
            return;
        }
        let event = TraceEvent {
            name,
            cat,
            kind: EventKind::Instant,
            ts_nanos: self.now_nanos(),
            tid: thread_id(),
            args: args.iter().take(MAX_ARGS).copied().collect(),
        };
        self.push(event);
    }

    /// Sample a monotonic counter: `value` is the counter's current value (the
    /// exporters graph successive samples). Dropped while disabled.
    pub fn counter(&self, name: &'static str, value: u64, args: &[(&'static str, u64)]) {
        if !self.is_enabled() {
            return;
        }
        let event = TraceEvent {
            name,
            cat: "counter",
            kind: EventKind::Counter { value },
            ts_nanos: self.now_nanos(),
            tid: thread_id(),
            args: args.iter().take(MAX_ARGS).copied().collect(),
        };
        self.push(event);
    }

    fn push(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        if let EventKind::Span { dur_nanos } = event.kind {
            inner
                .histograms
                .entry(event.name)
                .or_default()
                .record(Duration::from_nanos(dur_nanos));
        }
        inner.events.push(event);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder poisoned").events.len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take every buffered event, leaving the buffer empty (histograms are
    /// retained — they are the long-run aggregate).
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.lock().expect("recorder poisoned").events)
    }

    /// Clone the buffered events without draining them.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("recorder poisoned").events.clone()
    }

    /// Drop all buffered events and histograms.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        inner.events.clear();
        inner.histograms.clear();
    }

    /// The latency histogram accumulated for span `name`, if any span with that
    /// name was recorded while enabled.
    pub fn histogram(&self, name: &str) -> Option<FixedHistogram> {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .histograms
            .get(name)
            .cloned()
    }
}

/// An in-flight span. Dropping it records the completed span (if the recorder
/// was enabled when the span started); [`SpanGuard::finish`] does the same and
/// returns the measured duration.
#[must_use = "dropping a span guard immediately records a zero-length span"]
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    start: Option<Instant>,
    name: &'static str,
    cat: &'static str,
    args: ArgList,
}

impl SpanGuard<'_> {
    /// Attach a numeric argument. No-op (and allocation-free) on inert guards.
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        if self.rec.is_some() && self.args.len() < MAX_ARGS {
            self.args.push((key, value));
        }
        self
    }

    /// Close the span and return its measured duration ([`Duration::ZERO`] for
    /// trace-only spans started while the recorder was disabled).
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let elapsed = self.start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO);
        if let Some(rec) = self.rec.take() {
            let start = self.start.expect("recording spans always have a start");
            let ts_nanos = start
                .checked_duration_since(rec.base())
                .unwrap_or(Duration::ZERO)
                .as_nanos() as u64;
            rec.push(TraceEvent {
                name: self.name,
                cat: self.cat,
                kind: EventKind::Span {
                    dur_nanos: elapsed.as_nanos() as u64,
                },
                ts_nanos,
                tid: thread_id(),
                args: std::mem::take(&mut self.args),
            });
        }
        elapsed
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Dense per-thread ids, assigned on each thread's first event (stable
/// `std::thread::ThreadId` has no portable numeric accessor).
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// The process-wide recorder handle. Disabled by default; binaries that export
/// traces enable it (`fleet_scale --trace`, `fleet_demo --trace`).
pub fn recorder() -> &'static Recorder {
    static GLOBAL: Recorder = Recorder::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_retains_nothing_but_still_times() {
        let rec = Recorder::new();
        let span = rec.timed_span("work", "test");
        std::thread::sleep(Duration::from_millis(2));
        let dur = span.finish();
        assert!(dur >= Duration::from_millis(2), "timed span still measures");
        rec.instant("marker", "test", &[("k", 1)]);
        rec.counter("count", 7, &[]);
        assert!(rec.is_empty(), "disabled recorder must retain no events");
        // A trace-only span while disabled reads no clock and reports ZERO.
        assert_eq!(rec.span("work", "test").finish(), Duration::ZERO);
    }

    #[test]
    fn enabled_recorder_captures_spans_instants_and_counters() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        let dur = rec
            .span("alpha", "test")
            .arg("epoch", 3)
            .arg("shard", 1)
            .finish();
        rec.instant("beta", "timeline", &[("location", 0x40)]);
        rec.counter("gamma", 12, &[("fleet", 2)]);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "alpha");
        assert_eq!(events[0].arg("epoch"), Some(3));
        assert_eq!(events[0].span_duration(), Some(dur));
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[1].arg("location"), Some(0x40));
        assert_eq!(events[2].kind, EventKind::Counter { value: 12 });
        // Histograms accumulate per span name.
        assert_eq!(rec.histogram("alpha").unwrap().count(), 1);
        assert!(
            rec.histogram("beta").is_none(),
            "instants are not latencies"
        );
    }

    #[test]
    fn drop_records_and_drain_empties() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        {
            let _span = rec.span("scoped", "test").arg("epoch", 1);
        }
        assert_eq!(rec.len(), 1);
        let drained = rec.drain();
        assert_eq!(drained.len(), 1);
        assert!(rec.is_empty());
        assert!(
            rec.histogram("scoped").is_some(),
            "drain keeps the histograms"
        );
        rec.clear();
        assert!(rec.histogram("scoped").is_none());
    }

    #[test]
    fn spans_record_from_many_threads() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        std::thread::scope(|scope| {
            for shard in 0..4u64 {
                let rec = &rec;
                scope.spawn(move || {
                    rec.span("worker", "test").arg("shard", shard).finish();
                });
            }
        });
        let events = rec.events();
        assert_eq!(events.len(), 4);
        let mut shards: Vec<u64> = events.iter().filter_map(|e| e.arg("shard")).collect();
        shards.sort_unstable();
        assert_eq!(shards, vec![0, 1, 2, 3]);
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        for _ in 0..10 {
            rec.span("tick", "test").finish();
        }
        let events = rec.events();
        for pair in events.windows(2) {
            assert!(pair[0].ts_nanos <= pair[1].ts_nanos);
        }
    }
}
