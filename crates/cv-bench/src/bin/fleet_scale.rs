//! Fleet-scale benchmark: sequential vs. parallel epoch scheduling throughput
//! (pages/sec) and monolithic vs. sharded invariant-store merge, at community sizes
//! the seed's for-loop community could not reach. A captured run is recorded in
//! `EXPERIMENTS.md`.
//!
//! Run with: `cargo run --release -p cv-bench --bin fleet_scale`

use cv_apps::{evaluation_suite, learning_suite, Browser};
use cv_bench::print_table;
use cv_core::ClearViewConfig;
use cv_fleet::{Fleet, FleetConfig, Presentation, ShardedInvariantStore};
use cv_inference::{InvariantDatabase, LearningFrontend};
use cv_runtime::{EnvConfig, ManagedExecutionEnvironment};
use std::time::Instant;

const NODES: usize = 256;
const EPOCHS: usize = 4;
const MERGE_MEMBERS: usize = 64;
const MERGE_ROUNDS: usize = 50;

/// Run `EPOCHS` epochs of benign traffic (every member loads four pages per epoch)
/// and return (pages processed, execution seconds, pages/sec).
fn throughput(parallel: bool, workers: usize) -> (u64, f64, f64) {
    let browser = Browser::build();
    let mut config = FleetConfig::new(NODES).with_workers(workers);
    if !parallel {
        config = config.sequential();
    }
    let mut fleet = Fleet::new(browser.image.clone(), ClearViewConfig::default(), config);
    fleet.distributed_learning(&learning_suite());

    let pages = evaluation_suite();
    let mut batch = Vec::with_capacity(NODES * 4);
    for node in 0..NODES {
        for k in 0..4 {
            batch.push(Presentation::new(
                node,
                pages[(node * 4 + k) % pages.len()].clone(),
            ));
        }
    }

    for _ in 0..EPOCHS {
        let outcome = fleet.run_epoch(&batch);
        assert_eq!(
            outcome.completed(),
            batch.len(),
            "benign pages all complete"
        );
    }
    let metrics = fleet.metrics();
    (
        metrics.pages_processed,
        metrics.execution_time.as_secs_f64(),
        metrics.pages_per_second(),
    )
}

/// Produce `MERGE_MEMBERS` member uploads via amortized learning.
fn uploads() -> Vec<InvariantDatabase> {
    let browser = Browser::build();
    let pages = learning_suite();
    (0..MERGE_MEMBERS)
        .map(|member| {
            let mut env =
                ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
            let mut frontend = LearningFrontend::new(browser.image.clone());
            for page in pages.iter().skip(member % pages.len()).step_by(4) {
                let result = env.run_with_tracer(page, &mut frontend);
                if result.is_completed() {
                    frontend.commit_run();
                } else {
                    frontend.discard_run();
                }
            }
            frontend.into_model().invariants
        })
        .collect()
}

/// Time `MERGE_ROUNDS` rounds of merging the uploads into a store.
fn merge_time(shards: usize, parallel: bool, uploads: &[InvariantDatabase]) -> f64 {
    let start = Instant::now();
    for _ in 0..MERGE_ROUNDS {
        let mut store = ShardedInvariantStore::new(shards);
        if parallel {
            store.merge_uploads(uploads);
        } else {
            store.merge_uploads_sequential(uploads);
        }
        std::hint::black_box(store.len());
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "fleet_scale: {NODES} members, {EPOCHS} epochs x {} pages/epoch, {cores} cores",
        NODES * 4
    );

    let (seq_pages, seq_secs, seq_rate) = throughput(false, 1);
    let (par_pages, par_secs, par_rate) = throughput(true, 0);
    assert_eq!(seq_pages, par_pages);
    let speedup = par_rate / seq_rate;

    print_table(
        "Epoch scheduling throughput",
        &["scheduler", "pages", "exec seconds", "pages/sec", "speedup"],
        &[
            vec![
                "sequential (1 worker)".into(),
                seq_pages.to_string(),
                format!("{seq_secs:.3}"),
                format!("{seq_rate:.0}"),
                "1.00x".into(),
            ],
            vec![
                format!("parallel ({cores} workers)"),
                par_pages.to_string(),
                format!("{par_secs:.3}"),
                format!("{par_rate:.0}"),
                format!("{speedup:.2}x"),
            ],
        ],
    );

    let ups = uploads();
    let invariants: usize = ups.iter().map(|u| u.len()).sum();
    let mono = merge_time(1, false, &ups);
    let sharded_seq = merge_time(8, false, &ups);
    let sharded_par = merge_time(8, true, &ups);
    print_table(
        &format!(
            "Invariant-store merge ({MERGE_MEMBERS} uploads, {invariants} invariants, {MERGE_ROUNDS} rounds)"
        ),
        &["store", "seconds", "speedup vs monolithic"],
        &[
            vec!["monolithic".into(), format!("{mono:.3}"), "1.00x".into()],
            vec![
                "8 shards, 1 thread".into(),
                format!("{sharded_seq:.3}"),
                format!("{:.2}x", mono / sharded_seq),
            ],
            vec![
                "8 shards, parallel".into(),
                format!("{sharded_par:.3}"),
                format!("{:.2}x", mono / sharded_par),
            ],
        ],
    );

    if speedup > 1.0 {
        println!("\nparallel epoch scheduling speedup: {speedup:.2}x (> 1 on this machine)");
    } else {
        println!("\nWARNING: no scheduling speedup measured (single-core machine?)");
    }
}
