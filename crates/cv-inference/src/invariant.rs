//! Invariant templates: the properties Daikon infers and ClearView enforces.
//!
//! The Red Team exercise used three enforceable invariant kinds (Section 2.5): *one-of*
//! (`v ∈ {c1..cn}`), *lower-bound* (`c ≤ v`), and *less-than* (`v1 ≤ v2`). The learning
//! component additionally infers stack-pointer-offset facts (`sp_entry = sp_here + c`,
//! Section 2.2.4), which are not enforced directly but let the return-from-procedure
//! repair adjust the stack pointer correctly.

use crate::variable::Variable;
use cv_isa::{Addr, Word};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The maximum number of distinct values for which a one-of invariant is retained.
pub const ONE_OF_LIMIT: usize = 5;

/// A learned invariant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Invariant {
    /// `var ∈ values` — the variable only ever took on these values.
    OneOf {
        /// The constrained variable.
        var: Variable,
        /// The observed value set (at most [`ONE_OF_LIMIT`] entries).
        values: BTreeSet<Word>,
    },
    /// `min ≤ var` under signed interpretation.
    LowerBound {
        /// The constrained variable.
        var: Variable,
        /// The smallest observed (signed) value.
        min: i32,
    },
    /// `a ≤ b` under signed interpretation; `a` and `b` are read at instructions in the
    /// same basic block, with the check performed at the later of the two.
    LessThan {
        /// The smaller variable.
        a: Variable,
        /// The larger variable.
        b: Variable,
    },
    /// `sp_at_entry = sp_at_instruction + offset` for the enclosing procedure.
    StackPointerOffset {
        /// The procedure entry address.
        proc_entry: Addr,
        /// The instruction the offset is valid at.
        at: Addr,
        /// Words to add to the stack pointer at `at` to recover the entry stack pointer.
        offset: i32,
    },
}

impl Invariant {
    /// The instruction address at which this invariant is checked (and enforced).
    ///
    /// Single-variable invariants are checked at the variable's instruction;
    /// two-variable invariants at the later (larger-address) of the two instructions,
    /// mirroring Section 2.4.2.
    pub fn check_addr(&self) -> Addr {
        match self {
            Invariant::OneOf { var, .. } => var.addr,
            Invariant::LowerBound { var, .. } => var.addr,
            Invariant::LessThan { a, b } => a.addr.max(b.addr),
            Invariant::StackPointerOffset { at, .. } => *at,
        }
    }

    /// The variables the invariant mentions.
    pub fn variables(&self) -> Vec<Variable> {
        match self {
            Invariant::OneOf { var, .. } | Invariant::LowerBound { var, .. } => vec![*var],
            Invariant::LessThan { a, b } => vec![*a, *b],
            Invariant::StackPointerOffset { .. } => vec![],
        }
    }

    /// True if the invariant relates two variables (subject to the same-basic-block
    /// candidate restriction of Section 2.4.1).
    pub fn is_two_variable(&self) -> bool {
        matches!(self, Invariant::LessThan { .. })
    }

    /// True for invariant kinds that ClearView can turn into repair patches.
    pub fn is_enforceable(&self) -> bool {
        match self {
            Invariant::OneOf { var, .. } | Invariant::LowerBound { var, .. } => {
                var.is_enforceable()
            }
            Invariant::LessThan { a, b } => a.is_enforceable() || b.is_enforceable(),
            Invariant::StackPointerOffset { .. } => false,
        }
    }

    /// Evaluate the invariant against concrete values (used by invariant-check patches).
    ///
    /// `value_of` must return the current value of a variable; returning `None` means
    /// the value is unavailable and the invariant cannot be checked (treated as
    /// satisfied, since monitors must not produce false violations).
    pub fn holds(&self, value_of: &dyn Fn(&Variable) -> Option<Word>) -> bool {
        match self {
            Invariant::OneOf { var, values } => match value_of(var) {
                Some(v) => values.contains(&v),
                None => true,
            },
            Invariant::LowerBound { var, min } => match value_of(var) {
                Some(v) => (v as i32) >= *min,
                None => true,
            },
            Invariant::LessThan { a, b } => match (value_of(a), value_of(b)) {
                (Some(va), Some(vb)) => (va as i32) <= (vb as i32),
                _ => true,
            },
            Invariant::StackPointerOffset { .. } => true,
        }
    }

    /// A short kind label used in reports and in the Table 3 `[one-of, lower-bound,
    /// less-than]` breakdowns.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Invariant::OneOf { .. } => "one-of",
            Invariant::LowerBound { .. } => "lower-bound",
            Invariant::LessThan { .. } => "less-than",
            Invariant::StackPointerOffset { .. } => "sp-offset",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Invariant::OneOf { var, values } => {
                let vals: Vec<String> = values.iter().map(|v| format!("0x{v:x}")).collect();
                write!(f, "{var} in {{{}}}", vals.join(", "))
            }
            Invariant::LowerBound { var, min } => write!(f, "{min} <= {var}"),
            Invariant::LessThan { a, b } => write!(f, "{a} <= {b}"),
            Invariant::StackPointerOffset {
                proc_entry,
                at,
                offset,
            } => {
                write!(f, "sp@0x{proc_entry:x} = sp@0x{at:x} + {offset}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::{Operand, Reg};
    use std::collections::HashMap;

    fn var(addr: Addr) -> Variable {
        Variable::read(addr, 0, Operand::Reg(Reg::Eax))
    }

    fn lookup(map: &HashMap<Variable, Word>) -> impl Fn(&Variable) -> Option<Word> + '_ {
        move |v: &Variable| map.get(v).copied()
    }

    #[test]
    fn one_of_holds_only_for_observed_values() {
        let v = var(0x1000);
        let inv = Invariant::OneOf {
            var: v,
            values: [0x2000u32, 0x2010].into_iter().collect(),
        };
        let mut vals = HashMap::new();
        vals.insert(v, 0x2000);
        assert!(inv.holds(&lookup(&vals)));
        vals.insert(v, 0x9999);
        assert!(!inv.holds(&lookup(&vals)));
        assert_eq!(inv.check_addr(), 0x1000);
        assert_eq!(inv.kind_name(), "one-of");
    }

    #[test]
    fn lower_bound_uses_signed_comparison() {
        let v = var(0x1000);
        let inv = Invariant::LowerBound { var: v, min: 1 };
        let mut vals = HashMap::new();
        vals.insert(v, 5);
        assert!(inv.holds(&lookup(&vals)));
        vals.insert(v, (-3i32) as u32);
        assert!(!inv.holds(&lookup(&vals)), "negative value violates 1 <= v");
        vals.insert(v, 0);
        assert!(!inv.holds(&lookup(&vals)));
    }

    #[test]
    fn less_than_uses_signed_comparison_and_later_check_addr() {
        let a = var(0x1000);
        let b = var(0x1008);
        let inv = Invariant::LessThan { a, b };
        assert_eq!(inv.check_addr(), 0x1008);
        let mut vals = HashMap::new();
        vals.insert(a, 4);
        vals.insert(b, 10);
        assert!(inv.holds(&lookup(&vals)));
        vals.insert(a, 11);
        assert!(!inv.holds(&lookup(&vals)));
        // Signed: -1 <= 10 holds even though it is a huge unsigned value.
        vals.insert(a, (-1i32) as u32);
        assert!(inv.holds(&lookup(&vals)));
    }

    #[test]
    fn missing_values_do_not_report_violations() {
        let inv = Invariant::LowerBound {
            var: var(0x1000),
            min: 0,
        };
        let empty = HashMap::new();
        assert!(inv.holds(&lookup(&empty)));
    }

    #[test]
    fn enforceability_requires_writable_operand() {
        let writable = Invariant::LowerBound {
            var: Variable::read(1, 0, Operand::Reg(Reg::Ecx)),
            min: 0,
        };
        assert!(writable.is_enforceable());
        let imm = Invariant::LowerBound {
            var: Variable::read(1, 0, Operand::Imm(4)),
            min: 0,
        };
        assert!(!imm.is_enforceable());
        let sp = Invariant::StackPointerOffset {
            proc_entry: 1,
            at: 2,
            offset: 0,
        };
        assert!(!sp.is_enforceable());
    }

    #[test]
    fn display_is_readable() {
        let inv = Invariant::LowerBound {
            var: var(0x1043),
            min: 1,
        };
        let s = inv.to_string();
        assert!(s.contains("1 <="));
        assert!(s.contains("0x1043"));
    }
}
