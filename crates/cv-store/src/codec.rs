//! Domain codecs: the columnar invariant-database encoding, the patch-plan
//! encoding, and the primitives they share.
//!
//! **The database is written columnar.** Variables are interned into a sorted table
//! written as parallel arrays (addresses, slot codes, operand tags, operand
//! payloads), and invariants are split by kind into per-kind parallel arrays
//! (variable ids, bounds, value sets) plus one flat `kinds` array recording, per
//! check-address entry, which kind column each invariant came from. Encoding and
//! decoding are therefore flat column copies — no per-invariant pointer chasing —
//! which is what makes `snapshot_bench`'s encode/decode rates scale with memory
//! bandwidth rather than invariant structure.
//!
//! **Plans are written inline.** A patch plan is a few ops even at fleet scale, so
//! its directives (checking patches, repairs, strategies) use a simple tagged
//! inline encoding.
//!
//! Both codecs are deterministic: the same in-memory value always encodes to the
//! same bytes, so `encode -> decode -> encode` is byte-identical (the round-trip
//! property test).

use crate::error::StoreError;
use crate::wire::{Reader, Writer};
use cv_core::{Directive, PatchPlan};
use cv_inference::{Invariant, InvariantDatabase, LearningStats, VarSlot, Variable};
use cv_isa::{Addr, MemRef, Operand, Reg};
use cv_patch::{CheckPatch, RepairPatch, RepairStrategy};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Variables
// ---------------------------------------------------------------------------

const SLOT_READ: u8 = 0;
const SLOT_COMPUTED: u8 = 1;
const SLOT_SP: u8 = 2;

const OP_NONE: u8 = 0;
const OP_REG: u8 = 1;
const OP_IMM: u8 = 2;
const OP_MEM: u8 = 3;

/// No-register marker inside a packed memory operand.
const NO_REG: u32 = 0xFF;

fn slot_code(slot: VarSlot) -> u16 {
    match slot {
        VarSlot::Read(n) => ((SLOT_READ as u16) << 8) | n as u16,
        VarSlot::ComputedAddr(n) => ((SLOT_COMPUTED as u16) << 8) | n as u16,
        VarSlot::StackPointer => (SLOT_SP as u16) << 8,
    }
}

fn slot_from_code(code: u16) -> Result<VarSlot, StoreError> {
    let idx = (code & 0xFF) as u8;
    match (code >> 8) as u8 {
        SLOT_READ => Ok(VarSlot::Read(idx)),
        SLOT_COMPUTED => Ok(VarSlot::ComputedAddr(idx)),
        SLOT_SP if idx == 0 => Ok(VarSlot::StackPointer),
        _ => Err(StoreError::Corrupt {
            context: "unknown variable slot code",
        }),
    }
}

/// Pack an operand into `(tag, a, b)` — the three columns of the variable table.
fn operand_columns(op: Option<Operand>) -> (u8, u32, i32) {
    match op {
        None => (OP_NONE, 0, 0),
        Some(Operand::Reg(r)) => (OP_REG, r.index() as u32, 0),
        Some(Operand::Imm(v)) => (OP_IMM, v, 0),
        Some(Operand::Mem(m)) => {
            let base = m.base.map(|r| r.index() as u32).unwrap_or(NO_REG);
            let index = m.index.map(|r| r.index() as u32).unwrap_or(NO_REG);
            (
                OP_MEM,
                base | (index << 8) | ((m.scale as u32) << 16),
                m.disp,
            )
        }
    }
}

fn reg_from(idx: u32) -> Result<Option<Reg>, StoreError> {
    if idx == NO_REG {
        return Ok(None);
    }
    Reg::from_index(idx as usize)
        .map(Some)
        .ok_or(StoreError::Corrupt {
            context: "register index out of range",
        })
}

fn operand_from_columns(tag: u8, a: u32, b: i32) -> Result<Option<Operand>, StoreError> {
    match tag {
        OP_NONE => Ok(None),
        OP_REG => Ok(Some(Operand::Reg(reg_from(a)?.ok_or(
            StoreError::Corrupt {
                context: "register operand carries the no-register marker",
            },
        )?))),
        OP_IMM => Ok(Some(Operand::Imm(a))),
        OP_MEM => Ok(Some(Operand::Mem(MemRef {
            base: reg_from(a & 0xFF)?,
            index: reg_from((a >> 8) & 0xFF)?,
            scale: ((a >> 16) & 0xFF) as u8,
            disp: b,
        }))),
        _ => Err(StoreError::Corrupt {
            context: "unknown operand tag",
        }),
    }
}

/// Write one variable inline (the plan codec's form).
fn write_variable(w: &mut Writer, var: &Variable) {
    let (tag, a, b) = operand_columns(var.operand);
    w.u32(var.addr);
    w.u16(slot_code(var.slot));
    w.u8(tag);
    w.u32(a);
    w.i32(b);
}

/// Read one inline variable.
fn read_variable(r: &mut Reader<'_>) -> Result<Variable, StoreError> {
    let addr = r.u32("variable address")?;
    let slot = slot_from_code(r.u16("variable slot")?)?;
    let tag = r.u8("operand tag")?;
    let a = r.u32("operand payload a")?;
    let b = r.i32("operand payload b")?;
    Ok(Variable {
        addr,
        slot,
        operand: operand_from_columns(tag, a, b)?,
    })
}

// ---------------------------------------------------------------------------
// Invariants, inline form (plans)
// ---------------------------------------------------------------------------

const INV_ONE_OF: u8 = 0;
const INV_LOWER_BOUND: u8 = 1;
const INV_LESS_THAN: u8 = 2;
const INV_SP_OFFSET: u8 = 3;

fn write_invariant(w: &mut Writer, inv: &Invariant) {
    match inv {
        Invariant::OneOf { var, values } => {
            w.u8(INV_ONE_OF);
            write_variable(w, var);
            w.u8(values.len() as u8);
            for v in values {
                w.u32(*v);
            }
        }
        Invariant::LowerBound { var, min } => {
            w.u8(INV_LOWER_BOUND);
            write_variable(w, var);
            w.i32(*min);
        }
        Invariant::LessThan { a, b } => {
            w.u8(INV_LESS_THAN);
            write_variable(w, a);
            write_variable(w, b);
        }
        Invariant::StackPointerOffset {
            proc_entry,
            at,
            offset,
        } => {
            w.u8(INV_SP_OFFSET);
            w.u32(*proc_entry);
            w.u32(*at);
            w.i32(*offset);
        }
    }
}

fn read_invariant(r: &mut Reader<'_>) -> Result<Invariant, StoreError> {
    match r.u8("invariant kind")? {
        INV_ONE_OF => {
            let var = read_variable(r)?;
            let n = r.u8("one-of value count")? as usize;
            let mut values = std::collections::BTreeSet::new();
            for _ in 0..n {
                values.insert(r.u32("one-of value")?);
            }
            if values.len() != n {
                return Err(StoreError::Corrupt {
                    context: "one-of value set has duplicates",
                });
            }
            Ok(Invariant::OneOf { var, values })
        }
        INV_LOWER_BOUND => Ok(Invariant::LowerBound {
            var: read_variable(r)?,
            min: r.i32("lower bound")?,
        }),
        INV_LESS_THAN => Ok(Invariant::LessThan {
            a: read_variable(r)?,
            b: read_variable(r)?,
        }),
        INV_SP_OFFSET => Ok(Invariant::StackPointerOffset {
            proc_entry: r.u32("sp-offset procedure entry")?,
            at: r.u32("sp-offset site")?,
            offset: r.i32("sp-offset value")?,
        }),
        _ => Err(StoreError::Corrupt {
            context: "unknown invariant kind",
        }),
    }
}

// ---------------------------------------------------------------------------
// Learning stats
// ---------------------------------------------------------------------------

/// Write the learning counters (fixed-width, field order is part of the format).
pub fn write_stats(w: &mut Writer, stats: &LearningStats) {
    for v in [
        stats.events_processed,
        stats.runs_committed,
        stats.runs_discarded,
        stats.variables_observed,
        stats.duplicates_removed,
        stats.pointers_classified,
        stats.one_of,
        stats.lower_bound,
        stats.less_than,
        stats.sp_offset,
    ] {
        w.u64(v);
    }
}

/// Read the learning counters.
pub fn read_stats(r: &mut Reader<'_>) -> Result<LearningStats, StoreError> {
    Ok(LearningStats {
        events_processed: r.u64("stats.events_processed")?,
        runs_committed: r.u64("stats.runs_committed")?,
        runs_discarded: r.u64("stats.runs_discarded")?,
        variables_observed: r.u64("stats.variables_observed")?,
        duplicates_removed: r.u64("stats.duplicates_removed")?,
        pointers_classified: r.u64("stats.pointers_classified")?,
        one_of: r.u64("stats.one_of")?,
        lower_bound: r.u64("stats.lower_bound")?,
        less_than: r.u64("stats.less_than")?,
        sp_offset: r.u64("stats.sp_offset")?,
    })
}

// ---------------------------------------------------------------------------
// Columnar entry encoding (full databases and delta shard sections)
// ---------------------------------------------------------------------------

/// Encode a set of `(check address, invariants)` entries columnar. Entries must be
/// in ascending address order (the canonical [`InvariantDatabase::entries`] order).
pub fn write_entries(w: &mut Writer, entries: &[(Addr, &[Invariant])]) {
    // Pass 1: intern every mentioned variable into a sorted table.
    let mut var_ids: BTreeMap<Variable, u32> = BTreeMap::new();
    for (_, invs) in entries {
        for inv in invs.iter() {
            for var in inv.variables() {
                var_ids.entry(var).or_insert(0);
            }
        }
    }
    for (next, id) in var_ids.values_mut().enumerate() {
        *id = next as u32;
    }

    // Variable table columns.
    let n_vars = var_ids.len();
    let mut v_addr = Vec::with_capacity(n_vars);
    let mut v_slot = Vec::with_capacity(n_vars);
    let mut v_tag = Vec::with_capacity(n_vars);
    let mut v_a = Vec::with_capacity(n_vars);
    let mut v_b = Vec::with_capacity(n_vars);
    for var in var_ids.keys() {
        let (tag, a, b) = operand_columns(var.operand);
        v_addr.push(var.addr);
        v_slot.push(slot_code(var.slot));
        v_tag.push(tag);
        v_a.push(a);
        v_b.push(b);
    }

    // Entry layout plus per-kind columns.
    let mut e_addr: Vec<u32> = Vec::with_capacity(entries.len());
    let mut e_count: Vec<u32> = Vec::with_capacity(entries.len());
    let mut kinds: Vec<u8> = Vec::new();
    let (mut oo_var, mut oo_count, mut oo_values) = (Vec::new(), Vec::new(), Vec::new());
    let (mut lb_var, mut lb_min) = (Vec::new(), Vec::new());
    let (mut lt_a, mut lt_b) = (Vec::new(), Vec::new());
    let (mut sp_proc, mut sp_at, mut sp_off) = (Vec::new(), Vec::new(), Vec::new());
    for (addr, invs) in entries {
        e_addr.push(*addr);
        e_count.push(invs.len() as u32);
        for inv in invs.iter() {
            match inv {
                Invariant::OneOf { var, values } => {
                    kinds.push(INV_ONE_OF);
                    oo_var.push(var_ids[var]);
                    oo_count.push(values.len() as u8);
                    oo_values.extend(values.iter().copied());
                }
                Invariant::LowerBound { var, min } => {
                    kinds.push(INV_LOWER_BOUND);
                    lb_var.push(var_ids[var]);
                    lb_min.push(*min);
                }
                Invariant::LessThan { a, b } => {
                    kinds.push(INV_LESS_THAN);
                    lt_a.push(var_ids[a]);
                    lt_b.push(var_ids[b]);
                }
                Invariant::StackPointerOffset {
                    proc_entry,
                    at,
                    offset,
                } => {
                    kinds.push(INV_SP_OFFSET);
                    sp_proc.push(*proc_entry);
                    sp_at.push(*at);
                    sp_off.push(*offset);
                }
            }
        }
    }

    // Flat copies, one column at a time.
    w.u32(n_vars as u32);
    w.u32_column(&v_addr);
    w.u16_column(&v_slot);
    w.u8_column(&v_tag);
    w.u32_column(&v_a);
    w.i32_column(&v_b);

    w.u32(e_addr.len() as u32);
    w.u32_column(&e_addr);
    w.u32_column(&e_count);
    w.u32(kinds.len() as u32);
    w.u8_column(&kinds);

    w.u32(oo_var.len() as u32);
    w.u32_column(&oo_var);
    w.u8_column(&oo_count);
    w.u32(oo_values.len() as u32);
    w.u32_column(&oo_values);

    w.u32(lb_var.len() as u32);
    w.u32_column(&lb_var);
    w.i32_column(&lb_min);

    w.u32(lt_a.len() as u32);
    w.u32_column(&lt_a);
    w.u32_column(&lt_b);

    w.u32(sp_proc.len() as u32);
    w.u32_column(&sp_proc);
    w.u32_column(&sp_at);
    w.i32_column(&sp_off);
}

/// Decode entries previously written by [`write_entries`], in stored order.
pub fn read_entries(r: &mut Reader<'_>) -> Result<Vec<(Addr, Vec<Invariant>)>, StoreError> {
    // Variable table.
    let n_vars = r.len_u32(4 + 2 + 1 + 4 + 4, "variable count")?;
    let v_addr = r.u32_column(n_vars, "variable addresses")?;
    let v_slot = r.u16_column(n_vars, "variable slots")?;
    let v_tag = r.u8_column(n_vars, "operand tags")?;
    let v_a = r.u32_column(n_vars, "operand a column")?;
    let v_b = r.i32_column(n_vars, "operand b column")?;
    let mut vars = Vec::with_capacity(n_vars);
    for i in 0..n_vars {
        vars.push(Variable {
            addr: v_addr[i],
            slot: slot_from_code(v_slot[i])?,
            operand: operand_from_columns(v_tag[i], v_a[i], v_b[i])?,
        });
    }
    let var = |id: u32| -> Result<Variable, StoreError> {
        vars.get(id as usize).copied().ok_or(StoreError::Corrupt {
            context: "variable id out of range",
        })
    };

    // Entry layout.
    let n_entries = r.len_u32(8, "entry count")?;
    let e_addr = r.u32_column(n_entries, "entry addresses")?;
    let e_count = r.u32_column(n_entries, "entry invariant counts")?;
    let n_kinds = r.len_u32(1, "kind count")?;
    let kinds = r.u8_column(n_kinds, "kind column")?;
    let total: u64 = e_count.iter().map(|&c| c as u64).sum();
    if total != n_kinds as u64 {
        return Err(StoreError::Corrupt {
            context: "entry counts disagree with the kind column",
        });
    }

    // Kind columns.
    let n_oo = r.len_u32(5, "one-of count")?;
    let oo_var = r.u32_column(n_oo, "one-of variable ids")?;
    let oo_count = r.u8_column(n_oo, "one-of value counts")?;
    let n_oo_values = r.len_u32(4, "one-of value total")?;
    let oo_values = r.u32_column(n_oo_values, "one-of values")?;
    if oo_count.iter().map(|&c| c as u64).sum::<u64>() != n_oo_values as u64 {
        return Err(StoreError::Corrupt {
            context: "one-of value counts disagree with the value column",
        });
    }
    let n_lb = r.len_u32(8, "lower-bound count")?;
    let lb_var = r.u32_column(n_lb, "lower-bound variable ids")?;
    let lb_min = r.i32_column(n_lb, "lower-bound minima")?;
    let n_lt = r.len_u32(8, "less-than count")?;
    let lt_a = r.u32_column(n_lt, "less-than a ids")?;
    let lt_b = r.u32_column(n_lt, "less-than b ids")?;
    let n_sp = r.len_u32(12, "sp-offset count")?;
    let sp_proc = r.u32_column(n_sp, "sp-offset procedure entries")?;
    let sp_at = r.u32_column(n_sp, "sp-offset sites")?;
    let sp_off = r.i32_column(n_sp, "sp-offset values")?;

    // Reassemble: walk the entry layout, consuming each kind column by cursor.
    let (mut ko, mut koo, mut klb, mut klt, mut ksp, mut kval) = (0, 0, 0, 0, 0usize, 0usize);
    let mut entries = Vec::with_capacity(n_entries);
    let mut last_addr: Option<Addr> = None;
    for i in 0..n_entries {
        let addr = e_addr[i];
        if let Some(last) = last_addr {
            if addr <= last {
                return Err(StoreError::Corrupt {
                    context: "entry addresses not strictly ascending",
                });
            }
        }
        last_addr = Some(addr);
        let mut invs = Vec::with_capacity(e_count[i] as usize);
        for _ in 0..e_count[i] {
            let inv = match kinds[ko] {
                INV_ONE_OF => {
                    let n = oo_count[koo] as usize;
                    let values: std::collections::BTreeSet<u32> =
                        oo_values[kval..kval + n].iter().copied().collect();
                    if values.len() != n {
                        return Err(StoreError::Corrupt {
                            context: "one-of value set has duplicates",
                        });
                    }
                    let inv = Invariant::OneOf {
                        var: var(oo_var[koo])?,
                        values,
                    };
                    koo += 1;
                    kval += n;
                    inv
                }
                INV_LOWER_BOUND => {
                    let inv = Invariant::LowerBound {
                        var: var(lb_var[klb])?,
                        min: lb_min[klb],
                    };
                    klb += 1;
                    inv
                }
                INV_LESS_THAN => {
                    let inv = Invariant::LessThan {
                        a: var(lt_a[klt])?,
                        b: var(lt_b[klt])?,
                    };
                    klt += 1;
                    inv
                }
                INV_SP_OFFSET => {
                    let inv = Invariant::StackPointerOffset {
                        proc_entry: sp_proc[ksp],
                        at: sp_at[ksp],
                        offset: sp_off[ksp],
                    };
                    ksp += 1;
                    inv
                }
                _ => {
                    return Err(StoreError::Corrupt {
                        context: "unknown invariant kind in kind column",
                    })
                }
            };
            ko += 1;
            if inv.check_addr() != addr {
                return Err(StoreError::Corrupt {
                    context: "invariant's check address disagrees with its entry",
                });
            }
            invs.push(inv);
        }
        entries.push((addr, invs));
    }
    if koo != n_oo || klb != n_lb || klt != n_lt || ksp != n_sp {
        return Err(StoreError::Corrupt {
            context: "kind columns longer than the kind layout consumes",
        });
    }
    Ok(entries)
}

/// Encode a whole database: its learning counters plus its entries, columnar.
pub fn write_database(w: &mut Writer, db: &InvariantDatabase) {
    write_stats(w, &db.stats);
    let entries: Vec<(Addr, &[Invariant])> = db.entries().collect();
    write_entries(w, &entries);
}

/// Decode a database written by [`write_database`].
pub fn read_database(r: &mut Reader<'_>) -> Result<InvariantDatabase, StoreError> {
    let stats = read_stats(r)?;
    let entries = read_entries(r)?;
    let mut db = InvariantDatabase::new();
    for (addr, invs) in entries {
        db.set_entry(addr, invs);
    }
    db.stats = stats;
    Ok(db)
}

// ---------------------------------------------------------------------------
// Patch plans
// ---------------------------------------------------------------------------

const DIR_INSTALL_CHECKS: u8 = 0;
const DIR_REMOVE_CHECKS: u8 = 1;
const DIR_INSTALL_REPAIR: u8 = 2;
const DIR_REMOVE_REPAIR: u8 = 3;

const STRAT_SET_VALUE: u8 = 0;
const STRAT_SKIP_CALL: u8 = 1;
const STRAT_RETURN: u8 = 2;
const STRAT_CLAMP: u8 = 3;
const STRAT_ENFORCE_LT: u8 = 4;

fn write_strategy(w: &mut Writer, strategy: &RepairStrategy) {
    match strategy {
        RepairStrategy::SetValue { value } => {
            w.u8(STRAT_SET_VALUE);
            w.u32(*value);
        }
        RepairStrategy::SkipCall => w.u8(STRAT_SKIP_CALL),
        RepairStrategy::ReturnFromProcedure { sp_adjust } => {
            w.u8(STRAT_RETURN);
            w.i32(*sp_adjust);
        }
        RepairStrategy::ClampToLowerBound => w.u8(STRAT_CLAMP),
        RepairStrategy::EnforceLessThan => w.u8(STRAT_ENFORCE_LT),
    }
}

fn read_strategy(r: &mut Reader<'_>) -> Result<RepairStrategy, StoreError> {
    match r.u8("repair strategy tag")? {
        STRAT_SET_VALUE => Ok(RepairStrategy::SetValue {
            value: r.u32("set-value payload")?,
        }),
        STRAT_SKIP_CALL => Ok(RepairStrategy::SkipCall),
        STRAT_RETURN => Ok(RepairStrategy::ReturnFromProcedure {
            sp_adjust: r.i32("return-from-procedure adjust")?,
        }),
        STRAT_CLAMP => Ok(RepairStrategy::ClampToLowerBound),
        STRAT_ENFORCE_LT => Ok(RepairStrategy::EnforceLessThan),
        _ => Err(StoreError::Corrupt {
            context: "unknown repair strategy tag",
        }),
    }
}

/// Encode a patch plan (op order is part of the format).
pub fn write_plan(w: &mut Writer, plan: &PatchPlan) {
    w.u32(plan.len() as u32);
    for op in plan.ops() {
        w.u32(op.location);
        match &op.directive {
            Directive::InstallChecks(checks) => {
                w.u8(DIR_INSTALL_CHECKS);
                w.u32(checks.len() as u32);
                for check in checks {
                    write_invariant(w, &check.invariant);
                }
            }
            Directive::RemoveChecks => w.u8(DIR_REMOVE_CHECKS),
            Directive::InstallRepair(repair) => {
                w.u8(DIR_INSTALL_REPAIR);
                write_invariant(w, &repair.invariant);
                write_strategy(w, &repair.strategy);
            }
            Directive::RemoveRepair => w.u8(DIR_REMOVE_REPAIR),
        }
    }
}

/// Decode a patch plan written by [`write_plan`].
pub fn read_plan(r: &mut Reader<'_>) -> Result<PatchPlan, StoreError> {
    let n_ops = r.len_u32(5, "plan op count")?;
    let mut plan = PatchPlan::new();
    for _ in 0..n_ops {
        let location = r.u32("op location")?;
        let directive = match r.u8("directive tag")? {
            DIR_INSTALL_CHECKS => {
                let n = r.len_u32(1, "check count")?;
                let mut checks = Vec::with_capacity(n);
                for _ in 0..n {
                    checks.push(CheckPatch::new(read_invariant(r)?));
                }
                Directive::InstallChecks(checks)
            }
            DIR_REMOVE_CHECKS => Directive::RemoveChecks,
            DIR_INSTALL_REPAIR => {
                let invariant = read_invariant(r)?;
                let strategy = read_strategy(r)?;
                Directive::InstallRepair(RepairPatch {
                    invariant,
                    strategy,
                })
            }
            DIR_REMOVE_REPAIR => Directive::RemoveRepair,
            _ => {
                return Err(StoreError::Corrupt {
                    context: "unknown directive tag",
                })
            }
        };
        plan.push(location, directive);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> InvariantDatabase {
        let mut db = InvariantDatabase::new();
        let v1 = Variable::read(0x1000, 0, Operand::Reg(Reg::Ecx));
        let v2 = Variable::read(
            0x1004,
            1,
            Operand::Mem(MemRef::indexed(Reg::Ebx, Reg::Esi, 4, -8)),
        );
        let v3 = Variable::computed_addr(0x1008, 0);
        db.insert(Invariant::OneOf {
            var: v1,
            values: [3u32, 9, 0xFFFF_FFFF].into_iter().collect(),
        });
        db.insert(Invariant::LowerBound { var: v1, min: -7 });
        db.insert(Invariant::LessThan { a: v1, b: v2 });
        db.insert(Invariant::OneOf {
            var: v3,
            values: [0x4000u32].into_iter().collect(),
        });
        db.insert(Invariant::StackPointerOffset {
            proc_entry: 0x1000,
            at: 0x100C,
            offset: -2,
        });
        db.stats.events_processed = 123;
        db.stats.runs_committed = 4;
        db.recount();
        db
    }

    #[test]
    fn database_round_trips_byte_identically() {
        let db = sample_db();
        let mut w = Writer::new();
        write_database(&mut w, &db);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = read_database(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(decoded, db);
        let mut w2 = Writer::new();
        write_database(&mut w2, &decoded);
        assert_eq!(w2.into_bytes(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn plan_round_trips() {
        let v = Variable::read(0x2000, 0, Operand::Reg(Reg::Eax));
        let inv = Invariant::LowerBound { var: v, min: 1 };
        let mut plan = PatchPlan::new();
        plan.push(
            0x2000,
            Directive::InstallChecks(vec![CheckPatch::new(inv.clone())]),
        );
        plan.push(0x2000, Directive::RemoveChecks);
        plan.push(
            0x2000,
            Directive::InstallRepair(RepairPatch {
                invariant: inv,
                strategy: RepairStrategy::ReturnFromProcedure { sp_adjust: 3 },
            }),
        );
        plan.push(0x2000, Directive::RemoveRepair);
        let mut w = Writer::new();
        write_plan(&mut w, &plan);
        let bytes = w.into_bytes();
        let decoded = read_plan(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(decoded, plan);
        let mut w2 = Writer::new();
        write_plan(&mut w2, &decoded);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn mismatched_check_addr_is_rejected() {
        let db = sample_db();
        let mut w = Writer::new();
        write_database(&mut w, &db);
        let mut bytes = w.into_bytes();
        // The entry-address column sits right after the stats (80 bytes) + var table.
        // Flip a bit somewhere in the middle of the payload; the decoder must reject
        // (via one of its structural checks) rather than return a different database.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let result = read_database(&mut Reader::new(&bytes));
        if let Ok(decoded) = result {
            // A flipped bit in a value column can decode structurally; it must not
            // silently equal the original.
            assert_ne!(decoded, db);
        }
    }
}
