//! The batched epoch scheduler.
//!
//! Community execution proceeds in *epochs*: a batch of page presentations is fanned
//! out across worker threads (members are partitioned round-robin over workers, one
//! `ManagedExecutionEnvironment` per member, so no run ever crosses a thread), every
//! run's failure report and invariant-check observations are collected into
//! [`RunRecord`]s, and the central manager processes the batch between epochs. Patch
//! operations produced by the manager are applied to every member at the epoch
//! boundary — the fleet equivalent of the paper's console pushing patches to all Node
//! Managers (Section 3.2).
//!
//! Within an epoch members execute with a *fixed* patch configuration; this is what
//! makes the fan-out embarrassingly parallel. The consistency consequences for the
//! responder protocol are handled by the engine (see `Fleet::run_epoch`).

use crate::protocol::{NodeId, Presentation};
use cv_core::{DigestStatus, Directive, PatchPlan, RunDigest};
use cv_inference::{Invariant, LearnedModel, LearningFrontend};
use cv_isa::{Addr, BinaryImage, Word};
use cv_patch::{install_hooks, uninstall, PatchHandle};
use cv_runtime::{
    EnvConfig, Failure, HookId, ManagedExecutionEnvironment, MonitorConfig, ObservationKind,
    RunResult, RunStatus,
};
use std::collections::BTreeMap;

/// Patches currently installed on one member for one failure location.
#[derive(Default)]
struct NodePatchState {
    checks: Vec<(Invariant, PatchHandle, HookId)>,
    repair: Option<PatchHandle>,
}

/// One community member: its execution environment plus patch bookkeeping.
struct MemberState {
    id: NodeId,
    env: ManagedExecutionEnvironment,
    patches: BTreeMap<Addr, NodePatchState>,
    /// False while the member is down (crashed with state loss, not yet rejoined).
    /// Down members receive no presentations, no patch pushes, and no learning
    /// shares — rejoining is what re-synchronizes them (the delta-sync plane).
    alive: bool,
}

impl MemberState {
    fn fresh(id: NodeId, image: &BinaryImage, monitors: MonitorConfig) -> Self {
        MemberState {
            id,
            env: ManagedExecutionEnvironment::new(
                image.clone(),
                EnvConfig::with_monitors(monitors),
            ),
            patches: BTreeMap::new(),
            alive: true,
        }
    }
}

/// The outcome of one page presentation, as collected by a worker.
pub(crate) struct RunRecord {
    /// Position of the presentation in the epoch's batch (global order).
    pub seq: usize,
    /// The member that loaded the page.
    pub node: NodeId,
    /// How the run ended.
    pub status: RunStatus,
    /// What the member rendered.
    pub rendered: Vec<Word>,
    /// Per-active-failure-location digests (status plus check observations), built
    /// against the patch configuration the run actually executed under.
    pub digests: Vec<(Addr, RunDigest)>,
    /// The failure a monitor reported, if any.
    pub failure: Option<Failure>,
}

/// Fans epochs of presentations out across worker-owned members.
pub struct EpochScheduler {
    workers: Vec<Vec<MemberState>>,
    node_count: usize,
    parallel: bool,
    /// Members currently up (alive flags summed).
    alive_count: usize,
    /// Kept for member (re)creation under churn: joiners and rejoining members get
    /// a fresh environment built from the same image and monitor configuration.
    image: BinaryImage,
    monitors: MonitorConfig,
}

impl EpochScheduler {
    /// A scheduler for `node_count` members running `image`, partitioned over
    /// `worker_count` workers (0 = one per available core). `parallel = false` skips
    /// the worker pool entirely: all members live in one partition that runs on the
    /// calling thread, so the sequential baseline of the `fleet_scale` benchmark
    /// never allocates per-worker structures or spawns threads.
    pub(crate) fn new(
        image: &BinaryImage,
        monitors: MonitorConfig,
        node_count: usize,
        worker_count: usize,
        parallel: bool,
    ) -> Self {
        let node_count = node_count.max(1);
        let worker_count = if !parallel {
            1
        } else if worker_count == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            worker_count
        }
        .clamp(1, node_count);
        let mut workers: Vec<Vec<MemberState>> = (0..worker_count).map(|_| Vec::new()).collect();
        for id in 0..node_count {
            workers[id % worker_count].push(MemberState::fresh(id, image, monitors));
        }
        EpochScheduler {
            workers,
            node_count,
            parallel,
            alive_count: node_count,
            image: image.clone(),
            monitors,
        }
    }

    /// Number of members (including down ones — member ids are never reused).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of members currently up.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// True if `node` is up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.member(node).alive
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn member(&self, node: NodeId) -> &MemberState {
        assert!(node < self.node_count, "unknown node {node}");
        let member = &self.workers[node % self.workers.len()][node / self.workers.len()];
        debug_assert_eq!(member.id, node);
        member
    }

    fn member_mut(&mut self, node: NodeId) -> &mut MemberState {
        assert!(node < self.node_count, "unknown node {node}");
        let worker_count = self.workers.len();
        let member = &mut self.workers[node % worker_count][node / worker_count];
        debug_assert_eq!(member.id, node);
        member
    }

    /// Take `node` down with total state loss: its environment (and with it every
    /// installed patch hook) is discarded. The member stops receiving
    /// presentations, patch pushes, and learning shares until it rejoins.
    pub(crate) fn crash(&mut self, node: NodeId) {
        let (image, monitors) = (self.image.clone(), self.monitors);
        let member = self.member_mut(node);
        assert!(member.alive, "node {node} is already down");
        *member = MemberState::fresh(node, &image, monitors);
        member.alive = false;
        self.alive_count -= 1;
    }

    /// Bring a down member back up with a fresh environment and no patches — the
    /// caller is responsible for re-synchronizing it (bootstrap / delta sync).
    pub(crate) fn rejoin(&mut self, node: NodeId) {
        let member = self.member_mut(node);
        assert!(!member.alive, "node {node} is already up");
        member.alive = true;
        self.alive_count += 1;
    }

    /// Add a brand-new member (fresh environment, no patches) and return its id.
    /// Ids are append-only, so the round-robin worker partition stays valid.
    pub(crate) fn join(&mut self) -> NodeId {
        let id = self.node_count;
        let worker = id % self.workers.len();
        let member = MemberState::fresh(id, &self.image, self.monitors);
        self.workers[worker].push(member);
        self.node_count += 1;
        self.alive_count += 1;
        id
    }

    /// Reset one member to a fresh environment and install `plan` on it — the
    /// bootstrap primitive. Resetting first guarantees no stale hook survives under
    /// the new configuration (the member may have missed pushes while desynced).
    pub(crate) fn reset_and_apply(&mut self, node: NodeId, plan: &PatchPlan) {
        let (image, monitors) = (self.image.clone(), self.monitors);
        let member = self.member_mut(node);
        assert!(member.alive, "node {node} is down");
        *member = MemberState::fresh(node, &image, monitors);
        apply_plan_to_members(std::slice::from_mut(member), plan);
    }

    /// Execute one epoch: run every presentation on its member, collecting one
    /// [`RunRecord`] per presentation (returned in batch order). `active` lists the
    /// failure locations with live responses; a digest is built for each.
    pub(crate) fn run_epoch(
        &mut self,
        presentations: &[Presentation],
        active: &[Addr],
    ) -> Vec<RunRecord> {
        let worker_count = self.workers.len();
        let mut jobs: Vec<Vec<(usize, &Presentation)>> =
            (0..worker_count).map(|_| Vec::new()).collect();
        for (seq, presentation) in presentations.iter().enumerate() {
            assert!(
                presentation.node < self.node_count,
                "unknown node {}",
                presentation.node
            );
            jobs[presentation.node % worker_count].push((seq, presentation));
        }

        let mut records: Vec<RunRecord> = if self.parallel && worker_count > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .zip(&jobs)
                    .map(|(members, batch)| {
                        scope.spawn(move || run_worker(members, worker_count, batch, active))
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        } else {
            self.workers
                .iter_mut()
                .zip(&jobs)
                .flat_map(|(members, batch)| run_worker(members, worker_count, batch, active))
                .collect()
        };
        records.sort_by_key(|r| r.seq);
        records
    }

    /// Apply a shard-merged patch plan to **every** member — the distribution step
    /// that makes unexposed members immune. Fanned out across workers.
    pub(crate) fn apply_plan(&mut self, plan: &PatchPlan) {
        if plan.is_empty() {
            return;
        }
        if self.parallel && self.workers.len() > 1 {
            std::thread::scope(|scope| {
                for members in self.workers.iter_mut() {
                    scope.spawn(move || apply_plan_to_members(members, plan));
                }
            });
        } else {
            for members in self.workers.iter_mut() {
                apply_plan_to_members(members, plan);
            }
        }
    }

    /// Amortized parallel learning (Section 3.1): page `i` is traced by member
    /// `i % node_count` (the seed's round-robin), each member infers invariants from
    /// its share only, and every member returns its local model — the uploads the
    /// sharded store then merges. Fanned out across workers.
    pub(crate) fn learn(
        &mut self,
        image: &BinaryImage,
        pages: &[Vec<Word>],
    ) -> Vec<(NodeId, LearnedModel)> {
        let node_count = self.node_count;
        let mut locals: Vec<(NodeId, LearnedModel)> = if self.parallel && self.workers.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .map(|members| {
                        scope.spawn(move || learn_on_members(members, image, pages, node_count))
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        } else {
            self.workers
                .iter_mut()
                .flat_map(|members| learn_on_members(members, image, pages, node_count))
                .collect()
        };
        locals.sort_by_key(|(node, _)| *node);
        locals
    }
}

/// Run one worker's share of an epoch.
fn run_worker(
    members: &mut [MemberState],
    worker_count: usize,
    jobs: &[(usize, &Presentation)],
    active: &[Addr],
) -> Vec<RunRecord> {
    jobs.iter()
        .map(|(seq, presentation)| {
            let member = &mut members[presentation.node / worker_count];
            debug_assert_eq!(member.id, presentation.node);
            assert!(
                member.alive,
                "presentation scheduled for down member {}",
                member.id
            );
            member.env.flush_cache();
            let result = member.env.run(&presentation.page);
            let status = match &result.status {
                RunStatus::Completed => DigestStatus::Completed,
                RunStatus::Failure(f) => DigestStatus::FailureAt(f.location),
                RunStatus::Crash(_) => DigestStatus::Crashed,
            };
            let digests = active
                .iter()
                .map(|loc| (*loc, build_digest(member, *loc, &result, status)))
                .collect();
            RunRecord {
                seq: *seq,
                node: presentation.node,
                failure: result.failure().cloned(),
                status: result.status,
                rendered: result.rendered,
                digests,
            }
        })
        .collect()
}

/// Build the per-run digest for one failure location from the member's installed
/// checking patches (mirrors the seed community's digest construction).
fn build_digest(
    member: &MemberState,
    loc: Addr,
    result: &RunResult,
    status: DigestStatus,
) -> RunDigest {
    let mut digest = RunDigest::with_status(status);
    if let Some(state) = member.patches.get(&loc) {
        for (inv, _, check_hook) in &state.checks {
            let seq: Vec<bool> = result
                .observations
                .iter()
                .filter(|o| o.hook == *check_hook)
                .map(|o| o.kind == ObservationKind::Satisfied)
                .collect();
            if !seq.is_empty() {
                digest.observations.insert(inv.clone(), seq);
            }
        }
    }
    digest
}

/// Apply every operation of a patch plan to every up member of one worker. Down
/// members are skipped — they re-synchronize through the bootstrap / delta-sync
/// path when they rejoin.
fn apply_plan_to_members(members: &mut [MemberState], plan: &PatchPlan) {
    for member in members {
        if !member.alive {
            continue;
        }
        for op in plan.ops() {
            let state = member.patches.entry(op.location).or_default();
            match &op.directive {
                Directive::InstallChecks(checks) => {
                    let mut installed = Vec::with_capacity(checks.len());
                    for check in checks {
                        let handle = install_hooks(&mut member.env, check.build_hooks());
                        let hook = *handle.hook_ids().last().expect("check hook");
                        installed.push((check.invariant.clone(), handle, hook));
                    }
                    state.checks = installed;
                }
                Directive::RemoveChecks => {
                    let checks: Vec<_> = state.checks.drain(..).collect();
                    for (_, handle, _) in checks {
                        let _ = uninstall(&mut member.env, &handle);
                    }
                }
                Directive::InstallRepair(repair) => {
                    state.repair = Some(install_hooks(&mut member.env, repair.build_hooks()));
                }
                Directive::RemoveRepair => {
                    if let Some(handle) = state.repair.take() {
                        let _ = uninstall(&mut member.env, &handle);
                    }
                }
            }
        }
    }
}

/// Run one worker's members' learning shares.
fn learn_on_members(
    members: &mut [MemberState],
    image: &BinaryImage,
    pages: &[Vec<Word>],
    node_count: usize,
) -> Vec<(NodeId, LearnedModel)> {
    members
        .iter_mut()
        .filter(|member| member.alive)
        .map(|member| {
            let mut frontend = LearningFrontend::new(image.clone());
            for page in pages.iter().skip(member.id).step_by(node_count) {
                let result = member.env.run_with_tracer(page, &mut frontend);
                if result.is_completed() {
                    frontend.commit_run();
                } else {
                    frontend.discard_run();
                }
            }
            (member.id, frontend.into_model())
        })
        .collect()
}
