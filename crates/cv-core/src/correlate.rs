//! Candidate correlated invariant selection and correlation classification
//! (Section 2.4 of the paper).

use crate::config::ClearViewConfig;
use cv_inference::{Invariant, LearnedModel};
use cv_isa::Addr;
use cv_runtime::Failure;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How strongly an invariant's violations correlate with a failure (Section 2.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Correlation {
    /// Always satisfied: not correlated.
    Not,
    /// Violated at least once during at least one failing execution.
    Slightly,
    /// Violated the last time it was checked before every failure, and violated at some
    /// other point during at least one failing execution.
    Moderately,
    /// Violated the last time it was checked before every failure, and satisfied at
    /// every other check.
    Highly,
}

/// Classify an invariant from its per-failing-run observation sequences.
///
/// Each inner slice is the sequence of satisfied (`true`) / violated (`false`)
/// observations the invariant's check produced during one execution that ended in the
/// failure. Runs in which the invariant was never checked contribute nothing.
pub fn classify(observations_per_failure: &[Vec<bool>]) -> Correlation {
    let runs: Vec<&Vec<bool>> = observations_per_failure
        .iter()
        .filter(|r| !r.is_empty())
        .collect();
    if runs.is_empty() {
        return Correlation::Not;
    }
    let violated_last_every_time = runs.iter().all(|r| !*r.last().expect("non-empty"));
    let any_violation = runs.iter().any(|r| r.iter().any(|s| !*s));
    let violated_elsewhere_some_run = runs.iter().any(|r| r[..r.len() - 1].iter().any(|s| !*s));
    let satisfied_all_other_times = runs.iter().all(|r| r[..r.len() - 1].iter().all(|s| *s));

    if violated_last_every_time && satisfied_all_other_times {
        Correlation::Highly
    } else if violated_last_every_time && violated_elsewhere_some_run {
        Correlation::Moderately
    } else if any_violation {
        Correlation::Slightly
    } else {
        Correlation::Not
    }
}

/// The candidate correlated invariants for one failure, grouped by the procedure (on
/// the call stack) they belong to, innermost first.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// The candidate invariants in selection order.
    pub invariants: Vec<Invariant>,
    /// For each candidate, the entry address of the procedure it was drawn from.
    pub procedure_of: HashMap<Invariant, Addr>,
}

impl CandidateSet {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// True if no candidates were found.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }
}

/// Select the candidate correlated invariants for `failure` (Section 2.4.1).
///
/// Starting from the innermost procedure on the (shadow) call stack that contains the
/// failure location, and walking outwards through at most
/// `config.stack_procedures_considered` procedures *that have candidate invariants*, the
/// candidates are every learned invariant checked at an instruction that predominates
/// the relevant instruction of that procedure (the failure location for the innermost
/// procedure; the call site for outer frames). Invariants relating two variables are
/// kept only if they are checked in the same basic block as that instruction (unless the
/// restriction is disabled in the configuration).
pub fn candidate_invariants(
    failure: &Failure,
    model: &LearnedModel,
    config: &ClearViewConfig,
) -> CandidateSet {
    let mut set = CandidateSet::default();

    // Build the list of (procedure entry, instruction of interest) pairs innermost
    // first: the failure location in its own procedure, then each call site recorded on
    // the shadow stack, outermost last.
    let mut frames: Vec<(Addr, Addr)> = Vec::new();
    if let Some(proc) = model.procedures.proc_of_inst(failure.location) {
        frames.push((proc, failure.location));
    }
    for frame in failure.call_stack.iter().rev() {
        if let Some(proc) = model.procedures.proc_of_inst(frame.call_site) {
            let already = frames.iter().any(|(p, _)| *p == proc);
            if !already {
                frames.push((proc, frame.call_site));
            }
        }
    }

    let mut procedures_used = 0usize;
    for (proc_entry, site) in frames {
        if procedures_used >= config.stack_procedures_considered {
            break;
        }
        let cfg = match model.procedures.proc(proc_entry) {
            Some(c) => c,
            None => continue,
        };
        if !cfg.contains_inst(site) {
            continue;
        }
        let site_block = cfg.block_of_inst(site);
        let mut found_any = false;
        for check_addr in cfg.predominating_insts(site) {
            for inv in model.invariants.invariants_at(check_addr) {
                if matches!(inv, Invariant::StackPointerOffset { .. }) {
                    continue;
                }
                if inv.is_two_variable()
                    && config.restrict_two_variable_to_failure_block
                    && cfg.block_of_inst(check_addr) != site_block
                {
                    continue;
                }
                found_any = true;
                if !set.procedure_of.contains_key(inv) {
                    set.invariants.push(inv.clone());
                    set.procedure_of.insert(inv.clone(), proc_entry);
                }
            }
        }
        if found_any {
            procedures_used += 1;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_section_2_4_3() {
        // Highly: violated at the last check, satisfied at all others, on every failure.
        assert_eq!(
            classify(&[vec![true, true, false], vec![true, false]]),
            Correlation::Highly
        );
        // A single-observation run that is violated is also "highly".
        assert_eq!(classify(&[vec![false]]), Correlation::Highly);
        // Moderately: always violated at the last check, but also violated earlier in
        // at least one failing run.
        assert_eq!(
            classify(&[vec![true, false, false], vec![true, false]]),
            Correlation::Moderately
        );
        // Slightly: violated somewhere, but not at the last check of every failure.
        assert_eq!(
            classify(&[vec![false, true], vec![true, true]]),
            Correlation::Slightly
        );
        // Not: never violated.
        assert_eq!(classify(&[vec![true, true], vec![true]]), Correlation::Not);
        // No observations at all: not correlated.
        assert_eq!(classify(&[]), Correlation::Not);
        assert_eq!(classify(&[vec![]]), Correlation::Not);
    }

    #[test]
    fn correlation_ordering_prefers_higher_classes() {
        assert!(Correlation::Highly > Correlation::Moderately);
        assert!(Correlation::Moderately > Correlation::Slightly);
        assert!(Correlation::Slightly > Correlation::Not);
    }
}
