//! # cv-obs — the structured tracing + telemetry plane
//!
//! The paper's core claims are operational — monitoring overhead, time from first
//! exploit to community-wide immunity, patch-generation latency — and defending
//! them needs more than a flat metrics aggregate: it needs to say *where* an
//! epoch's time went and *what happened* to one failure location between
//! detection and immunity. This crate is the substrate the rest of the workspace
//! records into:
//!
//! * [`Recorder`] (`recorder.rs`) — a thread-safe event recorder with a process-wide
//!   static handle ([`recorder()`]). **Disabled by default and zero-cost while
//!   disabled**: starting a span is one relaxed atomic load, no lock, no
//!   allocation, no clock read ([`Recorder::span`]); hot paths that need the
//!   measured duration regardless (the fleet accounting plane) use
//!   [`Recorder::timed_span`], which always reads the monotonic clock but still
//!   skips the buffer entirely while disabled.
//! * [`SpanGuard`] — RAII span timing: drop (or [`SpanGuard::finish`], which also
//!   returns the measured [`Duration`](std::time::Duration)) records one complete
//!   span event. Events carry a static name, a category, the recording thread,
//!   and small numeric argument lists (epoch, shard, member counts, …).
//! * Monotonic [counters](Recorder::counter) and [instants](Recorder::instant) —
//!   counters graph quantities over time (pages processed, alive members);
//!   instants mark moments (churn events, repair-timeline stages).
//! * [`FixedHistogram`] (`histogram.rs`) — fixed-bucket (log₂ microsecond)
//!   latency histograms the recorder maintains per span name: O(1) memory however
//!   long the run, with approximate quantiles for live monitoring.
//! * [`chrome_trace_json`] (`chrome.rs`) — export a recorded stream as Chrome
//!   `trace_event` JSON, loadable in `chrome://tracing` and
//!   [Perfetto](https://ui.perfetto.dev) (each fleet renders as its own process
//!   track).
//! * [`Summary`] (`report.rs`) — the machine-readable run report: per-phase
//!   counts, totals, exact medians/p99 over epochs, final counter values, and
//!   per-failure-location *repair timelines* (first detection → candidate
//!   generation → evaluation verdicts → plan push → fleet-wide immunity),
//!   exportable as JSON.
//!
//! `cv-fleet` stamps every event with its fleet id (the `"fleet"` argument), so
//! one process running several fleets — `fleet_scale` runs sequential and
//! sharded configurations back to back — still yields per-fleet summaries
//! ([`Summary::build_for_fleet`]). Consistent with the workspace shims policy,
//! this crate has **no dependencies** — std only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod histogram;
mod recorder;
mod report;

pub use chrome::chrome_trace_json;
pub use histogram::FixedHistogram;
pub use recorder::{recorder, EventKind, Recorder, SpanGuard, TraceEvent};
pub use report::{PhaseStats, Summary, Timeline, TimelineEvent};
