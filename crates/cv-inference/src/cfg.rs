//! Dynamic procedure discovery, control-flow graphs, and predominators.
//!
//! ClearView builds a control-flow graph per *dynamically discovered* procedure using a
//! combined static and dynamic analysis (Section 2.2.3): the first time a basic block
//! executes, if it is not already part of a known CFG it is assumed to be the entry
//! point of a new procedure, whose blocks are then traced out symbolically. Predominator
//! information over these CFGs determines which variables are in scope for invariant
//! inference at an instruction and which invariants are candidates once a failure is
//! reported.

use cv_isa::{Addr, BinaryImage, Inst, InstWithAddr};
use cv_runtime::{CodeCache, RuntimeError};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// A node of a procedure CFG: one basic block plus its successor edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// The block's instructions in order.
    pub insts: Vec<InstWithAddr>,
    /// Successor block start addresses within the same procedure.
    pub succs: Vec<Addr>,
}

impl CfgBlock {
    /// The position of the instruction at `addr` within the block, if present.
    pub fn position_of(&self, addr: Addr) -> Option<usize> {
        self.insts.iter().position(|i| i.addr == addr)
    }
}

/// The control-flow graph of one dynamically discovered procedure.
#[derive(Debug, Clone)]
pub struct ProcedureCfg {
    /// The procedure entry address (its first basic block).
    pub entry: Addr,
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<Addr, CfgBlock>,
    /// For each block, the set of blocks that dominate it (including itself).
    dominators: HashMap<Addr, BTreeSet<Addr>>,
    /// Instruction address → owning block start.
    inst_to_block: HashMap<Addr, Addr>,
}

/// Upper bound on blocks traced per procedure (defensive limit for pathological images).
const MAX_BLOCKS_PER_PROCEDURE: usize = 4096;

impl ProcedureCfg {
    /// Symbolically trace the procedure whose entry block starts at `entry`.
    ///
    /// Tracing follows direct jumps, both arms of conditional jumps, and falls through
    /// direct/indirect calls; it stops at `ret`, `halt`, and indirect jumps whose targets
    /// cannot be computed — exactly the stopping rule of Section 2.2.3. Call targets are
    /// *not* traced into: they belong to other procedures.
    pub fn discover(image: &BinaryImage, entry: Addr) -> Result<ProcedureCfg, RuntimeError> {
        let mut blocks: BTreeMap<Addr, CfgBlock> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(entry);
        while let Some(start) = queue.pop_front() {
            if blocks.contains_key(&start) || blocks.len() >= MAX_BLOCKS_PER_PROCEDURE {
                continue;
            }
            let raw = CodeCache::build_block(image, start)?;
            let last = raw.insts.last().copied();
            let mut succs = Vec::new();
            if let Some(last) = last {
                match last.inst {
                    Inst::Jmp { target }
                        if image.contains_code_addr(target) => {
                            succs.push(target);
                        }
                    Inst::Jcc { target, .. } => {
                        if image.contains_code_addr(target) {
                            succs.push(target);
                        }
                        if image.contains_code_addr(last.next_addr()) {
                            succs.push(last.next_addr());
                        }
                    }
                    Inst::Call { .. } | Inst::CallIndirect { .. }
                        // The callee is a different procedure; control returns to the
                        // fall-through block.
                        if image.contains_code_addr(last.next_addr()) => {
                            succs.push(last.next_addr());
                        }
                    Inst::Ret | Inst::Halt | Inst::JmpIndirect { .. } => {}
                    // A block that ran off the end of the image has no successors.
                    _ => {}
                }
            }
            for s in &succs {
                queue.push_back(*s);
            }
            blocks.insert(
                start,
                CfgBlock {
                    start,
                    insts: raw.insts,
                    succs,
                },
            );
        }
        let mut inst_to_block = HashMap::new();
        for block in blocks.values() {
            for i in &block.insts {
                inst_to_block.entry(i.addr).or_insert(block.start);
            }
        }
        let dominators = compute_dominators(entry, &blocks);
        Ok(ProcedureCfg {
            entry,
            blocks,
            dominators,
            inst_to_block,
        })
    }

    /// True if the procedure contains the instruction at `addr`.
    pub fn contains_inst(&self, addr: Addr) -> bool {
        self.inst_to_block.contains_key(&addr)
    }

    /// The start address of the block containing the instruction at `addr`.
    pub fn block_of_inst(&self, addr: Addr) -> Option<Addr> {
        self.inst_to_block.get(&addr).copied()
    }

    /// The instruction at `addr`, if this procedure contains it.
    pub fn inst_at(&self, addr: Addr) -> Option<InstWithAddr> {
        let block = self.block_of_inst(addr)?;
        self.blocks[&block]
            .insts
            .iter()
            .find(|i| i.addr == addr)
            .copied()
    }

    /// All instruction addresses in the procedure.
    pub fn instruction_addrs(&self) -> Vec<Addr> {
        let mut out: Vec<Addr> = self.inst_to_block.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// True if block `a` dominates block `b` (both are block start addresses).
    pub fn block_dominates(&self, a: Addr, b: Addr) -> bool {
        self.dominators
            .get(&b)
            .map(|d| d.contains(&a))
            .unwrap_or(false)
    }

    /// True if the instruction at `i` predominates the instruction at `j`:
    /// every control-flow path to `j` first executes `i`. An instruction predominates
    /// itself.
    pub fn inst_predominates(&self, i: Addr, j: Addr) -> bool {
        if i == j {
            return true;
        }
        let (bi, bj) = match (self.block_of_inst(i), self.block_of_inst(j)) {
            (Some(bi), Some(bj)) => (bi, bj),
            _ => return false,
        };
        if bi == bj {
            let block = &self.blocks[&bi];
            match (block.position_of(i), block.position_of(j)) {
                (Some(pi), Some(pj)) => pi < pj,
                _ => false,
            }
        } else {
            self.block_dominates(bi, bj)
        }
    }

    /// Instruction addresses that predominate `j` (including `j` itself), in ascending
    /// address order. This is the scope over which candidate correlated invariants are
    /// drawn for a failure at `j` (Section 2.4.1).
    pub fn predominating_insts(&self, j: Addr) -> Vec<Addr> {
        let mut out: Vec<Addr> = self
            .inst_to_block
            .keys()
            .copied()
            .filter(|&i| self.inst_predominates(i, j))
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of blocks in the procedure.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// Standard iterative dominator computation over the block graph.
fn compute_dominators(
    entry: Addr,
    blocks: &BTreeMap<Addr, CfgBlock>,
) -> HashMap<Addr, BTreeSet<Addr>> {
    let all: BTreeSet<Addr> = blocks.keys().copied().collect();
    let mut preds: HashMap<Addr, Vec<Addr>> = HashMap::new();
    for block in blocks.values() {
        for s in &block.succs {
            preds.entry(*s).or_default().push(block.start);
        }
    }
    let mut dom: HashMap<Addr, BTreeSet<Addr>> = HashMap::new();
    for &b in blocks.keys() {
        if b == entry {
            dom.insert(b, [b].into_iter().collect());
        } else {
            dom.insert(b, all.clone());
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in blocks.keys() {
            if b == entry {
                continue;
            }
            let mut new_set: Option<BTreeSet<Addr>> = None;
            if let Some(ps) = preds.get(&b) {
                for p in ps {
                    let pd = &dom[p];
                    new_set = Some(match new_set {
                        None => pd.clone(),
                        Some(cur) => cur.intersection(pd).copied().collect(),
                    });
                }
            }
            let mut new_set = new_set.unwrap_or_default();
            new_set.insert(b);
            if new_set != dom[&b] {
                dom.insert(b, new_set);
                changed = true;
            }
        }
    }
    dom
}

/// The database of dynamically discovered procedures for one application image.
#[derive(Debug, Clone)]
pub struct ProcedureDatabase {
    image: BinaryImage,
    procs: BTreeMap<Addr, ProcedureCfg>,
    inst_to_proc: HashMap<Addr, Addr>,
    /// Count of single static procedures split into multiple dynamic ones (diagnostic
    /// for the "procedure fission" phenomenon discussed in Section 2.2.3).
    pub discovery_events: u64,
}

impl ProcedureDatabase {
    /// Create an empty database for `image`.
    pub fn new(image: BinaryImage) -> Self {
        ProcedureDatabase {
            image,
            procs: BTreeMap::new(),
            inst_to_proc: HashMap::new(),
            discovery_events: 0,
        }
    }

    /// The image the database describes.
    pub fn image(&self) -> &BinaryImage {
        &self.image
    }

    /// Record that the basic block starting at `block_start` executed. If the block is
    /// not part of any known procedure, a new procedure rooted at it is discovered.
    /// Returns the entry of the newly discovered procedure, if any.
    pub fn observe_block(&mut self, block_start: Addr) -> Option<Addr> {
        if self.inst_to_proc.contains_key(&block_start) {
            return None;
        }
        if !self.image.contains_code_addr(block_start) {
            return None;
        }
        match ProcedureCfg::discover(&self.image, block_start) {
            Ok(cfg) => {
                for addr in cfg.instruction_addrs() {
                    self.inst_to_proc.entry(addr).or_insert(block_start);
                }
                self.procs.insert(block_start, cfg);
                self.discovery_events += 1;
                Some(block_start)
            }
            Err(_) => None,
        }
    }

    /// Record an observed call target (procedure entries discovered from calls are the
    /// most reliable kind).
    pub fn observe_call_target(&mut self, target: Addr) -> Option<Addr> {
        self.observe_block(target)
    }

    /// Discover the procedure rooted at `entry` even when `entry` already lies
    /// inside another procedure's CFG.
    ///
    /// [`ProcedureDatabase::observe_block`] deliberately skips covered blocks —
    /// that is the dynamic-discovery rule. But replaying a *snapshot's* entry set
    /// must reproduce every stored procedure regardless of replay order: under
    /// procedure fission a mid-procedure block can be discovered (and become its
    /// own procedure) before the enclosing lower-address procedure whose CFG
    /// covers its entry, and an ascending-order replay through `observe_block`
    /// would silently drop it. Instruction → procedure attribution for shared
    /// instructions keeps the first discoverer, exactly like live discovery.
    pub fn ensure_procedure(&mut self, entry: Addr) -> Option<Addr> {
        if self.procs.contains_key(&entry) {
            return None;
        }
        if !self.image.contains_code_addr(entry) {
            return None;
        }
        match ProcedureCfg::discover(&self.image, entry) {
            Ok(cfg) => {
                for addr in cfg.instruction_addrs() {
                    self.inst_to_proc.entry(addr).or_insert(entry);
                }
                self.procs.insert(entry, cfg);
                self.discovery_events += 1;
                Some(entry)
            }
            Err(_) => None,
        }
    }

    /// The entry address of the procedure containing the instruction at `addr`.
    pub fn proc_of_inst(&self, addr: Addr) -> Option<Addr> {
        self.inst_to_proc.get(&addr).copied()
    }

    /// The CFG of the procedure whose entry is `entry`.
    pub fn proc(&self, entry: Addr) -> Option<&ProcedureCfg> {
        self.procs.get(&entry)
    }

    /// The CFG of the procedure containing the instruction at `addr`.
    pub fn proc_containing(&self, addr: Addr) -> Option<&ProcedureCfg> {
        self.proc_of_inst(addr).and_then(|e| self.proc(e))
    }

    /// The instruction at `addr`, if some discovered procedure contains it.
    pub fn inst_at(&self, addr: Addr) -> Option<InstWithAddr> {
        self.proc_containing(addr).and_then(|p| p.inst_at(addr))
    }

    /// The instructions that precede `addr` within its basic block, in block order —
    /// the earlier instruction of a block trivially predominates the later one, so
    /// this slice is exactly the scope of the within-block pairwise samples. Returns
    /// `None` when no discovered procedure places `addr` in a block.
    ///
    /// The learning front end resolves this prefix to interned variable ids **once**
    /// per instruction address (a pair *schedule*), instead of re-deriving operands
    /// from every earlier instruction on every event — the O(block²)-per-event cost
    /// this accessor exists to remove.
    pub fn block_prefix(&self, addr: Addr) -> Option<&[InstWithAddr]> {
        let cfg = self.proc_containing(addr)?;
        let block_start = cfg.block_of_inst(addr)?;
        let block = &cfg.blocks[&block_start];
        let pos = block.position_of(addr)?;
        Some(&block.insts[..pos])
    }

    /// A monotone counter that advances whenever a new procedure is discovered.
    /// Derived caches (the front end's pair schedules) compare it to decide whether
    /// block membership may have changed since they were built.
    pub fn discovery_version(&self) -> u64 {
        self.discovery_events
    }

    /// Iterate over all discovered procedures.
    pub fn procedures(&self) -> impl Iterator<Item = &ProcedureCfg> {
        self.procs.values()
    }

    /// Number of discovered procedures.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True if no procedures have been discovered yet.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::{Cond, Port, ProgramBuilder, Reg};

    /// main: reads x; if x >= 10 calls helper; renders; halts.
    /// helper: doubles eax, returns.
    fn sample_image() -> (BinaryImage, std::collections::BTreeMap<String, Addr>) {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Eax, Port::Input);
        b.cmp(Reg::Eax, 10u32);
        let small = b.new_label("small");
        b.jcc(Cond::Lt, small);
        let helper = b.new_label("helper");
        b.call(helper);
        b.bind(small);
        b.output(Reg::Eax, Port::Render);
        b.halt();
        let helper_addr = b.here();
        b.bind(helper);
        b.note_symbol("helper", helper_addr);
        b.add(Reg::Eax, Reg::Eax);
        b.ret();
        b.set_entry(main);
        b.build_with_symbols().unwrap()
    }

    #[test]
    fn discovery_traces_branches_but_not_callees() {
        let (image, syms) = sample_image();
        let cfg = ProcedureCfg::discover(&image, syms["main"]).unwrap();
        // Blocks: entry..jcc, call block, join (output/halt). The helper is not part of
        // this procedure.
        assert!(cfg.block_count() >= 3);
        assert!(!cfg.contains_inst(syms["helper"]));
        assert!(cfg.contains_inst(syms["main"]));
    }

    #[test]
    fn predominators_within_and_across_blocks() {
        let (image, syms) = sample_image();
        let cfg = ProcedureCfg::discover(&image, syms["main"]).unwrap();
        let addrs = cfg.instruction_addrs();
        let first = addrs[0];
        let last = *addrs.last().unwrap();
        assert!(
            cfg.inst_predominates(first, last),
            "entry predominates everything"
        );
        assert!(!cfg.inst_predominates(last, first));
        assert!(cfg.inst_predominates(first, first), "reflexive");
        // The call instruction does NOT predominate the output instruction, because the
        // branch can skip it.
        let call_addr = cfg
            .blocks
            .values()
            .flat_map(|b| &b.insts)
            .find(|i| matches!(i.inst, Inst::Call { .. }))
            .unwrap()
            .addr;
        let out_addr = cfg
            .blocks
            .values()
            .flat_map(|b| &b.insts)
            .find(|i| matches!(i.inst, Inst::Out { .. }))
            .unwrap()
            .addr;
        assert!(!cfg.inst_predominates(call_addr, out_addr));
        // But the cmp (in the entry block) does.
        let cmp_addr = cfg
            .blocks
            .values()
            .flat_map(|b| &b.insts)
            .find(|i| matches!(i.inst, Inst::Cmp { .. }))
            .unwrap()
            .addr;
        assert!(cfg.inst_predominates(cmp_addr, out_addr));
        let preds = cfg.predominating_insts(out_addr);
        assert!(preds.contains(&cmp_addr));
        assert!(preds.contains(&out_addr));
        assert!(!preds.contains(&call_addr));
    }

    #[test]
    fn database_discovers_procedures_from_blocks_and_calls() {
        let (image, syms) = sample_image();
        let mut db = ProcedureDatabase::new(image);
        assert!(db.is_empty());
        assert_eq!(db.observe_block(syms["main"]), Some(syms["main"]));
        assert_eq!(db.observe_block(syms["main"]), None, "already known");
        // The branch-target block inside main is already covered, so it is not a new
        // procedure.
        let main_cfg_blocks: Vec<Addr> = db
            .proc(syms["main"])
            .unwrap()
            .blocks
            .keys()
            .copied()
            .collect();
        for b in main_cfg_blocks {
            assert_eq!(db.observe_block(b), None);
        }
        // The helper is new.
        assert_eq!(db.observe_call_target(syms["helper"]), Some(syms["helper"]));
        assert_eq!(db.len(), 2);
        assert_eq!(db.proc_of_inst(syms["helper"]), Some(syms["helper"]));
        assert!(db.proc_containing(syms["main"]).is_some());
    }

    #[test]
    fn block_prefix_matches_block_positions() {
        let (image, syms) = sample_image();
        let mut db = ProcedureDatabase::new(image);
        let v0 = db.discovery_version();
        db.observe_block(syms["main"]);
        assert!(
            db.discovery_version() > v0,
            "discovery advances the version"
        );
        let cfg = db.proc(syms["main"]).unwrap();
        for block in cfg.blocks.values() {
            for (pos, iwa) in block.insts.iter().enumerate() {
                // Instructions can appear in several blocks; the prefix must agree
                // with whichever block `block_of_inst` resolves to.
                let owner = cfg.block_of_inst(iwa.addr).unwrap();
                if owner != block.start {
                    continue;
                }
                let prefix = db.block_prefix(iwa.addr).expect("inst is in a block");
                assert_eq!(prefix.len(), pos);
                assert_eq!(prefix, &block.insts[..pos]);
            }
        }
        assert_eq!(db.block_prefix(0x9_0000), None, "outside any procedure");
    }

    #[test]
    fn observe_block_outside_code_is_ignored() {
        let (image, _) = sample_image();
        let mut db = ProcedureDatabase::new(image);
        assert_eq!(db.observe_block(0x9_0000), None);
        assert_eq!(db.ensure_procedure(0x9_0000), None);
    }

    #[test]
    fn ensure_procedure_recovers_fissioned_entries_in_any_replay_order() {
        let (image, syms) = sample_image();

        // Live run with procedure fission: a mid-main block (the output/halt join
        // block) executes first and becomes its own procedure; main is discovered
        // later and its CFG covers that block's entry.
        let mut live = ProcedureDatabase::new(image.clone());
        let join_block = {
            let probe = ProcedureCfg::discover(&image, syms["main"]).unwrap();
            probe
                .blocks
                .values()
                .find(|b| b.insts.iter().any(|i| matches!(i.inst, Inst::Out { .. })))
                .unwrap()
                .start
        };
        assert_ne!(join_block, syms["main"]);
        assert_eq!(live.observe_block(join_block), Some(join_block));
        assert_eq!(live.observe_block(syms["main"]), Some(syms["main"]));
        let live_entries: Vec<Addr> = live.procedures().map(|p| p.entry).collect();
        assert!(live_entries.contains(&join_block));
        assert!(live_entries.contains(&syms["main"]));

        // An ascending-order replay through observe_block would drop the inner
        // procedure (main's CFG covers its entry)...
        let mut naive = ProcedureDatabase::new(image.clone());
        for &entry in &live_entries {
            naive.observe_block(entry);
        }
        assert!(
            naive.len() < live.len(),
            "the naive replay loses a procedure"
        );

        // ...but ensure_procedure reproduces the exact entry set.
        let mut restored = ProcedureDatabase::new(image);
        for &entry in &live_entries {
            restored.ensure_procedure(entry);
        }
        let restored_entries: Vec<Addr> = restored.procedures().map(|p| p.entry).collect();
        assert_eq!(restored_entries, live_entries);
    }

    #[test]
    fn loop_cfg_dominators_converge() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.mov(Reg::Ecx, 5u32);
        let top = b.new_label("top");
        b.bind(top);
        b.sub(Reg::Ecx, 1u32);
        b.cmp(Reg::Ecx, 0u32);
        b.jcc(Cond::Ne, top);
        b.halt();
        b.set_entry(main);
        let image = b.build().unwrap();
        let cfg = ProcedureCfg::discover(&image, image.entry).unwrap();
        // The loop head block (the jcc target, distinct from the entry block) is
        // dominated by the entry block.
        let loop_block = cfg
            .blocks
            .values()
            .find(|blk| {
                blk.start != cfg.entry
                    && blk.insts.iter().any(|i| matches!(i.inst, Inst::Sub { .. }))
            })
            .unwrap()
            .start;
        assert!(cfg.block_dominates(cfg.entry, loop_block));
        assert!(!cfg.block_dominates(loop_block, cfg.entry));
    }
}
