//! The Red Team exercise (Section 4): attack the protected browser with all ten
//! exploits and report which ones ClearView blocks and patches.
//!
//! Run with: `cargo run --example red_team_exercise`
//! Add `--reconfigured` to apply the paper's post-exercise reconfigurations
//! (deeper stack walk for 285595, expanded learning suite for 325403).

use clearview::apps::{
    expanded_learning_suite, learning_suite, red_team_exploits, Browser, Reconfiguration,
};
use clearview::core::{learn_model, ClearViewConfig, ProtectedApplication};
use clearview::runtime::{MonitorConfig, RunStatus};

fn main() {
    let reconfigured = std::env::args().any(|a| a == "--reconfigured");
    let browser = Browser::build();
    let mut patched = 0;
    let mut blocked = 0;

    println!("exploit   error type                     result");
    println!("-------   ----------                     ------");
    for exploit in red_team_exploits(&browser) {
        let (pages, config) = if reconfigured {
            match exploit.reconfiguration {
                Reconfiguration::ExpandedLearning => {
                    (expanded_learning_suite(), ClearViewConfig::default())
                }
                Reconfiguration::StackWalk => {
                    (learning_suite(), ClearViewConfig::with_stack_walk(2))
                }
                _ => (learning_suite(), ClearViewConfig::default()),
            }
        } else {
            (learning_suite(), ClearViewConfig::default())
        };
        let (model, _) = learn_model(&browser.image, &pages, MonitorConfig::full());
        let mut app = ProtectedApplication::new(browser.image.clone(), model, config);

        let mut result = "never patched (all attacks blocked)".to_string();
        let mut contained = true;
        for presentation in 1..=30 {
            let out = app.present(exploit.page());
            match out.status {
                RunStatus::Completed => {
                    result = format!("patched after {presentation} presentations");
                    patched += 1;
                    break;
                }
                RunStatus::Failure(_) => {}
                RunStatus::Crash(_) => contained = false,
            }
        }
        if contained {
            blocked += 1;
        }
        println!(
            "{:<9} {:<30} {result}",
            exploit.bugzilla, exploit.error_type
        );
    }
    println!("\nattacks contained: {blocked}/10, exploits patched: {patched}/10");
    println!("(paper: 10/10 blocked; 7/10 patched in the exercise, 9/10 after reconfiguration)");
}
