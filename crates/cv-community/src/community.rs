//! The application community: many machines running the same application, cooperating
//! to learn, detect, and repair (Section 3 of the paper).
//!
//! Since the `cv-fleet` engine landed, [`Community`] is a thin N=small facade over
//! [`cv_fleet::Fleet`]: every `browse` is a one-presentation epoch, which makes the
//! fleet's batched protocol degenerate to exactly the seed's sequential protocol
//! (digest routing, responder directives, and patch distribution happen in the same
//! order, so presentation counts like "four presentations to a patch" are preserved).
//! The facade also expands the fleet's batched console log back into the legacy
//! per-event [`Message`] stream that tests and harnesses observe. The expanded
//! stream carries the same events with the same payloads; within one browse the
//! interleaving differs slightly from the pre-fleet implementation (observation
//! reports, then failure notifications, then all patch messages — the seed emitted
//! patch messages per location as directives were applied).

use crate::messages::{Message, NodeId};
use cv_core::{ClearViewConfig, Phase, RepairReport};
use cv_fleet::{Fleet, FleetConfig, FleetMessage, PatchPushKind, Presentation};
use cv_inference::LearnedModel;
use cv_isa::{Addr, BinaryImage, Word};
use cv_runtime::{MonitorConfig, RunStatus};

/// The outcome of presenting a page to one community member.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityOutcome {
    /// The node that processed the page.
    pub node: NodeId,
    /// How the run ended.
    pub status: RunStatus,
    /// What the node rendered.
    pub rendered: Vec<Word>,
    /// True if a monitor blocked the page.
    pub blocked: bool,
}

/// The facade's one fleet shape, shared by fresh construction and snapshot
/// restore: one worker and one manager shard, because a handful of members
/// browsing one page at a time gains nothing from fan-out, single-threaded
/// execution keeps the facade deterministic, and a single manager shard is
/// *exactly* the seed's central responder pass (the shard owns every failure
/// location).
fn facade_fleet_config(node_count: usize, monitors: MonitorConfig) -> FleetConfig {
    FleetConfig::new(node_count.max(1))
        .with_workers(1)
        .with_shards(4)
        .with_manager_shards(1)
        .with_monitors(monitors)
}

/// An application community protected by ClearView.
pub struct Community {
    fleet: Fleet,
    image: BinaryImage,
    monitors: MonitorConfig,
    log: Vec<Message>,
    /// Fleet log batches already expanded into `log`.
    translated: usize,
}

impl Community {
    /// Create a community of `node_count` members running `image` with an empty model.
    pub fn new(image: BinaryImage, config: ClearViewConfig, node_count: usize) -> Self {
        Self::with_monitors(image, config, node_count, MonitorConfig::full())
    }

    /// Create a community with an explicit monitor configuration.
    pub fn with_monitors(
        image: BinaryImage,
        config: ClearViewConfig,
        node_count: usize,
        monitors: MonitorConfig,
    ) -> Self {
        Community {
            fleet: Fleet::new(
                image.clone(),
                config,
                facade_fleet_config(node_count, monitors),
            ),
            image,
            monitors,
            log: Vec::new(),
            translated: 0,
        }
    }

    /// Warm-start a community from a checkpoint previously taken with
    /// [`Community::checkpoint`]: the learned model is restored from the snapshot,
    /// every member inherits the validated repairs, and each repaired location is
    /// Protected immediately — no learning replay, no re-checking.
    pub fn restore(
        image: BinaryImage,
        config: ClearViewConfig,
        node_count: usize,
        monitors: MonitorConfig,
        snapshot: &cv_fleet::Snapshot,
    ) -> Self {
        let mut community = Community {
            fleet: Fleet::from_snapshot(
                image.clone(),
                config,
                facade_fleet_config(node_count, monitors),
                snapshot,
            ),
            image,
            monitors,
            log: Vec::new(),
            translated: 0,
        };
        community.translate_new_batches();
        community
    }

    /// Checkpoint the community's full protection state (invariants, discovered
    /// procedures, net patch plan) as an encodable snapshot.
    pub fn checkpoint(&mut self) -> cv_fleet::Snapshot {
        self.fleet.checkpoint()
    }

    /// Number of community members.
    pub fn node_count(&self) -> usize {
        self.fleet.node_count()
    }

    /// The message log (failure notifications, patch distributions, ...).
    pub fn log(&self) -> &[Message] {
        &self.log
    }

    /// The underlying fleet engine (batched log, metrics, epoch API).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The merged, community-wide learned model.
    pub fn model(&self) -> &LearnedModel {
        self.fleet.model()
    }

    /// Maintainer-facing reports for every failure the community has responded to.
    pub fn reports(&self) -> Vec<RepairReport> {
        self.fleet.reports()
    }

    /// True if a successful repair is distributed for the failure at `location`.
    pub fn is_protected_against(&self, location: Addr) -> bool {
        self.fleet.is_protected_against(location)
    }

    /// The response phase for the failure at `location`.
    pub fn phase_of(&self, location: Addr) -> Option<Phase> {
        self.fleet.phase_of(location)
    }

    /// Amortized parallel learning (Section 3.1): the learning pages are divided among
    /// the members round-robin; each member traces only its share, infers invariants
    /// locally, and uploads them; shard workers merge the uploads into the
    /// community-wide invariant database.
    ///
    /// Runs that fail or crash are discarded, so erroneous executions never contribute
    /// invariants.
    pub fn distributed_learning(&mut self, pages: &[Vec<Word>]) {
        self.fleet.distributed_learning(pages);
        self.translate_new_batches();
    }

    /// Centralized learning on a single member (used by experiments that need the exact
    /// single-machine model).
    pub fn centralized_learning(&mut self, pages: &[Vec<Word>]) {
        let (model, _) = cv_core::learn_model(&self.image, pages, self.monitors);
        self.fleet.set_model(model);
    }

    /// A member loads a page. Failures are reported to the central manager, which
    /// drives the response and distributes patches to every member.
    pub fn browse(&mut self, node: NodeId, page: &[Word]) -> CommunityOutcome {
        assert!(node < self.fleet.node_count(), "unknown node {node}");
        let mut epoch = self.fleet.run_epoch(&[Presentation::new(node, page)]);
        let outcome = epoch.outcomes.remove(0);
        self.translate_new_batches();
        CommunityOutcome {
            node: outcome.node,
            status: outcome.status,
            rendered: outcome.rendered,
            blocked: outcome.blocked,
        }
    }

    /// Expand fleet log batches recorded since the last call into the legacy
    /// per-event message stream.
    fn translate_new_batches(&mut self) {
        let batches = self.fleet.log().messages();
        for batch in &batches[self.translated..] {
            match batch {
                FleetMessage::InvariantUploads { uploads, .. } => {
                    for (node, invariants) in uploads {
                        self.log.push(Message::InvariantUpload {
                            node: *node,
                            invariants: *invariants,
                        });
                    }
                }
                FleetMessage::Failures { failures, .. } => {
                    for (node, location) in failures {
                        self.log.push(Message::FailureNotification {
                            node: *node,
                            location: *location,
                        });
                    }
                }
                FleetMessage::Observations {
                    location, reports, ..
                } => {
                    for (node, observations) in reports {
                        self.log.push(Message::ObservationReport {
                            node: *node,
                            location: *location,
                            observations: *observations,
                        });
                    }
                }
                FleetMessage::Bootstrap {
                    members,
                    snapshot_bytes,
                    ..
                } => {
                    for _ in 0..*members {
                        self.log.push(Message::StateSync {
                            bytes: *snapshot_bytes,
                        });
                    }
                }
                FleetMessage::DeltaSync {
                    members,
                    delta_bytes,
                    ..
                } => {
                    for _ in 0..*members {
                        self.log.push(Message::StateSync {
                            bytes: *delta_bytes,
                        });
                    }
                }
                FleetMessage::PatchPushes { .. } => {
                    for (location, kind) in batch.push_summaries() {
                        self.log.push(match kind {
                            PatchPushKind::InstallChecks { invariants } => {
                                Message::ChecksDistributed {
                                    location,
                                    invariants,
                                }
                            }
                            PatchPushKind::RemoveChecks => Message::ChecksRemoved { location },
                            PatchPushKind::InstallRepair { description } => {
                                Message::RepairDistributed {
                                    location,
                                    description,
                                }
                            }
                            PatchPushKind::RemoveRepair => Message::RepairRemoved { location },
                        });
                    }
                }
            }
        }
        self.translated = batches.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_apps::{learning_suite, red_team_exploits, Browser};

    fn protected_community(nodes: usize) -> (Community, Browser) {
        let browser = Browser::build();
        let mut community =
            Community::new(browser.image.clone(), ClearViewConfig::default(), nodes);
        community.distributed_learning(&learning_suite());
        (community, browser)
    }

    #[test]
    fn distributed_learning_merges_member_uploads() {
        let (community, _) = protected_community(3);
        assert!(community.model().invariants.len() > 50);
        let uploads = community
            .log()
            .iter()
            .filter(|m| matches!(m, Message::InvariantUpload { .. }))
            .count();
        assert_eq!(uploads, 3, "every member uploads its local invariants");
    }

    #[test]
    fn community_gains_immunity_without_exposure() {
        let (mut community, browser) = protected_community(3);
        let exploit = red_team_exploits(&browser)
            .into_iter()
            .find(|e| e.bugzilla == 290162)
            .unwrap();
        // Only node 0 is ever attacked.
        let mut survived_at = None;
        for i in 1..=10 {
            let out = community.browse(0, exploit.page());
            if matches!(out.status, RunStatus::Completed) {
                survived_at = Some(i);
                break;
            }
        }
        assert!(
            survived_at.is_some(),
            "the attacked member eventually survives"
        );
        // Node 2 has never seen the attack, but the distributed patch protects it.
        let out = community.browse(2, exploit.page());
        assert!(
            matches!(out.status, RunStatus::Completed),
            "an unexposed member survives its first exposure: {:?}",
            out.status
        );
        // The patch-distribution messages are in the log.
        assert!(community
            .log()
            .iter()
            .any(|m| matches!(m, Message::RepairDistributed { .. })));
    }

    #[test]
    fn simultaneous_exploits_are_handled_independently() {
        let (mut community, browser) = protected_community(2);
        let exploits = red_team_exploits(&browser);
        let a = exploits.iter().find(|e| e.bugzilla == 290162).unwrap();
        let b = exploits.iter().find(|e| e.bugzilla == 296134).unwrap();
        // Interleave two different exploits on two different members.
        for _ in 0..8 {
            community.browse(0, a.page());
            community.browse(1, b.page());
        }
        let a_loc = browser.sym("vuln_290162_call");
        let b_loc = browser.sym("vuln_296134_ret");
        assert!(
            community.is_protected_against(a_loc),
            "{:?}",
            community.phase_of(a_loc)
        );
        assert!(
            community.is_protected_against(b_loc),
            "{:?}",
            community.phase_of(b_loc)
        );
        // Both members now survive both attacks.
        for node in 0..2 {
            assert!(matches!(
                community.browse(node, a.page()).status,
                RunStatus::Completed
            ));
            assert!(matches!(
                community.browse(node, b.page()).status,
                RunStatus::Completed
            ));
        }
        assert_eq!(community.reports().len(), 2);
    }

    #[test]
    fn benign_browsing_never_triggers_a_response() {
        let (mut community, _) = protected_community(2);
        for (i, page) in learning_suite().iter().enumerate() {
            let out = community.browse(i % 2, page);
            assert!(matches!(out.status, RunStatus::Completed));
        }
        assert!(community.reports().is_empty());
        assert!(!community
            .log()
            .iter()
            .any(|m| matches!(m, Message::FailureNotification { .. })));
    }

    #[test]
    fn facade_exposes_fleet_metrics_and_batched_log() {
        let (mut community, browser) = protected_community(2);
        let exploit = red_team_exploits(&browser)
            .into_iter()
            .find(|e| e.bugzilla == 290162)
            .unwrap();
        for _ in 0..6 {
            community.browse(0, exploit.page());
        }
        let fleet = community.fleet();
        assert!(fleet.metrics().pages_processed >= 6);
        assert!(fleet.metrics().patch_pushes > 0);
        // The batched log carries the same traffic the legacy log expands to.
        let batched_events: usize = fleet.log().messages().iter().map(|m| m.event_count()).sum();
        assert_eq!(batched_events, community.log().len());
    }
}
