//! Execution statistics and the simulated cost model.
//!
//! The paper reports wall-clock overheads measured on 2008-era hardware (Table 2,
//! Section 4.4). Our substrate is an interpreter, so absolute times are meaningless;
//! instead the runtime counts the events that *cause* the paper's overheads
//! (instructions, monitor checks, trace records, cache builds) and a [`CostModel`]
//! converts them into simulated time units. The benchmark harnesses report both these
//! simulated overheads (for the Table 2 / learning-overhead shapes) and real wall-clock
//! Criterion measurements of the reproduction itself.

use serde::{Deserialize, Serialize};

/// Raw event counts for one or more executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Guest instructions executed.
    pub instructions: u64,
    /// Per-instruction trace events delivered to a tracer (learning overhead).
    pub trace_events: u64,
    /// Hook (patch) invocations.
    pub hook_invocations: u64,
    /// Memory Firewall control-transfer validations.
    pub firewall_checks: u64,
    /// Heap Guard canary checks on heap writes.
    pub heap_guard_checks: u64,
    /// Shadow Stack push/pop operations.
    pub shadow_stack_ops: u64,
    /// Basic blocks decoded into the code cache.
    pub blocks_built: u64,
    /// Basic blocks ejected from the code cache (patch application/removal).
    pub blocks_ejected: u64,
    /// Runs performed.
    pub runs: u64,
}

impl ExecutionStats {
    /// Accumulate another stats record into this one.
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.instructions += other.instructions;
        self.trace_events += other.trace_events;
        self.hook_invocations += other.hook_invocations;
        self.firewall_checks += other.firewall_checks;
        self.heap_guard_checks += other.heap_guard_checks;
        self.shadow_stack_ops += other.shadow_stack_ops;
        self.blocks_built += other.blocks_built;
        self.blocks_ejected += other.blocks_ejected;
        self.runs += other.runs;
    }
}

/// Weights that convert raw event counts into simulated time units.
///
/// The defaults are calibrated so that the synthetic browser workload reproduces the
/// *shape* of the paper's overhead measurements: Memory Firewall ≈ 1.5× bare, adding the
/// Shadow Stack ≈ 2×, adding Heap Guard ≈ 2.5×, everything ≈ 3×, and full tracing two to
/// three hundred times slower than untraced execution (Sections 4.4.1–4.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of executing one instruction natively.
    pub instruction: f64,
    /// Cost of recording one trace event (the Daikon x86 front end dominates learning).
    pub trace_event: f64,
    /// Cost of one hook invocation.
    pub hook_invocation: f64,
    /// Cost of one Memory Firewall validation.
    pub firewall_check: f64,
    /// Cost of one Heap Guard canary check.
    pub heap_guard_check: f64,
    /// Cost of one Shadow Stack operation.
    pub shadow_stack_op: f64,
    /// Cost of decoding one basic block into the cache.
    pub block_build: f64,
    /// Cost of ejecting one basic block.
    pub block_eject: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            instruction: 1.0,
            trace_event: 1800.0,
            hook_invocation: 6.0,
            firewall_check: 5.1,
            heap_guard_check: 13.8,
            shadow_stack_op: 7.6,
            block_build: 40.0,
            block_eject: 10.0,
        }
    }
}

impl CostModel {
    /// Simulated time units for `stats` under this model.
    pub fn cost(&self, stats: &ExecutionStats) -> f64 {
        stats.instructions as f64 * self.instruction
            + stats.trace_events as f64 * self.trace_event
            + stats.hook_invocations as f64 * self.hook_invocation
            + stats.firewall_checks as f64 * self.firewall_check
            + stats.heap_guard_checks as f64 * self.heap_guard_check
            + stats.shadow_stack_ops as f64 * self.shadow_stack_op
            + stats.blocks_built as f64 * self.block_build
            + stats.blocks_ejected as f64 * self.block_eject
    }

    /// Overhead of `stats` relative to a baseline run (`cost(stats) / cost(baseline)`).
    pub fn overhead(&self, stats: &ExecutionStats, baseline: &ExecutionStats) -> f64 {
        let base = self.cost(baseline);
        if base == 0.0 {
            return 1.0;
        }
        self.cost(stats) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = ExecutionStats {
            instructions: 1,
            trace_events: 2,
            hook_invocations: 3,
            firewall_checks: 4,
            heap_guard_checks: 5,
            shadow_stack_ops: 6,
            blocks_built: 7,
            blocks_ejected: 8,
            runs: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.trace_events, 4);
        assert_eq!(a.hook_invocations, 6);
        assert_eq!(a.firewall_checks, 8);
        assert_eq!(a.heap_guard_checks, 10);
        assert_eq!(a.shadow_stack_ops, 12);
        assert_eq!(a.blocks_built, 14);
        assert_eq!(a.blocks_ejected, 16);
        assert_eq!(a.runs, 2);
    }

    #[test]
    fn cost_is_monotone_in_events() {
        let model = CostModel::default();
        let base = ExecutionStats {
            instructions: 1000,
            runs: 1,
            ..Default::default()
        };
        let mut with_checks = base;
        with_checks.firewall_checks = 100;
        assert!(model.cost(&with_checks) > model.cost(&base));
        assert!(model.overhead(&with_checks, &base) > 1.0);
    }

    #[test]
    fn tracing_dominates_cost() {
        let model = CostModel::default();
        let mut traced = ExecutionStats {
            instructions: 1000,
            ..Default::default()
        };
        traced.trace_events = 1000;
        let bare = ExecutionStats {
            instructions: 1000,
            ..Default::default()
        };
        let ratio = model.overhead(&traced, &bare);
        assert!(
            ratio > 100.0,
            "tracing should be orders of magnitude slower, got {ratio}"
        );
    }

    #[test]
    fn zero_baseline_overhead_is_one() {
        let model = CostModel::default();
        let s = ExecutionStats::default();
        assert_eq!(model.overhead(&s, &s), 1.0);
    }
}
